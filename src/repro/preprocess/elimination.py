"""Bounded variable elimination by resolution (NiVER-style).

NiVER (Subbarayan & Pradhan, 2004 — one year after this paper)
eliminates a variable ``v`` by replacing the clauses containing it with
all non-tautological resolvents on ``v``, whenever that does not grow
the formula.  Both directions of the proof story work out:

* every resolvent is RUP with respect to the clauses it was resolved
  from (falsifying it makes both parents unit on the pivot — conflict),
  so resolvents join the lifted proof's preamble;
* the *removed* clauses only ever shrink the formula, and RUP checks
  are monotone under adding clauses back, so a proof of the simplified
  formula remains one of the original.

Model lifting runs the eliminations backwards: for each eliminated
variable, some polarity satisfies all of its removed clauses (otherwise
an unsatisfied resolvent would exist), and we pick it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.clause import Clause
from repro.core.exceptions import ResolutionError


@dataclass(frozen=True)
class EliminationStep:
    """One eliminated variable with its removed clauses and resolvents."""

    variable: int
    positive_clauses: tuple[Clause, ...]
    negative_clauses: tuple[Clause, ...]
    resolvents: tuple[Clause, ...]

    @property
    def removed_count(self) -> int:
        return len(self.positive_clauses) + len(self.negative_clauses)


def eliminate_variables(clauses: list[Clause], protected: set[int],
                        max_occurrences: int = 10,
                        ) -> tuple[list[Clause], list[EliminationStep]]:
    """Eliminate variables whose resolvent set is no larger than the
    clauses it replaces.

    ``protected`` variables are never eliminated (e.g. those fixed by
    derived units).  ``max_occurrences`` bounds the per-polarity
    occurrence count considered, NiVER-style.  Returns the new clause
    list and the elimination steps in order.
    """
    working = list(clauses)
    steps: list[EliminationStep] = []
    changed = True
    while changed:
        changed = False
        occurrences: dict[int, list[int]] = {}
        for position, clause in enumerate(working):
            if clause is None:
                continue
            for lit in clause:
                occurrences.setdefault(lit, []).append(position)
        variables = sorted(
            {abs(lit) for lit in occurrences} - protected,
            key=lambda v: (len(occurrences.get(v, []))
                           * max(1, len(occurrences.get(-v, [])))))
        for var in variables:
            positive = [working[i] for i in occurrences.get(var, [])
                        if working[i] is not None]
            negative = [working[i] for i in occurrences.get(-var, [])
                        if working[i] is not None]
            if not positive and not negative:
                continue
            if (len(positive) > max_occurrences
                    or len(negative) > max_occurrences):
                continue
            resolvents = []
            tautology_free = True
            for pos_clause in positive:
                for neg_clause in negative:
                    try:
                        resolvent = pos_clause.resolve(neg_clause,
                                                       pivot=var)
                    except ResolutionError:
                        # Extra clashes: the resolvent is a tautology.
                        continue
                    if resolvent.is_tautology():
                        continue
                    resolvents.append(resolvent)
            del tautology_free
            if len(resolvents) > len(positive) + len(negative):
                continue
            # Commit the elimination.
            steps.append(EliminationStep(
                var, tuple(positive), tuple(negative),
                tuple(resolvents)))
            removed_positions = set(occurrences.get(var, [])) \
                | set(occurrences.get(-var, []))
            for position in removed_positions:
                working[position] = None
            working.extend(resolvents)
            changed = True
            break  # occurrence lists are stale; rebuild
    return [clause for clause in working if clause is not None], steps


def extend_model(steps: list[EliminationStep],
                 model: dict[int, bool]) -> dict[int, bool]:
    """Assign the eliminated variables (reverse elimination order)."""
    lifted = dict(model)

    def rest_satisfied(clause: Clause, variable: int) -> bool:
        for lit in clause:
            if abs(lit) == variable:
                continue
            value = lifted.get(abs(lit))
            if value is None:
                continue
            if value == (lit > 0):
                return True
        return False

    for step in reversed(steps):
        needs_true = any(not rest_satisfied(clause, step.variable)
                         for clause in step.positive_clauses)
        needs_false = any(not rest_satisfied(clause, step.variable)
                          for clause in step.negative_clauses)
        if needs_true and needs_false:
            raise AssertionError(
                f"variable {step.variable}: both polarities forced — "
                "elimination invariant violated")
        lifted[step.variable] = needs_true
    return lifted
