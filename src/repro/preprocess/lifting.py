"""Lift proofs and models across preprocessing.

Soundness of the lift (why a proof of the simplified formula verifies
against the original):

* every derived unit is RUP with respect to the original formula plus
  the earlier derived units (propagated units trivially; probed units
  because the failed assumption's BCP conflict replays);
* every simplified clause is its original clause minus literals the
  derived units falsify, so wherever a simplified clause propagated
  during a check, the original clause propagates the same literal once
  BCP has asserted those units — which it has, because the units come
  *first* in the lifted proof;
* clause removal (satisfied / subsumed) only shrinks the formula, and
  BCP conflicts are monotone under adding clauses back.

Hence: ``derived units ++ proof-of-simplified`` is a correct conflict
clause proof of the original formula.
"""

from __future__ import annotations

from repro.core.exceptions import ReproError
from repro.preprocess.preprocessor import PreprocessResult, preprocess
from repro.proofs.conflict_clause import (
    ENDING_EMPTY,
    ConflictClauseProof,
)


def lift_proof(result: PreprocessResult,
               proof: ConflictClauseProof | None = None,
               ) -> ConflictClauseProof:
    """Turn a proof of ``result.simplified`` into one of the original.

    When preprocessing alone refuted the formula
    (``result.status == "UNSAT"``), no inner proof is needed: the
    derived units followed by the empty clause already refute the
    original.
    """
    preamble = [(lit,) for lit in result.derived_units]
    preamble += [clause.literals for clause in result.resolvent_clauses]
    if result.status == "UNSAT":
        return ConflictClauseProof(preamble + [()], ENDING_EMPTY)
    if proof is None:
        raise ReproError(
            "preprocessing did not refute the formula; a proof of the "
            "simplified formula is required")
    return ConflictClauseProof(preamble + list(proof.clauses),
                               proof.ending)


def lift_model(result: PreprocessResult,
               model: dict[int, bool]) -> dict[int, bool]:
    """Extend a model of the simplified formula to the original.

    Eliminated variables are reconstructed in reverse elimination
    order; the derived units override last (they are consequences of
    the original formula).
    """
    from repro.preprocess.elimination import extend_model

    lifted = extend_model(list(result.eliminations), dict(model))
    lifted.update(result.fixed_assignment)
    return lifted


def solve_with_preprocessing(formula, options=None, eliminate=False,
                             **kwargs):
    """Preprocess, solve the residue, and lift proof/model back.

    Returns ``(solve_result, preprocess_result, lifted_proof)`` where
    ``lifted_proof`` is None for satisfiable formulas (the lifted model
    is placed in ``solve_result.model``).
    """
    from repro.solver.cdcl import SolverOptions, solve
    from repro.solver.result import SAT, UNSAT, SolveResult

    if options is None:
        options = SolverOptions(**kwargs)
    pre = preprocess(formula, eliminate=eliminate)
    if pre.status == "UNSAT":
        result = SolveResult(UNSAT)
        return result, pre, lift_proof(pre)
    if pre.status == "SAT":
        model = lift_model(pre, {})
        for var in range(1, formula.num_vars + 1):
            model.setdefault(var, False)
        return SolveResult(SAT, model=model), pre, None

    result = solve(pre.simplified, options)
    if result.is_unsat:
        if result.log is None:
            return result, pre, None  # proof logging was disabled
        inner = ConflictClauseProof.from_log(result.log)
        return result, pre, lift_proof(pre, inner)
    if result.is_sat:
        result.model = lift_model(pre, result.model)
    return result, pre, None
