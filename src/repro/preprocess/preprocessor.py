"""Proof-preserving CNF preprocessing.

Paper-era solvers routinely simplified formulas before search; the
subtlety this module addresses is doing so *without losing the ability
to verify the final proof against the original formula*.  Every
technique used here is justified by reverse unit propagation, so its
deductions can be prepended to the proof of the simplified formula
(:mod:`repro.preprocess.lifting`):

* **unit propagation closure** — literals forced by BCP become derived
  unit clauses (trivially RUP);
* **failed literal probing** — if assuming ``l`` yields a BCP conflict,
  the unit ``(¬l)`` is RUP and is added;
* **subsumption elimination** — a clause containing another clause is
  removed; removal only shrinks the formula, so any proof of the result
  remains a proof of the original (BCP is monotone in the clause set).

Pure-literal elimination is deliberately *not* performed: it preserves
satisfiability but its deductions are not implied by the formula, so it
would break proof lifting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bcp.engine import FALSE, TRUE, UNDEF
from repro.bcp.watched import WatchedPropagator
from repro.core.clause import Clause
from repro.core.formula import CnfFormula
from repro.core.literals import decode, encode


@dataclass
class PreprocessResult:
    """Outcome of preprocessing.

    ``status`` is ``"UNSAT"`` when preprocessing alone refutes the
    formula (the simplified formula then contains the empty clause),
    ``"SAT"`` when it satisfies every clause, else ``"UNKNOWN"``.
    """

    original: CnfFormula
    simplified: CnfFormula
    status: str
    derived_units: tuple[int, ...] = ()
    removed_clause_indices: tuple[int, ...] = ()
    kept_clause_indices: tuple[int, ...] = ()
    probes_run: int = 0
    statistics: dict[str, int] = field(default_factory=dict)
    eliminations: tuple = ()
    """Variable-elimination steps (order matters for model lifting)."""
    resolvent_clauses: tuple = ()
    """All VE resolvents, in derivation order — the RUP preamble that
    proof lifting inserts after the derived units."""

    @property
    def fixed_assignment(self) -> dict[int, bool]:
        """The assignment forced by the derived units."""
        return {abs(lit): lit > 0 for lit in self.derived_units}


def preprocess(formula: CnfFormula, probe: bool = True,
               subsume: bool = True, eliminate: bool = False,
               max_probes: int | None = None,
               max_elim_occurrences: int = 10) -> PreprocessResult:
    """Simplify a formula with RUP-justified techniques only.

    ``eliminate=True`` additionally runs NiVER-style bounded variable
    elimination (:mod:`repro.preprocess.elimination`); its resolvents
    become part of the lifted proof's preamble.
    """
    engine = WatchedPropagator(formula.num_vars)
    for clause in formula:
        engine.add_clause([encode(lit) for lit in clause])

    probes_run = 0
    confl = engine.propagate()

    if confl is None and probe:
        confl, probes_run = _probe_failed_literals(engine, max_probes)

    # Every level-0 assignment is a derived unit (in trail order).
    derived_units = [decode(enc) for enc in engine.trail]

    if confl is not None:
        simplified = CnfFormula([[]], num_vars=formula.num_vars)
        return PreprocessResult(
            original=formula, simplified=simplified, status="UNSAT",
            derived_units=tuple(derived_units),
            removed_clause_indices=tuple(range(formula.num_clauses)),
            statistics={"derived_units": len(derived_units),
                        "probes": probes_run})

    values = engine.values
    kept: list[int] = []
    removed: list[int] = []
    new_clauses: list[Clause] = []
    for index, clause in enumerate(formula):
        satisfied = False
        remaining: list[int] = []
        for lit in clause:
            value = values[encode(lit)]
            if value == TRUE:
                satisfied = True
                break
            if value == UNDEF:
                remaining.append(lit)
        if satisfied:
            removed.append(index)
            continue
        kept.append(index)
        new_clauses.append(Clause(remaining))

    if subsume:
        kept, new_clauses, subsumed = _eliminate_subsumed(kept,
                                                          new_clauses)
        removed.extend(subsumed)
        removed.sort()
    else:
        subsumed = []

    elimination_steps: list = []
    resolvents: list[Clause] = []
    status = "SAT" if not new_clauses else "UNKNOWN"
    if eliminate and new_clauses:
        from repro.preprocess.elimination import eliminate_variables

        protected = {abs(lit) for lit in derived_units}
        new_clauses, elimination_steps = eliminate_variables(
            new_clauses, protected,
            max_occurrences=max_elim_occurrences)
        for step in elimination_steps:
            resolvents.extend(step.resolvents)
        if any(clause.is_empty() for clause in new_clauses):
            status = "UNSAT"
            new_clauses = [Clause()]
        elif not new_clauses:
            status = "SAT"

    simplified = CnfFormula(new_clauses, num_vars=formula.num_vars)
    return PreprocessResult(
        original=formula, simplified=simplified, status=status,
        derived_units=tuple(derived_units),
        removed_clause_indices=tuple(removed),
        kept_clause_indices=tuple(kept),
        probes_run=probes_run,
        eliminations=tuple(elimination_steps),
        resolvent_clauses=tuple(resolvents),
        statistics={
            "derived_units": len(derived_units),
            "probes": probes_run,
            "satisfied_removed": len(removed) - len(subsumed),
            "subsumed_removed": len(subsumed),
            "eliminated_vars": len(elimination_steps),
            "literals_stripped": formula.literal_count()
            - sum(len(c) for c in new_clauses)
            - sum(len(formula[i]) for i in removed),
        })


def _probe_failed_literals(engine: WatchedPropagator,
                           max_probes: int | None) -> tuple[int | None,
                                                            int]:
    """Assume each literal; a BCP conflict makes its negation a unit.

    Iterates to fixpoint (new units enable new failures).  Returns the
    level-0 conflict, if the formula is refuted outright.
    """
    probes = 0
    changed = True
    while changed:
        changed = False
        for var in range(1, engine.num_vars + 1):
            if engine.values[var << 1] != UNDEF:
                continue
            for enc in (var << 1, (var << 1) | 1):
                if max_probes is not None and probes >= max_probes:
                    return None, probes
                if engine.values[enc] != UNDEF:
                    continue
                probes += 1
                engine.assume(enc)
                confl = engine.propagate()
                engine.backtrack(0)
                if confl is None:
                    continue
                # enc fails: ¬enc is implied (and RUP).
                if not engine.enqueue(enc ^ 1, None):
                    return -1, probes  # both polarities fail: UNSAT
                top_confl = engine.propagate()
                if top_confl is not None:
                    return top_confl, probes
                changed = True
    return None, probes


def _eliminate_subsumed(indices: list[int], clauses: list[Clause]):
    """Remove clauses subsumed by another kept clause.

    On ties (duplicate clauses) the earlier occurrence is kept.  Uses
    the smallest-clause-first ordering with signature prefiltering.
    """
    order = sorted(range(len(clauses)), key=lambda i: len(clauses[i]))
    literal_sets = [frozenset(c.literals) for c in clauses]
    alive = [True] * len(clauses)
    # Occurrence lists: literal -> positions containing it.
    occurrences: dict[int, list[int]] = {}
    for position, literals in enumerate(literal_sets):
        for lit in literals:
            occurrences.setdefault(lit, []).append(position)

    for position in order:
        if not alive[position]:
            continue
        literals = literal_sets[position]
        if not literals:
            continue
        # Candidates must contain the rarest literal of this clause.
        rarest = min(literals, key=lambda lit: len(occurrences[lit]))
        for other in occurrences[rarest]:
            if other == position or not alive[other]:
                continue
            if len(literal_sets[other]) < len(literals):
                continue
            if literals < literal_sets[other] or (
                    literals == literal_sets[other]
                    and indices[position] < indices[other]):
                alive[other] = False

    kept_indices = [indices[i] for i in range(len(clauses)) if alive[i]]
    kept_clauses = [clauses[i] for i in range(len(clauses)) if alive[i]]
    subsumed = [indices[i] for i in range(len(clauses)) if not alive[i]]
    return kept_indices, kept_clauses, subsumed
