"""Proof-preserving CNF preprocessing (units, probing, subsumption)."""

from repro.preprocess.elimination import (
    EliminationStep,
    eliminate_variables,
    extend_model,
)
from repro.preprocess.lifting import (
    lift_model,
    lift_proof,
    solve_with_preprocessing,
)
from repro.preprocess.preprocessor import PreprocessResult, preprocess

__all__ = [
    "preprocess",
    "PreprocessResult",
    "lift_proof",
    "lift_model",
    "solve_with_preprocessing",
    "eliminate_variables",
    "EliminationStep",
    "extend_model",
]
