"""Process-level fault injection for the streaming verifier.

:mod:`repro.testing.mutate` attacks the *logical* content of proofs;
this module attacks the *operational* envelope: what happens when the
trace file is truncated mid-clause, when a byte rots, when the process
is SIGKILLed-adjacent (SIGINT/SIGTERM), when memory budgets trip, when
a parallel worker dies.  The contract under test is the CLI's typed
exit-code surface:

========  =====================================================
``0``     verdict reached, proof correct
``1``     verdict reached, proof incorrect
``2``     operational error (unusable checkpoint, bad flags)
``3``     resource limit: partial report + resume token
``65``    malformed input (truncation, corruption, bad deletion)
``130``   interrupted — with a resumable checkpoint on disk
========  =====================================================

Every scenario asserts the *absence of a traceback* on stderr: a fault
must surface as a one-line ``c error:`` diagnostic or a typed partial
report, never a stack dump.  Most scenarios drive the real CLI in a
subprocess so the assertion covers the whole stack (argument parsing,
signal handlers, artifact flushing); the worker-death scenario uses the
in-process pool hooks from :mod:`repro.verify.parallel`.

Run the sweep from the command line (CI does)::

    python -m repro.testing.faults [--only NAME ...] [--workdir DIR]

or programmatically via :func:`run_suite`.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass

import repro
from repro.benchgen.streaming import (
    deletion_chain_formula,
    write_deletion_chain_drup,
)
from repro.core.dimacs import write_dimacs

EXIT_OK = 0
EXIT_PROOF_BAD = 1
EXIT_ERROR = 2
EXIT_RESOURCE_LIMIT = 3
EXIT_PARSE_ERROR = 65
EXIT_INTERRUPT = 130

#: Chain length of the shared small instance (fast, still shifts
#: windows and writes checkpoints).
_SMALL_N = 2000
#: Chain lengths tried by the signal scenarios: big enough that the
#: child cannot finish before the signal lands; escalate if it does.
_SIGNAL_NS = (20000, 80000)


@dataclass
class FaultOutcome:
    """One scenario's verdict for the sweep report."""

    scenario: str
    passed: bool
    exit_code: int | None
    expected_exit: tuple[int, ...]
    detail: str = ""

    def line(self) -> str:
        status = "ok  " if self.passed else "FAIL"
        got = "-" if self.exit_code is None else str(self.exit_code)
        want = "/".join(str(c) for c in self.expected_exit) or "-"
        tail = f" — {self.detail}" if self.detail else ""
        return f"{status} {self.scenario:<28} exit={got} " \
               f"(want {want}){tail}"


def _cli_env() -> dict:
    """Environment for CLI subprocesses: the installed ``repro``
    package wins over whatever PYTHONPATH the parent carries."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env = dict(os.environ)
    previous = env.get("PYTHONPATH")
    env["PYTHONPATH"] = root if not previous \
        else root + os.pathsep + previous
    return env


def _run_cli(argv: list[str], timeout: float = 300.0):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=_cli_env(),
        timeout=timeout)


def _judge(name: str, proc, expected: tuple[int, ...], *,
           want_stdout: str | None = None,
           want_stderr: str | None = None,
           detail: str = "") -> FaultOutcome:
    problems = []
    if proc.returncode not in expected:
        problems.append(f"exit {proc.returncode} not in {expected}")
    if "Traceback" in proc.stderr or "Traceback" in proc.stdout:
        problems.append("traceback leaked")
    if want_stdout is not None and want_stdout not in proc.stdout:
        problems.append(f"stdout lacks {want_stdout!r}")
    if want_stderr is not None and want_stderr not in proc.stderr:
        problems.append(f"stderr lacks {want_stderr!r}")
    if problems:
        tail = (proc.stderr or proc.stdout).strip().splitlines()[-3:]
        return FaultOutcome(name, False, proc.returncode, expected,
                            "; ".join(problems) + " | " +
                            " / ".join(tail))
    return FaultOutcome(name, True, proc.returncode, expected, detail)


def _instance(workdir: str, n_vars: int = _SMALL_N, window: int = 8,
              tag: str = "chain") -> tuple[str, str]:
    cnf = os.path.join(workdir, f"{tag}.cnf")
    drup = os.path.join(workdir, f"{tag}.drup")
    if not os.path.exists(cnf):
        write_dimacs(deletion_chain_formula(n_vars), cnf)
        write_deletion_chain_drup(drup, n_vars, window=window)
    return cnf, drup


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------

def scenario_pristine(workdir: str) -> FaultOutcome:
    """Control: the untampered instance verifies with exit 0."""
    cnf, drup = _instance(workdir)
    proc = _run_cli(["verify-stream", cnf, drup])
    return _judge("pristine", proc, (EXIT_OK,),
                  want_stdout="s PROOF_IS_CORRECT")


def scenario_truncate_mid_clause(workdir: str) -> FaultOutcome:
    """The trace ends mid-line, its final clause missing the
    terminating 0 — a crashed solver's torn write.  Exit 65."""
    cnf, drup = _instance(workdir)
    data = open(drup, "rb").read()
    cut = data.rindex(b" 0\n") + 1      # keep the trailing space
    torn = os.path.join(workdir, "torn.drup")
    with open(torn, "wb") as handle:
        handle.write(data[:cut])
    proc = _run_cli(["verify-stream", cnf, torn])
    return _judge("truncate-mid-clause", proc, (EXIT_PARSE_ERROR,),
                  want_stderr="c error:")


def scenario_clean_truncation(workdir: str) -> FaultOutcome:
    """The trace loses whole tail lines (including the empty-clause
    addition) but stays well-formed: that is not a parse error, it is
    an incorrect proof — exit 1."""
    cnf, drup = _instance(workdir)
    data = open(drup, "rb").read()
    clipped = data[:data.rindex(b"0\n")]
    assert clipped.endswith(b"\n")
    short = os.path.join(workdir, "short.drup")
    with open(short, "wb") as handle:
        handle.write(clipped)
    proc = _run_cli(["verify-stream", cnf, short])
    return _judge("clean-truncation", proc, (EXIT_PROOF_BAD,),
                  want_stdout="s PROOF_IS_NOT_CORRECT")


def scenario_corrupt_bytes(workdir: str) -> FaultOutcome:
    """A byte in the middle of the trace rots to ``0xff`` (not valid
    UTF-8 anywhere): typed parse error, exit 65."""
    cnf, drup = _instance(workdir)
    data = bytearray(open(drup, "rb").read())
    data[len(data) // 2] = 0xFF
    rotten = os.path.join(workdir, "rotten.drup")
    with open(rotten, "wb") as handle:
        handle.write(bytes(data))
    proc = _run_cli(["verify-stream", cnf, rotten])
    return _judge("corrupt-bytes", proc, (EXIT_PARSE_ERROR,),
                  want_stderr="c error:")


def scenario_unknown_deletion(workdir: str) -> FaultOutcome:
    """A deletion names a clause that was never added.  Strict mode
    refuses the trace (exit 65); ``--lenient-deletions`` skips it with
    a warning and still reaches the verdict."""
    cnf, drup = _instance(workdir)
    bogus = os.path.join(workdir, "bogus-del.drup")
    with open(drup) as src, open(bogus, "w") as dst:
        dst.write("d 5 7 0\n")
        dst.write(src.read())
    strict = _run_cli(["verify-stream", cnf, bogus])
    outcome = _judge("unknown-deletion", strict, (EXIT_PARSE_ERROR,),
                     want_stderr="c error:")
    if not outcome.passed:
        return outcome
    lenient = _run_cli(["verify-stream", cnf, bogus,
                        "--lenient-deletions"])
    outcome = _judge("unknown-deletion", lenient, (EXIT_OK,),
                     want_stdout="c warning:",
                     detail="strict 65, lenient 0 with warning")
    return outcome


def scenario_live_clause_budget(workdir: str) -> FaultOutcome:
    """A hard live-clause cap trips mid-run: exit 3, a schema-valid
    resume token on disk, and an uncapped resume finishes the job."""
    cnf, drup = _instance(workdir)
    token = os.path.join(workdir, "live-budget.json")
    proc = _run_cli(["verify-stream", cnf, drup,
                     "--max-live-clauses", "3",
                     "--checkpoint", token])
    outcome = _judge("live-clause-budget", proc,
                     (EXIT_RESOURCE_LIMIT,),
                     want_stdout="s RESOURCE_LIMIT_EXCEEDED")
    if not outcome.passed:
        return outcome
    return _resume_and_expect_correct("live-clause-budget", cnf, drup,
                                      token)


def scenario_props_budget(workdir: str) -> FaultOutcome:
    """Same ladder one rung up: the propagation budget trips, the
    resume token carries the spent work, the resumed (uncapped) run
    reaches the verdict."""
    cnf, drup = _instance(workdir)
    token = os.path.join(workdir, "props-budget.json")
    proc = _run_cli(["verify-stream", cnf, drup,
                     "--max-props", "2000",
                     "--checkpoint", token,
                     "--checkpoint-every", "200"])
    outcome = _judge("props-budget", proc, (EXIT_RESOURCE_LIMIT,),
                     want_stdout="s RESOURCE_LIMIT_EXCEEDED")
    if not outcome.passed:
        return outcome
    return _resume_and_expect_correct("props-budget", cnf, drup, token)


def _resume_and_expect_correct(name: str, cnf: str, drup: str,
                               token: str) -> FaultOutcome:
    if not os.path.exists(token):
        return FaultOutcome(name, False, None,
                            (EXIT_RESOURCE_LIMIT,),
                            "no resume token on disk")
    doc = json.loads(open(token).read())
    if doc.get("schema") != "repro.obs.checkpoint/v1":
        return FaultOutcome(name, False, None,
                            (EXIT_RESOURCE_LIMIT,),
                            f"bad token schema {doc.get('schema')!r}")
    proc = _run_cli(["verify-stream", cnf, drup,
                     "--checkpoint", token, "--resume"])
    outcome = _judge(name, proc, (EXIT_OK,),
                     want_stdout="s PROOF_IS_CORRECT",
                     detail="exit 3 + valid token, resume reached "
                            "the verdict")
    if outcome.passed and os.path.exists(token):
        return FaultOutcome(name, False, proc.returncode, (EXIT_OK,),
                            "spent token not deleted after verdict")
    return outcome


def scenario_corrupt_checkpoint(workdir: str) -> FaultOutcome:
    """Garbage where the resume token should be: exit 2 with a
    one-line diagnostic, not a traceback — and a token recorded
    against a different formula is refused the same way."""
    cnf, drup = _instance(workdir)
    token = os.path.join(workdir, "garbage.json")
    with open(token, "w") as handle:
        handle.write('{"schema": "repro.obs.checkpoint/v1", "offse')
    proc = _run_cli(["verify-stream", cnf, drup,
                     "--checkpoint", token, "--resume"])
    outcome = _judge("corrupt-checkpoint", proc, (EXIT_ERROR,),
                     want_stderr="c error:")
    if not outcome.passed:
        return outcome
    # Record a real token against a *different* instance, then try to
    # resume this one with it.
    other_cnf, other_drup = _instance(workdir, n_vars=300, window=2,
                                      tag="other")
    _run_cli(["verify-stream", other_cnf, other_drup,
              "--max-props", "200", "--checkpoint", token])
    if not os.path.exists(token):
        return FaultOutcome("corrupt-checkpoint", False, None,
                            (EXIT_ERROR,), "mismatch setup run left "
                            "no token")
    proc = _run_cli(["verify-stream", cnf, drup,
                     "--checkpoint", token, "--resume"])
    return _judge("corrupt-checkpoint", proc, (EXIT_ERROR,),
                  want_stderr="c error:",
                  detail="garbage and digest-mismatch tokens both "
                         "refused with exit 2")


def _signal_scenario(name: str, signame: str,
                     workdir: str) -> FaultOutcome:
    """Interrupt a run mid-flight, expect exit 130 plus a resume token,
    and prove the resumed run reaches the uninterrupted verdict with
    the uninterrupted (cumulative) event counts."""
    signum = getattr(signal, signame)
    for n_vars in _SIGNAL_NS:
        cnf, drup = _instance(workdir, n_vars=n_vars, window=8,
                              tag=f"sig{n_vars}")
        token = os.path.join(workdir, f"{name}.json")
        try:
            os.unlink(token)
        except FileNotFoundError:
            pass
        child = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "verify-stream",
             cnf, drup, "--checkpoint", token,
             "--checkpoint-every", "500"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=_cli_env())
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline \
                and not os.path.exists(token) \
                and child.poll() is None:
            time.sleep(0.01)
        if child.poll() is not None:
            child.communicate()
            continue                 # finished early: bigger instance
        child.send_signal(signum)
        stdout, stderr = child.communicate(timeout=60)
        problems = []
        if child.returncode != EXIT_INTERRUPT:
            problems.append(f"exit {child.returncode} != 130")
        if "Traceback" in stderr:
            problems.append("traceback leaked")
        if not os.path.exists(token):
            problems.append("no resume token after interrupt")
        if problems:
            return FaultOutcome(name, False, child.returncode,
                                (EXIT_INTERRUPT,),
                                "; ".join(problems) + " | "
                                + " / ".join(stderr.strip()
                                             .splitlines()[-3:]))
        proc = _run_cli(["verify-stream", cnf, drup,
                         "--checkpoint", token, "--resume"])
        outcome = _judge(name, proc, (EXIT_OK,),
                         want_stdout="s PROOF_IS_CORRECT")
        if not outcome.passed:
            return outcome
        want = f"additions={n_vars} "
        if want not in proc.stdout:
            return FaultOutcome(
                name, False, proc.returncode, (EXIT_OK,),
                f"resumed counts drifted (wanted {want.strip()}): "
                + " / ".join(proc.stdout.splitlines()[:2]))
        return FaultOutcome(name, True, EXIT_INTERRUPT,
                            (EXIT_INTERRUPT,),
                            f"exit 130, resume reached the verdict "
                            f"with exact counts (n={n_vars})")
    return FaultOutcome(name, False, None, (EXIT_INTERRUPT,),
                        "child kept finishing before the signal "
                        f"landed (tried n={_SIGNAL_NS})")


def scenario_sigint(workdir: str) -> FaultOutcome:
    """^C lands mid-run: exit 130, resume token on disk, resumed run
    reaches the verdict with exact cumulative counts."""
    return _signal_scenario("sigint-resume", "SIGINT", workdir)


def scenario_sigterm(workdir: str) -> FaultOutcome:
    """A supervisor's SIGTERM gets the same treatment as ^C."""
    return _signal_scenario("sigterm-resume", "SIGTERM", workdir)


def scenario_worker_death(workdir: str) -> FaultOutcome:
    """A parallel verification1 worker dies mid-shard (as an OOM kill
    would look): the run must recover via retry and keep its verdict.
    In-process — the fault hook plants the death before the fork."""
    name = "worker-death"
    from repro.verify.parallel import (
        clear_faults,
        fork_available,
        install_fault,
        planned_shards,
    )

    if not fork_available():
        return FaultOutcome(name, True, None, (),
                            "skipped: no fork start method")
    from repro.benchgen.php import pigeonhole
    from repro.proofs.conflict_clause import ConflictClauseProof
    from repro.solver.cdcl import solve
    from repro.verify.verification import verify_proof_v1

    formula = pigeonhole(5)
    result = solve(formula, reduce_base=20, reduce_growth=10)
    proof = ConflictClauseProof.from_log(result.log)
    try:
        # Key the fault by the bounds the run will actually execute
        # (the cost planner's partition, not the legacy equal-count
        # split).
        install_fault(planned_shards(formula, proof, 4,
                                     mode="incremental").shards[0],
                      deaths=1)
        report = verify_proof_v1(formula, proof, jobs=4,
                                 mode="incremental")
    except BaseException as exc:                   # noqa: BLE001
        clear_faults()
        return FaultOutcome(name, False, None, (),
                            f"raised {type(exc).__name__}: {exc}")
    clear_faults()
    if not report.ok or report.num_checked != len(proof):
        return FaultOutcome(name, False, None, (),
                            f"verdict drifted: ok={report.ok} "
                            f"checked={report.num_checked}")
    if report.worker_failures < 1:
        return FaultOutcome(name, False, None, (),
                            "fault never fired")
    return FaultOutcome(name, True, None, (),
                        f"{report.worker_failures} worker death(s) "
                        "survived, verdict intact")


SCENARIOS = {
    "pristine": scenario_pristine,
    "truncate-mid-clause": scenario_truncate_mid_clause,
    "clean-truncation": scenario_clean_truncation,
    "corrupt-bytes": scenario_corrupt_bytes,
    "unknown-deletion": scenario_unknown_deletion,
    "live-clause-budget": scenario_live_clause_budget,
    "props-budget": scenario_props_budget,
    "corrupt-checkpoint": scenario_corrupt_checkpoint,
    "sigint-resume": scenario_sigint,
    "sigterm-resume": scenario_sigterm,
    "worker-death": scenario_worker_death,
}


def run_suite(names: list[str] | None = None,
              workdir: str | None = None) -> list[FaultOutcome]:
    """Run the selected scenarios (all by default) and return their
    outcomes.  ``workdir`` holds the generated instances and tampered
    traces; a temporary directory is used (and kept out of the repo)
    when omitted."""
    chosen = list(SCENARIOS) if names is None else names
    unknown = [n for n in chosen if n not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenario(s): {unknown} "
                         f"(have {list(SCENARIOS)})")
    outcomes = []
    if workdir is not None:
        os.makedirs(workdir, exist_ok=True)
        for name in chosen:
            outcomes.append(SCENARIOS[name](workdir))
        return outcomes
    with tempfile.TemporaryDirectory(prefix="repro-faults-") as tmp:
        for name in chosen:
            outcomes.append(SCENARIOS[name](tmp))
    return outcomes


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.faults",
        description="fault-injection sweep over the streaming "
                    "verifier's typed exit-code surface")
    parser.add_argument("--only", action="append", metavar="NAME",
                        help="run only this scenario (repeatable)")
    parser.add_argument("--list", action="store_true",
                        help="list scenario names and exit")
    parser.add_argument("--workdir", default=None, metavar="DIR",
                        help="keep generated instances and tampered "
                             "traces here (default: a temp dir)")
    args = parser.parse_args(argv)
    if args.list:
        for name, fn in SCENARIOS.items():
            lines = (fn.__doc__ or "").strip().splitlines()
            print(f"{name:<24} {lines[0] if lines else ''}")
        return 0
    outcomes = run_suite(args.only, args.workdir)
    for outcome in outcomes:
        print(outcome.line())
    failed = [o for o in outcomes if not o.passed]
    print(f"{len(outcomes) - len(failed)}/{len(outcomes)} scenarios "
          "passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
