"""Adversarial proof mutation: fault injection for the checkers.

The entire value proposition of Goldberg & Novikov's procedures is that
an *independent* checker catches incorrect proofs — yet a checker that
is only ever fed its own solver's output is never actually exercised on
hostile input.  This module closes that gap the way DRAT-trim's fuzzing
harness does: take a *known-good* proof, apply small deterministic
corruptions, and assert that every checker configuration rejects the
corrupt proof (or raises :class:`ProofFormatError` while parsing it) —
never accepts it, and never dies with an exception outside the
``ReproError`` hierarchy.

Operators
---------
:class:`ProofMutator` implements eight seedable operators over
:class:`ConflictClauseProof` and :class:`DrupProof`:

========================  ====================================================
``drop_clause``           remove a proof clause (final-pair member, a random
                          mid clause, or the DRUP empty-clause addition)
``flip_literal_sign``     negate a literal (a final-pair unit, or a random
                          literal of a random mid clause)
``retarget_literal``      redirect literals to a fresh, unconstrained
                          variable (the final pair, or one mid literal)
``truncate_tail``         cut the proof's tail (the final pair, the last
                          clause, or the DRUP trace's closing events)
``duplicate_clause``      repeat a deduced clause — a *benign control*: the
                          duplicate is implied by its original, so every
                          checker must still accept
``reorder_pair``          move a clause across one it interacts with (swap
                          the last derivation into the final pair, or move a
                          random later clause earlier)
``inject_non_rup``        insert a clause over a fresh variable that no BCP
                          run can derive
``corrupt_deletion``      make a DRUP deletion target a clause that was
                          never added (or delete the same clause twice)
========================  ====================================================

Expectations
------------
Each mutation carries the strongest guarantee its construction supports:

``EXPECT_REJECT_ALL``
    Every checker must reject: verification1 in every configuration,
    verification2, and (for trace mutations) the forward DRUP checker.
    Structural corruptions are rejected by ``ProofFormatError`` at build
    time — the same signal a file parser gives — which counts.

``EXPECT_REJECT_V1``
    verification1 must reject (it checks *every* clause), while
    verification2 may legitimately still accept: its marking pass skips
    redundant clauses by design (paper Section 4), so a corrupt clause
    outside the refutation's cone is invisible to it.  This is a
    semantic difference between the procedures, not a checker bug.

``EXPECT_ACCEPT``
    The benign control (duplication): the mutated proof is still
    correct and every checker must say so — guarding against a harness
    that "passes" by rejecting everything.

``EXPECT_ANY``
    Seeded random collateral with no verdict guarantee; the driver
    still asserts crash-freedom and that all verification1
    configurations agree with each other.

The guaranteed-rejection constructions rely on the insertion point's
clause set not being refutable by BCP alone — otherwise *every* clause
is trivially RUP there and even a fresh-variable unit is derivable.
Rather than assume this (it fails for degenerate proofs whose last
derivation alone unit-refutes the formula), :class:`ProofMutator`
*probes* each insertion point with a BCP run and downgrades the
expectation to ``EXPECT_ANY`` when the guarantee cannot hold.

Differential driver
-------------------
:func:`run_differential` feeds every mutation to verification1 (both
orders × both modes × ``jobs`` 1 and 4), verification2, and — for trace
mutations — the forward DRUP checker, and collects violations of the
expectations above into a :class:`DifferentialSummary`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.exceptions import ProofFormatError, ReproError
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import (
    ENDING_EMPTY,
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.proofs.drup import ADD, DELETE, DrupEvent, DrupProof
from repro.verify.checker import ProofChecker
from repro.verify.forward import check_drup
from repro.verify.verification import verify_proof_v1, verify_proof_v2

EXPECT_REJECT_ALL = "reject_all"
EXPECT_REJECT_V1 = "reject_v1"
EXPECT_ACCEPT = "accept"
EXPECT_ANY = "any"

KIND_CC = "cc"
KIND_DRUP = "drup"

#: verification1 configurations the differential driver exercises:
#: both orders x both checker modes x sequential and 4-way parallel.
DEFAULT_V1_CONFIGS: tuple[tuple[str, str, int], ...] = tuple(
    (order, mode, jobs)
    for order in ("backward", "forward")
    for mode in ("rebuild", "incremental")
    for jobs in (1, 4))

#: A cheap subset for throughput benchmarking (one config per axis).
LIGHT_V1_CONFIGS: tuple[tuple[str, str, int], ...] = (
    ("backward", "incremental", 1),)


@dataclass(frozen=True)
class ProofMutation:
    """One corrupted proof, with the strongest verdict guarantee its
    construction supports (see the module docstring)."""

    operator: str
    description: str
    kind: str
    expectation: str
    clauses: tuple[tuple[int, ...], ...] = ()
    ending: str = ENDING_FINAL_PAIR
    events: tuple[DrupEvent, ...] = ()

    def build(self):
        """Materialize the mutated proof object.

        Structurally corrupt mutations raise :class:`ProofFormatError`
        here — exactly where :func:`repro.proofs.trace_format.
        parse_proof` would raise for the equivalent file — which the
        differential driver counts as rejection by every checker.
        """
        if self.kind == KIND_CC:
            return ConflictClauseProof(list(self.clauses), self.ending)
        return DrupProof(list(self.events))


def _structural(clauses: list[tuple[int, ...]], ending: str,
                fallthrough: str) -> str:
    """REJECT_ALL when the clause list no longer builds (the parser
    itself rejects it); otherwise the operator's fallthrough class."""
    try:
        ConflictClauseProof(clauses, ending)
    except ProofFormatError:
        return EXPECT_REJECT_ALL
    return fallthrough


class ProofMutator:
    """Deterministic, seedable corruption of a known-good proof.

    ``formula`` is the CNF the proof refutes (needed to pick fresh
    variables), ``proof`` the conflict-clause proof to corrupt, and
    ``drup`` (optional) a DRUP trace of the same refutation for the
    trace-level operators.  Two mutators built with the same arguments
    and ``seed`` produce identical mutation lists.
    """

    def __init__(self, formula: CnfFormula, proof: ConflictClauseProof,
                 drup: DrupProof | None = None, seed: int = 0):
        if len(proof) == 0:
            raise ValueError("cannot mutate an empty proof")
        self.formula = formula
        self.proof = proof
        self.drup = drup
        self.seed = seed
        self.fresh_var = max(formula.num_vars, proof.max_var()) + 1
        if drup is not None:
            for event in drup.events:
                for lit in event.literals:
                    self.fresh_var = max(self.fresh_var, abs(lit) + 1)
        self._refutable_cache: dict[int, bool] = {}
        self._drup_refutable: bool | None = None

    # Number of trailing clauses that form the proof's ending (the
    # final conflicting pair, or the single empty clause).
    @property
    def _tail(self) -> int:
        return 2 if self.proof.ending == ENDING_FINAL_PAIR else 1

    def _rng(self, salt: str) -> random.Random:
        return random.Random(f"{self.seed}:{salt}")

    def _mid_index(self, salt: str) -> int | None:
        """A random index strictly before the proof's ending."""
        body = len(self.proof) - self._tail
        if body <= 0:
            return None
        return self._rng(salt).randrange(body)

    # -- insertion-point probes ------------------------------------------
    #
    # A non-RUP injection is only guaranteed to be rejected when the
    # clause set at the insertion point is not BCP-refutable on its own
    # (otherwise every check there conflicts trivially).  These probes
    # establish that precondition with a single BCP run each.

    def _prefix_refutable(self, k: int) -> bool:
        """Is ``F ∪ F*[:k]`` refutable by BCP alone?"""
        cached = self._refutable_cache.get(k)
        if cached is None:
            probe = ConflictClauseProof(
                list(self.proof.clauses[:k]) + [()], ENDING_EMPTY)
            checker = ProofChecker(self.formula, probe, mode="rebuild",
                                   retire=False)
            cached = checker.check_clause(k).conflict
            self._refutable_cache[k] = cached
        return cached

    def _drup_tail_refutable(self, last_add: int) -> bool:
        """Is the trace's active clause set just before its final
        derivation refutable by BCP alone?  (Probed by forward-checking
        the genuine trace prefix with an early empty-clause addition.)"""
        if self._drup_refutable is None:
            probe = DrupProof(list(self.drup.events[:last_add])
                              + [DrupEvent(ADD, ())])
            self._drup_refutable = check_drup(self.formula, probe).ok
        return self._drup_refutable

    def _cc(self, operator: str, description: str, expectation: str,
            clauses: list[tuple[int, ...]]) -> ProofMutation:
        return ProofMutation(
            operator=operator, description=description, kind=KIND_CC,
            expectation=expectation, clauses=tuple(clauses),
            ending=self.proof.ending)

    def _drup(self, operator: str, description: str, expectation: str,
              events: list[DrupEvent]) -> ProofMutation:
        return ProofMutation(
            operator=operator, description=description, kind=KIND_DRUP,
            expectation=expectation, events=tuple(events))

    def mutations(self) -> list[ProofMutation]:
        """Every operator's mutations, in a deterministic order."""
        out: list[ProofMutation] = []
        out += self.op_drop_clause()
        out += self.op_flip_literal_sign()
        out += self.op_retarget_literal()
        out += self.op_truncate_tail()
        out += self.op_duplicate_clause()
        out += self.op_reorder_pair()
        out += self.op_inject_non_rup()
        out += self.op_corrupt_deletion()
        return out

    # -- operators --------------------------------------------------------

    def op_drop_clause(self) -> list[ProofMutation]:
        """Remove a clause: the refutation's ending, or a random mid
        clause (whose necessity is unknown — collateral coverage)."""
        out = []
        clauses = list(self.proof.clauses)
        dropped = clauses[:-1]
        out.append(self._cc(
            "drop_clause", "drop the proof's final clause",
            _structural(dropped, self.proof.ending, EXPECT_ANY),
            dropped))
        mid = self._mid_index("drop")
        if mid is not None:
            dropped = clauses[:mid] + clauses[mid + 1:]
            out.append(self._cc(
                "drop_clause", f"drop mid proof clause {mid}",
                _structural(dropped, self.proof.ending, EXPECT_ANY),
                dropped))
        if self.drup is not None:
            events = list(self.drup.events)
            empties = [i for i, e in enumerate(events)
                       if e.kind == ADD and not e.literals]
            if len(empties) == 1:
                kept = events[:empties[0]] + events[empties[0] + 1:]
                out.append(self._drup(
                    "drop_clause", "drop the empty-clause addition",
                    EXPECT_REJECT_ALL, kept))
        return out

    def op_flip_literal_sign(self) -> list[ProofMutation]:
        """Negate a literal.  Flipping one unit of the final pair turns
        it into a non-conflicting pair — a structural reject; flipping a
        random mid literal is collateral."""
        out = []
        clauses = list(self.proof.clauses)
        if self.proof.ending == ENDING_FINAL_PAIR:
            flipped = list(clauses)
            lit = flipped[-2][0]
            flipped[-2] = (-lit,)
            out.append(self._cc(
                "flip_literal_sign",
                "flip the first unit of the final pair",
                _structural(flipped, self.proof.ending, EXPECT_ANY),
                flipped))
        mid = self._mid_index("flip")
        if mid is not None and clauses[mid]:
            rng = self._rng("flip-lit")
            pos = rng.randrange(len(clauses[mid]))
            clause = list(clauses[mid])
            clause[pos] = -clause[pos]
            flipped = list(clauses)
            flipped[mid] = tuple(clause)
            out.append(self._cc(
                "flip_literal_sign",
                f"flip literal {pos} of mid clause {mid}",
                _structural(flipped, self.proof.ending, EXPECT_ANY),
                flipped))
        return out

    def op_retarget_literal(self) -> list[ProofMutation]:
        """Point literals at a fresh, unconstrained variable.  A final
        pair over a fresh variable is structurally pristine but can
        never be derived: guaranteed rejection by every checker."""
        out = []
        clauses = list(self.proof.clauses)
        fresh = self.fresh_var
        if self.proof.ending == ENDING_FINAL_PAIR:
            retargeted = list(clauses)
            retargeted[-2] = (fresh,)
            retargeted[-1] = (-fresh,)
            # Guaranteed only when the prefix cannot refute itself by
            # BCP (else the fresh pair is trivially derivable there).
            expectation = (EXPECT_ANY
                           if self._prefix_refutable(len(clauses) - 2)
                           else EXPECT_REJECT_ALL)
            out.append(self._cc(
                "retarget_literal",
                f"retarget the final pair to fresh variable {fresh}",
                expectation, retargeted))
        mid = self._mid_index("retarget")
        if mid is not None and clauses[mid]:
            rng = self._rng("retarget-lit")
            pos = rng.randrange(len(clauses[mid]))
            clause = list(clauses[mid])
            clause[pos] = fresh if clause[pos] > 0 else -fresh
            retargeted = list(clauses)
            retargeted[mid] = tuple(clause)
            out.append(self._cc(
                "retarget_literal",
                f"retarget literal {pos} of mid clause {mid} to {fresh}",
                _structural(retargeted, self.proof.ending, EXPECT_ANY),
                retargeted))
        return out

    def op_truncate_tail(self) -> list[ProofMutation]:
        """Cut the proof's tail — the truncated-file failure mode."""
        out = []
        clauses = list(self.proof.clauses)
        if len(clauses) > self._tail:
            kept = clauses[:-self._tail]
            out.append(self._cc(
                "truncate_tail", "truncate the proof's ending clauses",
                _structural(kept, self.proof.ending, EXPECT_ANY), kept))
        if self.drup is not None:
            events = list(self.drup.events)
            last_add = max((i for i, e in enumerate(events)
                            if e.kind == ADD), default=None)
            if last_add is not None and not events[last_add].literals \
                    and not any(e.kind == ADD and not e.literals
                                for e in events[:last_add]):
                out.append(self._drup(
                    "truncate_tail",
                    "truncate the trace at its final derivation",
                    EXPECT_REJECT_ALL, events[:last_add]))
        return out

    def op_duplicate_clause(self) -> list[ProofMutation]:
        """Benign control: a duplicated clause is implied by its
        original, so every checker must still accept the proof."""
        out = []
        clauses = list(self.proof.clauses)
        mid = self._mid_index("duplicate")
        if mid is not None:
            duplicated = (clauses[:mid + 1] + [clauses[mid]]
                          + clauses[mid + 1:])
            out.append(self._cc(
                "duplicate_clause", f"duplicate mid proof clause {mid}",
                EXPECT_ACCEPT, duplicated))
        if self.drup is not None:
            events = list(self.drup.events)
            adds = [i for i, e in enumerate(events)
                    if e.kind == ADD and e.literals]
            if adds:
                rng = self._rng("duplicate-drup")
                pick = adds[rng.randrange(len(adds))]
                duplicated = (events[:pick + 1] + [events[pick]]
                              + events[pick + 1:])
                out.append(self._drup(
                    "duplicate_clause",
                    f"duplicate trace addition at event {pick}",
                    EXPECT_ACCEPT, duplicated))
        return out

    def op_reorder_pair(self) -> list[ProofMutation]:
        """Move a clause across one it interacts with: swapping the last
        derivation into the final pair breaks the ending; moving a later
        clause earlier may strand it before its antecedents."""
        out = []
        clauses = list(self.proof.clauses)
        if self.proof.ending == ENDING_FINAL_PAIR and len(clauses) >= 3:
            swapped = list(clauses)
            swapped[-3], swapped[-2] = swapped[-2], swapped[-3]
            out.append(self._cc(
                "reorder_pair",
                "swap the last derivation with the final pair's first "
                "unit",
                _structural(swapped, self.proof.ending, EXPECT_ANY),
                swapped))
        body = len(clauses) - self._tail
        if body >= 2:
            rng = self._rng("reorder")
            j = rng.randrange(1, body)
            i = rng.randrange(j)
            moved = list(clauses)
            clause = moved.pop(j)
            moved.insert(i, clause)
            out.append(self._cc(
                "reorder_pair", f"move mid clause {j} before clause {i}",
                _structural(moved, self.proof.ending, EXPECT_ANY),
                moved))
        return out

    def op_inject_non_rup(self) -> list[ProofMutation]:
        """Insert a clause over a fresh variable.  It is never RUP, so
        verification1 (which checks everything) must reject; placed
        *inside* the final pair it breaks the ending outright.
        verification2 may legitimately skip the pre-pair injection —
        the refutation itself is untouched."""
        out = []
        clauses = list(self.proof.clauses)
        fresh = self.fresh_var
        injected = list(clauses)
        injected.insert(0, (fresh,))
        expectation = (EXPECT_ANY if self._prefix_refutable(0)
                       else EXPECT_REJECT_V1)
        out.append(self._cc(
            "inject_non_rup",
            f"inject fresh-variable unit ({fresh}) before the proof",
            expectation, injected))
        injected = list(clauses)
        injected.insert(len(clauses) - self._tail, (fresh,))
        expectation = (EXPECT_ANY
                       if self._prefix_refutable(
                           len(clauses) - self._tail)
                       else EXPECT_REJECT_V1)
        out.append(self._cc(
            "inject_non_rup",
            f"inject fresh-variable unit ({fresh}) before the ending",
            expectation, injected))
        if self.proof.ending == ENDING_FINAL_PAIR:
            injected = list(clauses)
            injected.insert(len(clauses) - 1, (fresh,))
            out.append(self._cc(
                "inject_non_rup",
                f"inject fresh-variable unit ({fresh}) inside the final "
                "pair",
                _structural(injected, self.proof.ending, EXPECT_ANY),
                injected))
        if self.drup is not None:
            events = list(self.drup.events)
            injected_ev = list(events)
            injected_ev.insert(0, DrupEvent(ADD, (fresh,)))
            expectation = (EXPECT_ANY if self._prefix_refutable(0)
                           else EXPECT_REJECT_ALL)
            out.append(self._drup(
                "inject_non_rup",
                f"inject fresh-variable addition ({fresh}) before the "
                "trace",
                expectation, injected_ev))
            adds = [i for i, e in enumerate(events)
                    if e.kind == ADD and e.literals]
            if adds:
                injected_ev = list(events)
                injected_ev.insert(adds[-1], DrupEvent(ADD, (fresh,)))
                expectation = (EXPECT_ANY
                               if self._drup_tail_refutable(adds[-1])
                               else EXPECT_REJECT_ALL)
                out.append(self._drup(
                    "inject_non_rup",
                    f"inject fresh-variable addition ({fresh}) before "
                    "the final derivation",
                    expectation, injected_ev))
        return out

    def op_corrupt_deletion(self) -> list[ProofMutation]:
        """Corrupt the DRUP deletion stream: deleting a clause that was
        never added must be rejected by the forward checker."""
        if self.drup is None:
            return []
        out = []
        events = list(self.drup.events)
        fresh = self.fresh_var
        deletes = [i for i, e in enumerate(events) if e.kind == DELETE]
        if deletes:
            corrupted = list(events)
            corrupted[deletes[0]] = DrupEvent(DELETE, (fresh,))
            out.append(self._drup(
                "corrupt_deletion",
                f"retarget deletion at event {deletes[0]} to a clause "
                "never added",
                EXPECT_REJECT_ALL, corrupted))
            # Deleting the same clause twice: corrupt only when exactly
            # one copy was ever active, else the second pop is legal.
            target = events[deletes[0]]
            key = tuple(sorted(set(target.literals)))
            copies = sum(
                1 for clause in self.formula
                if tuple(sorted(set(clause.literals))) == key)
            copies += sum(
                1 for e in events[:deletes[0]]
                if e.kind == ADD
                and tuple(sorted(set(e.literals))) == key)
            doubled = list(events)
            doubled.insert(deletes[0] + 1, target)
            out.append(self._drup(
                "corrupt_deletion",
                f"delete the clause at event {deletes[0]} twice",
                EXPECT_REJECT_ALL if copies == 1 else EXPECT_ANY,
                doubled))
        else:
            injected = list(events)
            injected.insert(0, DrupEvent(DELETE, (fresh,)))
            out.append(self._drup(
                "corrupt_deletion",
                "inject a deletion of a clause never added",
                EXPECT_REJECT_ALL, injected))
        return out


# -- differential driver ---------------------------------------------------

@dataclass
class MutationVerdict:
    """How the checker fleet handled one mutation."""

    mutation: ProofMutation
    rejected_at_parse: bool = False
    v1_outcomes: dict[tuple[str, str, int], bool] = field(
        default_factory=dict)
    v2_accepted: bool | None = None
    drup_accepted: bool | None = None
    checker_runs: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


@dataclass
class DifferentialSummary:
    """Aggregate of a :func:`run_differential` sweep."""

    verdicts: list[MutationVerdict] = field(default_factory=list)

    @property
    def num_mutations(self) -> int:
        return len(self.verdicts)

    @property
    def checker_runs(self) -> int:
        return sum(v.checker_runs for v in self.verdicts)

    @property
    def problems(self) -> list[str]:
        return [problem for v in self.verdicts for problem in v.problems]

    @property
    def ok(self) -> bool:
        return not self.problems

    def by_expectation(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for verdict in self.verdicts:
            expectation = verdict.mutation.expectation
            counts[expectation] = counts.get(expectation, 0) + 1
        return counts


def _tag(mutation: ProofMutation) -> str:
    return f"{mutation.operator}[{mutation.description}]"


def check_mutation(formula: CnfFormula, mutation: ProofMutation,
                   v1_configs=DEFAULT_V1_CONFIGS,
                   engine=None) -> MutationVerdict:
    """Feed one mutation to every checker and judge the outcomes.

    Any exception outside the ``ReproError`` hierarchy is a harness
    failure (checkers must degrade, not crash), recorded in
    ``problems`` rather than raised — with the exception's type, so a
    regression is still attributable.
    """
    verdict = MutationVerdict(mutation=mutation)
    tag = _tag(mutation)
    try:
        proof = mutation.build()
    except ProofFormatError:
        verdict.rejected_at_parse = True
        if mutation.expectation == EXPECT_ACCEPT:
            verdict.problems.append(
                f"{tag}: benign mutation rejected at parse")
        return verdict
    except ReproError as exc:
        verdict.problems.append(
            f"{tag}: build raised non-format ReproError {exc!r}")
        return verdict
    except Exception as exc:  # noqa: BLE001 - the property under test
        verdict.problems.append(
            f"{tag}: build crashed with {type(exc).__name__}: {exc}")
        return verdict

    if mutation.kind == KIND_DRUP:
        _judge_drup(formula, proof, verdict, tag, engine)
        return verdict
    _judge_cc(formula, proof, verdict, tag, v1_configs, engine)
    return verdict


def _judge_cc(formula: CnfFormula, proof: ConflictClauseProof,
              verdict: MutationVerdict, tag: str, v1_configs,
              engine=None) -> None:
    expectation = verdict.mutation.expectation
    for order, mode, jobs in v1_configs:
        try:
            report = verify_proof_v1(formula, proof, engine,
                                     order=order, mode=mode, jobs=jobs)
        except ReproError as exc:
            # A typed refusal counts as rejection.
            verdict.v1_outcomes[(order, mode, jobs)] = False
            verdict.checker_runs += 1
            del exc
            continue
        except Exception as exc:  # noqa: BLE001
            verdict.problems.append(
                f"{tag}: verification1({order},{mode},jobs={jobs}) "
                f"crashed with {type(exc).__name__}: {exc}")
            continue
        verdict.v1_outcomes[(order, mode, jobs)] = report.ok
        verdict.checker_runs += 1
    try:
        verdict.v2_accepted = verify_proof_v2(formula, proof, engine).ok
        verdict.checker_runs += 1
    except ReproError:
        verdict.v2_accepted = False
        verdict.checker_runs += 1
    except Exception as exc:  # noqa: BLE001
        verdict.problems.append(
            f"{tag}: verification2 crashed with "
            f"{type(exc).__name__}: {exc}")

    accepted = set(verdict.v1_outcomes.values())
    if len(accepted) > 1:
        verdict.problems.append(
            f"{tag}: verification1 configurations disagree: "
            f"{verdict.v1_outcomes}")
        return
    v1_accepts = accepted.pop() if accepted else None
    if expectation in (EXPECT_REJECT_ALL, EXPECT_REJECT_V1) \
            and v1_accepts:
        verdict.problems.append(
            f"{tag}: verification1 accepted a corrupt proof")
    if expectation == EXPECT_REJECT_ALL and verdict.v2_accepted:
        verdict.problems.append(
            f"{tag}: verification2 accepted a corrupt proof")
    if expectation == EXPECT_ACCEPT:
        if v1_accepts is False:
            verdict.problems.append(
                f"{tag}: verification1 rejected a benign mutation")
        if verdict.v2_accepted is False:
            verdict.problems.append(
                f"{tag}: verification2 rejected a benign mutation")


def _judge_drup(formula: CnfFormula, proof: DrupProof,
                verdict: MutationVerdict, tag: str,
                engine=None) -> None:
    expectation = verdict.mutation.expectation
    try:
        verdict.drup_accepted = check_drup(formula, proof,
                                           engine_cls=engine).ok
        verdict.checker_runs += 1
    except ReproError:
        verdict.drup_accepted = False
        verdict.checker_runs += 1
    except Exception as exc:  # noqa: BLE001
        verdict.problems.append(
            f"{tag}: DRUP checker crashed with "
            f"{type(exc).__name__}: {exc}")
        return
    if expectation == EXPECT_REJECT_ALL and verdict.drup_accepted:
        verdict.problems.append(
            f"{tag}: DRUP checker accepted a corrupt trace")
    if expectation == EXPECT_ACCEPT and not verdict.drup_accepted:
        verdict.problems.append(
            f"{tag}: DRUP checker rejected a benign mutation")


def run_differential(formula: CnfFormula, proof: ConflictClauseProof,
                     drup: DrupProof | None = None, seed: int = 0,
                     v1_configs=DEFAULT_V1_CONFIGS,
                     engine=None,
                     ) -> DifferentialSummary:
    """Mutate a known-good proof and sweep every mutation through the
    checker fleet; the summary is ``ok`` iff no expectation was
    violated and no checker crashed outside ``ReproError``.

    ``engine`` selects the checkers' BCP engine (a
    :data:`repro.bcp.ENGINES` name or class; default watched) — the
    expectations are engine-independent, so sweeping the same mutations
    under each engine is the adversarial half of the engine-parity
    guarantee.
    """
    mutator = ProofMutator(formula, proof, drup=drup, seed=seed)
    summary = DifferentialSummary()
    for mutation in mutator.mutations():
        summary.verdicts.append(
            check_mutation(formula, mutation, v1_configs=v1_configs,
                           engine=engine))
    return summary
