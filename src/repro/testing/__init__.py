"""Fault-injection tooling.

Two complementary harnesses:

* :mod:`repro.testing.mutate` — adversarial mutation of known-good
  proofs (logical faults: the checkers must reject);
* :mod:`repro.testing.faults` — operational faults against the
  streaming verifier's process envelope (truncation, corruption,
  signals, budgets, worker death: typed exit codes, never tracebacks).
"""

from repro.testing.mutate import (
    DEFAULT_V1_CONFIGS,
    EXPECT_ACCEPT,
    EXPECT_ANY,
    EXPECT_REJECT_ALL,
    EXPECT_REJECT_V1,
    KIND_CC,
    KIND_DRUP,
    LIGHT_V1_CONFIGS,
    DifferentialSummary,
    MutationVerdict,
    ProofMutation,
    ProofMutator,
    check_mutation,
    run_differential,
)

# Lazy so `python -m repro.testing.faults` does not import the module
# twice (once for the package, once for runpy).
_FAULT_EXPORTS = ("SCENARIOS", "FaultOutcome", "run_suite")


def __getattr__(name: str):
    if name in _FAULT_EXPORTS:
        from repro.testing import faults

        return getattr(faults, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "SCENARIOS",
    "FaultOutcome",
    "run_suite",
    "ProofMutator",
    "ProofMutation",
    "MutationVerdict",
    "DifferentialSummary",
    "check_mutation",
    "run_differential",
    "DEFAULT_V1_CONFIGS",
    "LIGHT_V1_CONFIGS",
    "EXPECT_REJECT_ALL",
    "EXPECT_REJECT_V1",
    "EXPECT_ACCEPT",
    "EXPECT_ANY",
    "KIND_CC",
    "KIND_DRUP",
]
