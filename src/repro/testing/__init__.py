"""Fault-injection tooling: adversarial mutation of known-good proofs.

See :mod:`repro.testing.mutate` for the operator roster and the
differential driver.
"""

from repro.testing.mutate import (
    DEFAULT_V1_CONFIGS,
    EXPECT_ACCEPT,
    EXPECT_ANY,
    EXPECT_REJECT_ALL,
    EXPECT_REJECT_V1,
    KIND_CC,
    KIND_DRUP,
    LIGHT_V1_CONFIGS,
    DifferentialSummary,
    MutationVerdict,
    ProofMutation,
    ProofMutator,
    check_mutation,
    run_differential,
)

__all__ = [
    "ProofMutator",
    "ProofMutation",
    "MutationVerdict",
    "DifferentialSummary",
    "check_mutation",
    "run_differential",
    "DEFAULT_V1_CONFIGS",
    "LIGHT_V1_CONFIGS",
    "EXPECT_REJECT_ALL",
    "EXPECT_REJECT_V1",
    "EXPECT_ACCEPT",
    "EXPECT_ANY",
    "KIND_CC",
    "KIND_DRUP",
]
