"""Streaming bounded-memory forward verification of DRUP traces.

The forward checker (:mod:`repro.verify.forward`) already honors
deletion lines, but it still materializes the whole trace up front —
so a proof larger than RAM kills it before the first RUP check.  This
driver is the window-shifting alternative (Chen 2016, DRAT-trim): one
pass over the trace through the chunked reader
(:class:`repro.proofs.stream.DrupStreamReader`), holding only the
*live* clause set, under a hard memory budget, with crash-safe
checkpoints.

Four properties distinguish it from :func:`~repro.verify.forward.
check_drup`:

**Bounded memory.**  Events are parsed, checked, and discarded one at
a time; the resident state is the formula plus the live proof-added
clauses.  :class:`~repro.verify.budget.CheckBudget`'s
``max_live_clauses``/``max_bytes`` axes cap that live set — a trace
whose deletions do not keep it under the cap degrades to a
``resource_limit_exceeded`` partial report (with a resume token, so a
bigger budget can pick up where it stopped) instead of an OOM kill.

**Window shifting.**  Deleted clauses are tombstoned by the engines,
but their storage (arena pool words, watch-table slots) is never
reclaimed in place.  When the dead fraction crosses
``window_slack``, the driver rebuilds a fresh engine over only the
live clauses — the "window shift" — and the old engine's storage is
garbage.  Propagation-work accounting is carried across shifts, so
budgets and reports see one continuous run.  A run carrying a memory
sampler (``obs.mem``) also cross-checks the ``max_bytes`` *estimate*
against *measured* RSS at every shift: growth past both an absolute
floor and a multiple of the estimate emits a ``mem_estimate_drift``
trace event and bumps ``repro_mem_estimate_drift_total`` — the model
being wrong is surfaced, never fatal.

**Checkpoint/resume.**  Every ``checkpoint_every`` events (and on
interrupt or budget exhaustion) the driver flushes a small JSON resume
token (schema ``repro.obs.checkpoint/v1``) via the atomic-artifact
writer: trace position (byte offset/line/event index), the live
clause window, deleted-formula indices, and the propagation work
spent.  ``resume=True`` validates the token against digests of the
formula and the proof file (a mismatch raises
:class:`~repro.core.exceptions.CheckpointError`) and continues from
the recorded offset; an interrupted-then-resumed run reaches the same
verdict as an uninterrupted one.  A run that reaches a verdict deletes
its token — resume is only ever offered from an unfinished run.

**Strict deletion semantics.**  A deletion naming a clause that is not
live is a malformed event stream here (the chunked reader/fault
injector surfaces these from truncated or corrupt traces), so it
raises :class:`~repro.core.exceptions.ProofFormatError` → CLI exit 65.
``lenient_deletions=True`` downgrades it to a counted warning and a
skip (DRAT-trim's behavior).  The in-memory forward checker keeps its
historical ``proof_is_not_correct`` verdict for the same input —
three defensible behaviors, each documented where it lives.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field

from repro.bcp import engine_name, resolve_engine
from repro.bcp.engine import FALSE, TRUE, PropagationCounters, \
    PropagatorBase
from repro.core.exceptions import CheckpointError, ProofFormatError
from repro.core.formula import CnfFormula
from repro.core.literals import encode
from repro.obs.export import atomic_write_text
from repro.obs.mem import record_arena_gauges
from repro.obs.schema import CHECKPOINT_SCHEMA, validate_checkpoint
from repro.proofs.drup import ADD
from repro.proofs.stream import DEFAULT_CHUNK_BYTES, DrupStreamReader
from repro.verify.budget import CheckBudget
from repro.verify.instrument import ReportBuilder
from repro.verify.report import (
    PROOF_IS_CORRECT,
    PROOF_IS_NOT_CORRECT,
    RESOURCE_LIMIT_EXCEEDED,
    VerificationStats,
)

#: Default checkpoint cadence, in processed trace events.
DEFAULT_CHECKPOINT_EVERY = 5000


class _BoundaryInterrupt(KeyboardInterrupt):
    """Interrupt re-raised at an event boundary (state is consistent:
    the resume position points just past a fully-applied event)."""


class _InterruptGuard:
    """Defer SIGINT/SIGTERM to event boundaries.

    A checkpoint written mid-event could record the live set with a
    half-applied addition or deletion; on resume the event would replay
    against it (double-counting, or a strict-mode "unknown deletion").
    The guard turns the *first* signal into a flag the event loop
    checks after each event is fully applied; a *second* signal raises
    immediately — an emergency stop stays available if a check hangs.

    Handlers can only be installed from the main thread; elsewhere
    (`installed` False) the caller falls back to catching a raw
    ``KeyboardInterrupt`` with best-effort consistency.
    """

    def __init__(self):
        self.pending: int | None = None
        self.installed = False
        self._previous: dict = {}

    def _handle(self, signum, frame):
        if self.pending is not None:
            raise KeyboardInterrupt
        self.pending = signum

    def __enter__(self):
        import signal

        try:
            for sig in (signal.SIGINT, signal.SIGTERM):
                self._previous[sig] = signal.signal(sig, self._handle)
            self.installed = True
        except ValueError:
            for sig, old in self._previous.items():
                signal.signal(sig, old)
            self._previous = {}
        return self

    def __exit__(self, *exc):
        import signal

        for sig, old in self._previous.items():
            signal.signal(sig, old)
        return False

#: Rebuild the engine once dead (tombstoned) clauses outnumber live
#: ones by this factor...
DEFAULT_WINDOW_SLACK = 2.0
#: ...but never before this many are dead (rebuilds are O(live); tiny
#: windows would thrash).
_MIN_DEAD_FOR_SHIFT = 32

#: Engine bookkeeping charged per live proof-added clause by the
#: ``max_bytes`` estimate, in 32-bit words: two watch-table entries,
#: each a (cid, blocker) pair, on top of the arena's one offset word
#: per clause.  The original estimate counted pool words only and
#: under-reported the real footprint of short clauses by roughly this
#: factor — ``max_bytes`` budgets tripped far later than the RSS they
#: were meant to bound.
ENGINE_OVERHEAD_WORDS_PER_CLAUSE = 4

#: ``mem_estimate_drift`` fires when measured RSS growth since setup
#: exceeds this multiple of the byte estimate...
MEM_DRIFT_FACTOR = 4.0
#: ...and this absolute floor — interpreter noise and allocator slack
#: dwarf small estimates, so tiny windows never alarm.
MEM_DRIFT_FLOOR_BYTES = 32 * 1024 * 1024


@dataclass
class StreamingCheckReport:
    """Outcome of a streaming forward DRUP check.

    Counts are cumulative across resume: ``num_additions``/
    ``num_deletions`` include the events the checkpointed prefix
    processed, so a resumed run's report reads as one uninterrupted
    verification.  ``stopped_at_event`` is set on the
    ``resource_limit_exceeded`` partial outcome; ``checkpoint_path``
    names the resume token left on disk (None once a verdict is
    reached — the token is deleted, there is nothing to resume).
    """

    outcome: str
    num_additions: int = 0
    num_deletions: int = 0
    failed_event_index: int | None = None
    failure_reason: str | None = None
    peak_live_clauses: int = 0
    live_clauses: int = 0
    verification_time: float = 0.0
    stopped_at_event: int | None = None
    engine: str = "watched"
    window_shifts: int = 0
    checkpoints_written: int = 0
    resumed_from_event: int | None = None
    checkpoint_path: str | None = None
    warnings: list[str] = field(default_factory=list)
    bcp_counters: dict | None = None
    stats: VerificationStats | None = None

    @property
    def ok(self) -> bool:
        return self.outcome == PROOF_IS_CORRECT

    @property
    def exhausted(self) -> bool:
        return self.outcome == RESOURCE_LIMIT_EXCEEDED


def formula_digest(formula: CnfFormula) -> str:
    """Content digest of a formula (clause order included), used to
    pin a checkpoint to the formula it was recorded against."""
    hasher = hashlib.sha256()
    hasher.update(f"p cnf {formula.num_vars}\n".encode())
    for clause in formula:
        hasher.update(" ".join(map(str, clause.literals)).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


def file_digest(path, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> str:
    """sha256 of a file, read in bounded chunks."""
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                break
            hasher.update(chunk)
    return hasher.hexdigest()


def load_checkpoint(path) -> dict:
    """Read and structurally validate a resume token."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON: {exc}") from exc
    problems = validate_checkpoint(doc)
    if problems:
        raise CheckpointError(
            f"checkpoint {path} is invalid: {'; '.join(problems)}")
    return doc


def _fold_counters(total: PropagationCounters,
                   part: PropagationCounters) -> None:
    total.assignments += part.assignments
    total.watch_visits += part.watch_visits
    total.clause_visits += part.clause_visits
    total.purged += part.purged
    total.detach_misses += part.detach_misses


def verify_stream(formula: CnfFormula, proof_path, *,
                  budget: CheckBudget | None = None,
                  obs=None,
                  engine_cls: "type[PropagatorBase] | str | None" = None,
                  checkpoint_path=None,
                  checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                  resume: bool = False,
                  lenient_deletions: bool = False,
                  chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                  window_slack: float = DEFAULT_WINDOW_SLACK,
                  ) -> StreamingCheckReport:
    """One-pass bounded-memory forward check of the DRUP file at
    ``proof_path`` (see module docstring for the full contract).

    Interrupts (``KeyboardInterrupt`` — the CLI maps SIGTERM onto it
    too) flush a final checkpoint before propagating, so a killed run
    is resumable; ``resume=True`` requires ``checkpoint_path``.
    """
    engine_cls = resolve_engine(engine_cls)
    if not engine_cls.supports_removal:
        raise ValueError(
            f"engine '{engine_name(engine_cls)}' does not support "
            "clause removal; streaming verification lives on deletion "
            "events — use the watched, arena, or vector engine")
    if resume and checkpoint_path is None:
        raise ValueError("resume=True requires a checkpoint_path")

    build = ReportBuilder(StreamingCheckReport, obs=obs,
                          progress_label="events",
                          engine=engine_name(engine_cls))
    warnings: list[str] = []

    # -- resume-token validation (before any engine work) ------------------
    fdigest = formula_digest(formula)
    pdigest = file_digest(proof_path, chunk_bytes)
    token = None
    if resume:
        token = load_checkpoint(checkpoint_path)
        if token["formula_sha256"] != fdigest:
            raise CheckpointError(
                f"checkpoint {checkpoint_path} was recorded against a "
                "different formula (digest mismatch)")
        if token["proof_sha256"] != pdigest:
            raise CheckpointError(
                f"checkpoint {checkpoint_path} was recorded against a "
                "different proof file (digest mismatch)")

    with build.phase("setup", procedure="drup-streaming"):
        engine = engine_cls(formula.num_vars)
        # cid -> original literals of every *live* clause, in load
        # order: the window-shift rebuild and the checkpoint are both
        # replays of this dict.
        live_lits: dict[int, tuple[int, ...]] = {}
        # cid -> formula clause index (live formula clauses only).
        formula_index: dict[int, int] = {}
        units: dict[int, int] = {}   # cid -> encoded literal
        active: dict[tuple[int, ...], list[int]] = {}

        def clause_key(literals) -> tuple[int, ...]:
            return tuple(sorted(set(literals)))

        def load(literals, findex: int | None = None) -> int:
            cid = engine.add_clause([encode(lit) for lit in literals],
                                    propagate_units=False)
            if engine.clause_len(cid) == 1:
                units[cid] = engine.clause_lits(cid)[0]
            active.setdefault(clause_key(literals), []).append(cid)
            live_lits[cid] = tuple(literals)
            if findex is not None:
                formula_index[cid] = findex
            return cid

        deleted_formula: set[int] = set()
        live_additions = 0       # live proof-added clauses
        live_addition_words = 0  # their literal count (for max_bytes)
        additions = 0
        deletions = 0
        window_shifts = 0
        checkpoints_written = 0
        loaded = 0               # cids allocated in the current engine
        resumed_from = None
        start_offset, start_line, start_index = 0, 1, 0

        if token is not None:
            deleted_formula = set(token["deleted_formula_indices"])
            for findex, clause in enumerate(formula):
                if findex not in deleted_formula:
                    load(clause.literals, findex)
            for lits in token["live_additions"]:
                load(lits)
                live_additions += 1
                live_addition_words += len(lits)
            additions = token["additions"]
            deletions = token["deletions"]
            window_shifts = token["window_shifts"]
            start_offset = token["offset"]
            start_line = token["next_line"]
            start_index = token["next_index"]
            resumed_from = start_index
            peak = max(token["peak_live_clauses"], len(live_lits))
            if obs is not None:
                obs.event("stream_resumed", offset=start_offset,
                          event_index=start_index)
        else:
            for findex, clause in enumerate(formula):
                load(clause.literals, findex)
            peak = len(live_lits)
        loaded = len(live_lits)

        # RSS baseline for the estimate-vs-measured cross-check: any
        # resident growth past this point is attributable to the
        # proof's live set (plus interpreter/allocator noise — hence
        # the drift floor).  Only armed when the run carries a memory
        # sampler; a dead sampler silently disarms it.
        mem_sampler = getattr(obs, "mem", None) \
            if obs is not None else None
        baseline_rss = None
        if mem_sampler is not None:
            baseline_sample = mem_sampler.sample()
            if baseline_sample is not None:
                baseline_rss = baseline_sample["rss_bytes"]

        meter = budget.start(engine.counters) \
            if budget is not None else None
        # Work done before the current engine existed: prior resumed
        # runs, plus engines retired by window shifts.  Kept so budgets
        # and the final counters see one continuous run.
        prior_counters = PropagationCounters()
        if token is not None:
            prior_counters.assignments = token["budget_spent"]["props"]
            if meter is not None:
                # Pre-charge the resumed work against max_props (the
                # wall clock restarts; work units are cumulative).
                meter._base -= token["budget_spent"]["props"]

    counters = engine.counters

    def total_props() -> int:
        # prior_counters already carries resumed + pre-shift work.
        return prior_counters.total_work() + counters.total_work()

    def merged_counters() -> dict:
        merged = PropagationCounters(**prior_counters.as_dict())
        _fold_counters(merged, counters)
        return merged.as_dict()

    def live_bytes() -> int:
        # Engine-agnostic estimate over the *proof-added* live set:
        # one int32 word per literal, one arena offset word per
        # clause, plus the engine's own bookkeeping
        # (ENGINE_OVERHEAD_WORDS_PER_CLAUSE — watch-table entries).
        # The formula is resident in any checker and is not charged
        # to the proof cap.
        return (live_addition_words
                + live_additions
                * (1 + ENGINE_OVERHEAD_WORDS_PER_CLAUSE)) * 4

    def set_live_gauges() -> None:
        if obs is None:
            return
        obs.gauge_set("repro_stream_live_clauses", len(live_lits),
                      help="Live clauses (formula + proof) in the "
                           "streaming window")
        obs.gauge_set("repro_stream_live_proof_clauses", live_additions,
                      help="Live proof-added clauses in the streaming "
                           "window")

    # Position of the resume point: just past the last processed event.
    position = {"offset": start_offset, "next_line": start_line,
                "next_index": start_index}
    run_start = time.perf_counter()

    def write_checkpoint() -> None:
        nonlocal checkpoints_written
        if checkpoint_path is None:
            return
        seconds = time.perf_counter() - run_start
        if token is not None:
            seconds += token["budget_spent"]["seconds"]
        doc = {
            "schema": CHECKPOINT_SCHEMA,
            "formula_sha256": fdigest,
            "proof_sha256": pdigest,
            "offset": position["offset"],
            "next_line": position["next_line"],
            "next_index": position["next_index"],
            "additions": additions,
            "deletions": deletions,
            "peak_live_clauses": peak,
            "window_shifts": window_shifts,
            "deleted_formula_indices": sorted(deleted_formula),
            "live_additions": [
                list(lits) for cid, lits in live_lits.items()
                if cid not in formula_index],
            "budget_spent": {"props": total_props(),
                             "seconds": seconds},
            "engine": engine_name(engine_cls),
        }
        atomic_write_text(checkpoint_path,
                          json.dumps(doc, separators=(",", ":")))
        checkpoints_written += 1
        if obs is not None:
            obs.event("checkpoint_written",
                      offset=position["offset"],
                      event_index=position["next_index"],
                      live_clauses=len(live_lits))
            obs.counter_add("repro_checkpoints_written_total",
                            help="Streaming resume tokens flushed")

    def discard_checkpoint() -> None:
        # A verdict was reached: the resume token is spent.  Leaving it
        # would invite resuming a *finished* run, which cannot re-derive
        # the verdict (the events past the empty clause were never read).
        if checkpoint_path is not None \
                and (checkpoints_written or token is not None):
            try:
                os.unlink(checkpoint_path)
            except FileNotFoundError:
                pass

    def shift_window() -> None:
        """Rebuild the engine over only the live clauses.

        The rebuild is traced as a ``window_shift`` *span* (not an
        instant event): it is real wall time the timeline must
        account for, and on long streams the shifts show up as the
        critical path's serial segments.
        """
        nonlocal engine, counters, loaded, units, active, live_lits, \
            formula_index, meter, window_shifts
        window_shifts += 1
        span_cm = (obs.tracer.span("window_shift",
                                   shift=window_shifts)
                   if obs is not None and obs.tracer is not None
                   else None)
        end_attrs = span_cm.__enter__() if span_cm is not None else None
        try:
            _fold_counters(prior_counters, counters)
            if meter is not None:
                meter = meter.rebase(None)
                meter._base = -prior_counters.total_work()
            old_live = live_lits
            old_findex = formula_index
            engine = engine_cls(formula.num_vars)
            live_lits = {}
            formula_index = {}
            units = {}
            active = {}
            for old_cid, lits in old_live.items():
                load(lits, old_findex.get(old_cid))
            counters = engine.counters
            loaded = len(live_lits)
        finally:
            if span_cm is not None:
                end_attrs["live_clauses"] = len(live_lits)
                span_cm.__exit__(None, None, None)
        if obs is not None:
            obs.counter_add("repro_stream_window_shifts_total",
                            help="Engine rebuilds over the live window")
            record_arena_gauges(obs, engine)
        # Cross-check the byte *estimate* against *measured* RSS at
        # every shift (the natural cadence: the live set just changed
        # shape).  A large multiple says the max_bytes model no longer
        # tracks reality — surfaced as an event, never a failure.
        if mem_sampler is not None and baseline_rss is not None:
            shift_sample = mem_sampler.sample()
            if shift_sample is not None:
                growth = shift_sample["rss_bytes"] - baseline_rss
                estimate = live_bytes()
                if growth > MEM_DRIFT_FLOOR_BYTES \
                        and growth > MEM_DRIFT_FACTOR \
                        * max(estimate, 1):
                    obs.event("mem_estimate_drift",
                              measured_growth_bytes=growth,
                              estimated_live_bytes=estimate,
                              shift=window_shifts)
                    obs.counter_add(
                        "repro_mem_estimate_drift_total",
                        help="Window shifts where measured RSS growth "
                             "left the max_bytes estimate behind")

    def rup_check(literals) -> bool:
        engine.new_level()
        conflict = False
        for lit in literals:
            negated = encode(lit) ^ 1
            value = engine.value(negated)
            if value == TRUE:
                continue
            if value == FALSE:
                conflict = True
                break
            engine.enqueue(negated, None)
        if not conflict:
            for cid, enc in units.items():
                value = engine.value(enc)
                if value == TRUE:
                    continue
                if value == FALSE:
                    conflict = True
                    break
                engine.enqueue(enc, cid)
        if not conflict:
            conflict = engine.propagate() is not None
        engine.backtrack(0)
        return conflict

    def partial(reason: str, index: int) -> StreamingCheckReport:
        if obs is not None:
            obs.event("budget_exhausted", reason=reason)
            obs.counter_add("repro_budget_exhausted_total")
        write_checkpoint()
        return build.build(
            RESOURCE_LIMIT_EXCEEDED,
            bcp_counters=merged_counters(),
            num_additions=additions, num_deletions=deletions,
            stopped_at_event=index, failure_reason=reason,
            peak_live_clauses=peak, live_clauses=len(live_lits),
            window_shifts=window_shifts,
            checkpoints_written=checkpoints_written,
            resumed_from_event=resumed_from,
            checkpoint_path=(str(checkpoint_path)
                             if checkpoint_path is not None else None),
            warnings=warnings)

    def verdict(outcome: str, **fields) -> StreamingCheckReport:
        discard_checkpoint()
        return build.build(
            outcome, bcp_counters=merged_counters(),
            num_additions=additions, num_deletions=deletions,
            peak_live_clauses=peak, live_clauses=len(live_lits),
            window_shifts=window_shifts,
            checkpoints_written=checkpoints_written,
            resumed_from_event=resumed_from,
            warnings=warnings, **fields)

    reader = DrupStreamReader(proof_path, start_offset=start_offset,
                              start_line=start_line,
                              start_index=start_index,
                              chunk_bytes=chunk_bytes)
    derived_empty = False
    events_since_checkpoint = 0
    guard = _InterruptGuard()
    try:
        with guard, build.phase("events"):
            for streamed in reader:
                index = streamed.index
                event = streamed.event
                if meter is not None:
                    reason = meter.exhausted(counters)
                    if reason is not None:
                        return partial(reason, index)
                if event.kind == ADD:
                    if meter is not None and event.literals:
                        reason = meter.exhausted(
                            live_clauses=live_additions + 1,
                            live_bytes=live_bytes()
                            + (len(event.literals) + 1
                               + ENGINE_OVERHEAD_WORDS_PER_CLAUSE) * 4)
                        if reason is not None:
                            return partial(reason, index)
                    additions += 1
                    if obs is None:
                        passed = rup_check(event.literals)
                    else:
                        with build.check(index, counters):
                            passed = rup_check(event.literals)
                    if not passed:
                        return verdict(
                            PROOF_IS_NOT_CORRECT,
                            failed_event_index=index,
                            failure_reason=(f"addition {event.literals} "
                                            "is not RUP"))
                    if not event.literals:
                        derived_empty = True
                        break
                    load(event.literals)
                    loaded += 1
                    live_additions += 1
                    live_addition_words += len(event.literals)
                    peak = max(peak, len(live_lits))
                else:
                    deletions += 1
                    key = clause_key(event.literals)
                    cids = active.get(key)
                    if not cids:
                        if not lenient_deletions:
                            raise ProofFormatError(
                                f"line {streamed.line_number}: deletion "
                                f"of unknown or already-deleted clause "
                                f"{list(event.literals)} (use "
                                "lenient deletions to skip)")
                        warnings.append(
                            f"event {index}: skipped deletion of "
                            f"unknown clause {list(event.literals)}")
                    else:
                        cid = cids.pop()
                        engine.remove_clause(cid)
                        units.pop(cid, None)
                        lits = live_lits.pop(cid)
                        findex = formula_index.pop(cid, None)
                        if findex is not None:
                            deleted_formula.add(findex)
                        else:
                            live_additions -= 1
                            live_addition_words -= len(lits)
                    if build.progress is not None:
                        build.progress.update(additions + deletions)
                set_live_gauges()
                position = {"offset": streamed.offset,
                            "next_line": streamed.line_number + 1,
                            "next_index": index + 1}
                if guard.pending is not None:
                    raise _BoundaryInterrupt
                events_since_checkpoint += 1
                if checkpoint_path is not None \
                        and events_since_checkpoint >= checkpoint_every:
                    write_checkpoint()
                    events_since_checkpoint = 0
                dead = loaded - len(live_lits)
                if dead >= _MIN_DEAD_FOR_SHIFT \
                        and dead > window_slack * max(len(live_lits), 1):
                    shift_window()
    except KeyboardInterrupt as exc:
        # Flush a final resume token before the interrupt propagates
        # (the CLI turns this into exit 130) — but only when the state
        # is consistent: at an event boundary, or in the no-guard
        # fallback (non-main thread) where best effort is all there is.
        # A second, emergency signal mid-event skips the write; the
        # last cadence checkpoint remains the resume point.
        if isinstance(exc, _BoundaryInterrupt) or not guard.installed:
            write_checkpoint()
        raise

    if obs is not None:
        obs.counter_add("repro_drup_additions_total", additions,
                        help="DRUP additions RUP-checked")
        obs.counter_add("repro_drup_deletions_total", deletions,
                        help="DRUP deletion events honored")
        obs.gauge_set("repro_drup_peak_active_clauses", peak,
                      help="Peak size of the active clause set")
        record_arena_gauges(obs, engine)
    if not derived_empty:
        return verdict(
            PROOF_IS_NOT_CORRECT,
            failure_reason="trace never derives the empty clause")
    return verdict(PROOF_IS_CORRECT)
