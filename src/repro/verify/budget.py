"""Resource budgets for proof verification.

The paper's procedures are total — BCP terminates — but "terminates" is
not "terminates soon": an adversarial or merely enormous proof can make
a checker run for hours.  A production verifier must instead degrade
gracefully: stop at a declared budget and report *partial progress*
(how many checks completed, where it stopped) with the dedicated
``resource_limit_exceeded`` outcome, never an unbounded run and never a
raw exception at the API surface.

Four budget axes are supported, mirroring DRAT-trim's ``-t``/``-L``
style limits plus the streaming driver's memory cap:

``timeout``
    Wall-clock seconds, measured with ``time.monotonic`` from
    :meth:`CheckBudget.start`.  On Linux the monotonic clock is shared
    across ``fork``-ed processes, so one deadline is enforceable by
    every pool worker.

``max_props``
    Propagation *work units* — ``assignments + clause_visits`` from the
    engines' :class:`~repro.bcp.engine.PropagationCounters` — the same
    instrumentation the incremental-engine speedups are claimed in.
    Wall-clock limits are machine-dependent; work units are not, so CI
    budgets stay meaningful across hardware.

``max_live_clauses`` / ``max_bytes``
    The **memory** axes, consumed by the streaming forward checker
    (:mod:`repro.verify.streaming`): the number of *live* proof-added
    clauses and their estimated resident footprint.  The estimate
    charges one 32-bit word per literal, one arena offset word per
    clause, and the engine's watch-table bookkeeping
    (:data:`~repro.verify.streaming.ENGINE_OVERHEAD_WORDS_PER_CLAUSE`
    words per clause) — the earlier pool-words-only model
    under-reported short clauses severely.  It remains an estimate:
    runs with a memory sampler cross-check it against measured RSS at
    every window shift and flag divergence as ``mem_estimate_drift``.
    Unlike time and work, memory pressure is relieved by deletion
    events, so these axes are checked against a *current* value the
    driver passes in — drivers that track no live set simply never
    trip them.  Exhaustion degrades to the same
    ``resource_limit_exceeded`` partial report, never an OOM kill.

Granularity: budgets are consulted *between* checks (per proof clause,
per DRUP event, per shard index), not inside a single BCP run.  A single
check can therefore overshoot by one BCP fixpoint; that is bounded by
the clause database and keeps the hot loops budget-free.  In the
parallel backend each worker enforces the shared deadline itself and the
``max_props`` limit against its own counters, so the aggregate may
overshoot by up to one shard per worker — degradation is best-effort,
the *outcome* is still exact.

Internally, exhaustion travels as :class:`BudgetExhausted` (a
``ReproError``) and is converted by the verification drivers into a
report; it never escapes the public ``verify_*`` entry points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bcp.engine import PropagationCounters
from repro.core.exceptions import ReproError


class BudgetExhausted(ReproError):
    """Internal control-flow signal: a check budget ran out.

    Caught by the verification drivers and turned into a
    ``resource_limit_exceeded`` report; user code never sees it unless
    it drives a :class:`~repro.verify.checker.ProofChecker` directly.
    """


@dataclass(frozen=True)
class CheckBudget:
    """Declarative resource limits for one verification run.

    ``timeout`` is wall-clock seconds; ``max_props`` is propagation work
    units (``assignments + clause_visits``); ``max_live_clauses`` and
    ``max_bytes`` cap the streaming checker's live clause set (count
    and estimated bytes).  ``None`` disables an axis; a budget with
    every axis ``None`` is valid and never trips.  Call :meth:`start`
    to obtain the mutable :class:`BudgetMeter` that a single run
    charges against — the budget itself stays immutable and reusable
    across runs.
    """

    timeout: float | None = None
    max_props: int | None = None
    max_live_clauses: int | None = None
    max_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(
                f"timeout must be positive, got {self.timeout!r}")
        for axis in ("max_props", "max_live_clauses", "max_bytes"):
            value = getattr(self, axis)
            if value is not None and value <= 0:
                raise ValueError(
                    f"{axis} must be positive, got {value!r}")

    @property
    def unlimited(self) -> bool:
        return (self.timeout is None and self.max_props is None
                and self.max_live_clauses is None
                and self.max_bytes is None)

    def start(self, counters: PropagationCounters | None = None,
              ) -> "BudgetMeter":
        """Begin metering a run: the clock starts now, and ``counters``
        (if given) provides the work-unit baseline to charge against."""
        return BudgetMeter(self, counters)


class BudgetMeter:
    """A running charge against a :class:`CheckBudget`.

    Created by :meth:`CheckBudget.start`.  The meter is cheap to consult
    (:meth:`exhausted` / :meth:`ensure`) and can be *rebased* onto a
    different counter object — a forked pool worker owns a fresh engine,
    so it calls :meth:`rebase` to keep the shared deadline while
    charging work units against its own counters.
    """

    def __init__(self, budget: CheckBudget,
                 counters: PropagationCounters | None = None,
                 deadline: float | None = None):
        self.budget = budget
        self.deadline = deadline
        if deadline is None and budget.timeout is not None:
            self.deadline = time.monotonic() + budget.timeout
        self._base = counters.total_work() if counters is not None else 0

    def rebase(self, counters: PropagationCounters | None) -> "BudgetMeter":
        """The same deadline, charged against a new counter baseline."""
        return BudgetMeter(self.budget, counters, deadline=self.deadline)

    def props_used(self, counters: PropagationCounters) -> int:
        return counters.total_work() - self._base

    def remaining_time(self) -> float | None:
        """Seconds left before the deadline (None: no time limit)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def exhausted(self, counters: PropagationCounters | None = None, *,
                  live_clauses: int | None = None,
                  live_bytes: int | None = None) -> str | None:
        """The reason the budget is exhausted, or None if it is not.

        ``live_clauses``/``live_bytes`` are the streaming driver's
        current live-set accounting; callers that track no live set
        omit them and the memory axes never trip (keyword-only, so
        every pre-memory call site is unchanged).
        """
        if self.deadline is not None:
            over = time.monotonic() - self.deadline
            if over >= 0:
                return (f"wall-clock budget of {self.budget.timeout:g}s "
                        f"exhausted ({over:.3f}s over)")
        if self.budget.max_props is not None and counters is not None:
            used = self.props_used(counters)
            if used >= self.budget.max_props:
                return (f"propagation budget of {self.budget.max_props} "
                        f"work units exhausted ({used} used)")
        if self.budget.max_live_clauses is not None \
                and live_clauses is not None \
                and live_clauses > self.budget.max_live_clauses:
            return (f"live-clause budget of "
                    f"{self.budget.max_live_clauses} exceeded "
                    f"({live_clauses} live)")
        if self.budget.max_bytes is not None \
                and live_bytes is not None \
                and live_bytes > self.budget.max_bytes:
            return (f"memory budget of {self.budget.max_bytes} bytes "
                    f"exceeded ({live_bytes} bytes live)")
        return None

    def ensure(self, counters: PropagationCounters | None = None, *,
               live_clauses: int | None = None,
               live_bytes: int | None = None) -> None:
        """Raise :class:`BudgetExhausted` if the budget ran out."""
        reason = self.exhausted(counters, live_clauses=live_clauses,
                                live_bytes=live_bytes)
        if reason is not None:
            raise BudgetExhausted(reason)
