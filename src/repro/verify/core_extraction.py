"""Unsatisfiable core extraction and validation helpers.

The core comes out of ``Proof_verification2`` for free (Section 4 of the
paper): a clause of ``F`` left unmarked "has never been employed in
deducing a useful clause of F*.  So it can be removed from F without
affecting the unsatisfiability of the latter."
"""

from __future__ import annotations

from repro.core.exceptions import ReproError
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.verify.report import UnsatCore
from repro.verify.verification import verify_proof_v2


def extract_core(formula: CnfFormula,
                 proof: ConflictClauseProof,
                 obs=None) -> UnsatCore:
    """Extract an unsatisfiable core of ``formula`` from a correct proof.

    Raises :class:`ReproError` if the proof does not verify (an incorrect
    proof identifies nothing).  ``obs`` attaches the instrumentation
    layer of the underlying ``verify_proof_v2`` run — attach a
    :class:`~repro.obs.insight.depgraph.DepGraphRecorder` to capture
    *why* each core clause was marked.
    """
    report = verify_proof_v2(formula, proof, obs=obs)
    if not report.ok:
        raise ReproError(
            "cannot extract a core from an incorrect proof: "
            f"{report.failure_reason}")
    if report.core is None:
        raise AssertionError("verification2 always produces a core")
    return report.core


def validate_core(core: UnsatCore) -> bool:
    """Re-solve the core and confirm it is unsatisfiable.

    An independent sanity check used by the tests and the Table 1
    harness; not part of the paper's procedure (whose guarantee is by
    construction).
    """
    from repro.solver.cdcl import solve  # local import: avoid cycle

    return solve(core.as_formula()).is_unsat
