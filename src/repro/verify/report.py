"""Verification reports and unsat cores."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.clause import Clause
from repro.core.formula import CnfFormula

PROOF_IS_CORRECT = "proof_is_correct"
PROOF_IS_NOT_CORRECT = "proof_is_not_correct"
# The run stopped at a CheckBudget limit before reaching a verdict; the
# report carries partial progress (num_checked, stopped_at_index).
RESOURCE_LIMIT_EXCEEDED = "resource_limit_exceeded"


@dataclass
class UnsatCore:
    """An unsatisfiable subset of the original formula's clauses.

    Extracted as a by-product of ``Proof_verification2`` (paper Section 4):
    the clauses of ``F`` that were marked as responsible for some conflict
    during proof verification.  The core is unsatisfiable but not
    necessarily minimal.
    """

    clause_indices: tuple[int, ...]
    formula: CnfFormula

    def clauses(self) -> list[Clause]:
        return [self.formula[i] for i in self.clause_indices]

    def as_formula(self) -> CnfFormula:
        """The core as a standalone formula (original variable names)."""
        core = CnfFormula(num_vars=self.formula.num_vars)
        for index in self.clause_indices:
            core.add_clause(self.formula[index])
        return core

    @property
    def size(self) -> int:
        return len(self.clause_indices)

    @property
    def fraction(self) -> float:
        """Core size as a fraction of the original clause count
        (the paper's Table 1 'Unsatisfiable core' column)."""
        total = self.formula.num_clauses
        return len(self.clause_indices) / total if total else 0.0


@dataclass
class VerificationStats:
    """Typed per-run breakdown built by the instrumented report builder.

    ``total_time`` is the run's wall time; ``phase_times`` maps phase
    name (``setup``, ``checks``, ``marking``, ``pool``, ``reduce``...)
    to accumulated seconds.  ``props`` is the engines' total
    propagation work (``assignments + clause_visits``, summed over all
    workers) and ``checks`` the number of BCP checks it paid for.
    ``slowest_checks`` names the slowest-K proof indices with their
    per-check wall time, slowest first — populated only when the run
    carried an :class:`~repro.obs.context.Obs` (per-check timing is
    part of the opt-in instrumentation, never of the disabled fast
    path).
    """

    total_time: float = 0.0
    phase_times: dict[str, float] = field(default_factory=dict)
    props: int = 0
    checks: int = 0
    slowest_checks: tuple[tuple[int, float], ...] = ()

    def as_dict(self) -> dict:
        """Plain-data form, as embedded in metrics documents and
        benchmark records."""
        return {
            "total_time": self.total_time,
            "phase_times": dict(self.phase_times),
            "props": self.props,
            "checks": self.checks,
            "slowest_checks": [[index, seconds]
                               for index, seconds in self.slowest_checks],
        }


@dataclass
class VerificationReport:
    """Outcome of a proof verification run.

    ``outcome`` is the paper's verdict string; ``ok`` is its boolean
    form.  For ``Proof_verification2`` runs, ``num_skipped`` counts the
    redundant conflict clauses that were never checked and ``core`` holds
    the extracted unsatisfiable core.

    ``mode`` records the checker state-management strategy (``rebuild``
    or ``incremental``), ``engine`` the BCP engine that ran the checks
    (``watched``, ``counting`` or ``arena``; on a no-fork parallel run
    the workers may have substituted the arena engine — the
    substitution is listed in ``warnings``), ``jobs`` the number of
    worker processes (1 for the sequential path), and ``bcp_counters``
    the engine's propagation instrumentation (assignments, watch
    visits, clause visits, purged entries) summed over all workers —
    the units in which the incremental backward engine's savings are
    observable.

    Robustness fields: an exhausted :class:`~repro.verify.budget.
    CheckBudget` yields ``outcome == resource_limit_exceeded`` with
    ``stopped_at_index`` naming the first proof index left unchecked
    (None when the parallel backend cannot pin one down).  The
    fault-tolerant parallel backend records every shard execution lost
    to a dead worker in ``worker_failures`` and explains each degraded
    step (retry, sequential fallback) in ``warnings``.

    ``stats`` is the :class:`VerificationStats` breakdown (per-phase
    wall time, propagation work, slowest-K checks) that every driver
    now builds through the shared instrumented report builder.
    """

    outcome: str
    procedure: str
    num_proof_clauses: int
    num_checked: int = 0
    num_skipped: int = 0
    failed_clause_index: int | None = None
    failure_reason: str | None = None
    verification_time: float = 0.0
    core: UnsatCore | None = None
    marked_proof_indices: tuple[int, ...] = field(default=())
    mode: str = "rebuild"
    engine: str = "watched"
    jobs: int = 1
    bcp_counters: dict[str, int] | None = None
    stopped_at_index: int | None = None
    worker_failures: int = 0
    warnings: tuple[str, ...] = field(default=())
    stats: VerificationStats | None = None

    @property
    def ok(self) -> bool:
        return self.outcome == PROOF_IS_CORRECT

    @property
    def exhausted(self) -> bool:
        """True when the run stopped at a resource budget, verdict-less."""
        return self.outcome == RESOURCE_LIMIT_EXCEEDED

    @property
    def tested_fraction(self) -> float:
        """Fraction of F* that was BCP-checked (Table 1 'Tested' column).

        For Proof_verification1 this is 1.0 by construction."""
        if not self.num_proof_clauses:
            return 0.0
        return self.num_checked / self.num_proof_clauses
