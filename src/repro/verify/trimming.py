"""Proof trimming: drop the redundant conflict clauses.

A direct corollary of the paper's Section 4: clauses of ``F*`` that were
never marked during ``Proof_verification2`` contributed nothing to the
refutation, so the proof consisting of the *marked* clauses only (in the
original chronological order) is still a correct proof — and often much
smaller.  The support of every passing check is itself marked
(transitively, via conflict analysis), so replaying BCP over the marked
subset reproduces each conflict.  Later tools (drat-trim) made this
"trimming while checking" standard; here it falls out of the paper's own
marking machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ReproError
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.verify.report import VerificationReport
from repro.verify.verification import verify_proof_v2


@dataclass
class TrimResult:
    """Outcome of verify-and-trim."""

    report: VerificationReport
    trimmed: ConflictClauseProof
    kept_indices: tuple[int, ...]
    clauses_removed: int
    literals_removed: int


def trim_proof(formula: CnfFormula,
               proof: ConflictClauseProof,
               engine_cls=None) -> TrimResult:
    """Verify the proof with Proof_verification2 and drop every clause
    that was never marked.

    The trimmed proof keeps the chronological order and the original
    ending, and is itself a correct proof.  Raises :class:`ReproError`
    if the input proof does not verify.  ``engine_cls`` selects the BCP
    engine (a :data:`repro.bcp.ENGINES` name or class); the marked set
    — and so the trimmed proof — can differ between engines, since each
    may meet a different (equally valid) conflict clause first.
    """
    report = verify_proof_v2(formula, proof, engine_cls)
    if not report.ok:
        raise ReproError(
            f"cannot trim an incorrect proof: {report.failure_reason}")
    kept = set(report.marked_proof_indices)
    # The ending clauses seed the marking, so they are always kept and
    # the trimmed proof retains a valid structure.
    kept_indices = tuple(sorted(kept))
    trimmed = ConflictClauseProof([proof[i] for i in kept_indices],
                                  proof.ending)
    literals_removed = sum(
        len(proof[i]) for i in range(len(proof)) if i not in kept)
    return TrimResult(
        report=report,
        trimmed=trimmed,
        kept_indices=kept_indices,
        clauses_removed=len(proof) - len(trimmed),
        literals_removed=literals_removed)
