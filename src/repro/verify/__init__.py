"""Conflict clause proof verification — the paper's contribution."""

from repro.verify.budget import BudgetExhausted, BudgetMeter, CheckBudget
from repro.verify.checker import CHECKER_MODES, CheckOutcome, ProofChecker
from repro.verify.conflict_analysis import mark_responsible
from repro.verify.core_extraction import extract_core, validate_core
from repro.verify.instrument import ReportBuilder
from repro.verify.report import (
    PROOF_IS_CORRECT,
    PROOF_IS_NOT_CORRECT,
    RESOURCE_LIMIT_EXCEEDED,
    UnsatCore,
    VerificationReport,
    VerificationStats,
)
from repro.verify.forward import ForwardCheckReport, check_drup
from repro.verify.streaming import (
    CHECKPOINT_SCHEMA,
    StreamingCheckReport,
    load_checkpoint,
    validate_checkpoint,
    verify_stream,
)
from repro.verify.reconstruct import (
    ReconstructionResult,
    reconstruct_resolution_graph,
)
from repro.verify.trimming import TrimResult, trim_proof
from repro.verify.verification import (
    verify_proof,
    verify_proof_v1,
    verify_proof_v2,
)

__all__ = [
    "verify_proof",
    "verify_proof_v1",
    "verify_proof_v2",
    "trim_proof",
    "check_drup",
    "ForwardCheckReport",
    "verify_stream",
    "StreamingCheckReport",
    "load_checkpoint",
    "validate_checkpoint",
    "CHECKPOINT_SCHEMA",
    "TrimResult",
    "reconstruct_resolution_graph",
    "ReconstructionResult",
    "ProofChecker",
    "CheckOutcome",
    "CHECKER_MODES",
    "mark_responsible",
    "extract_core",
    "validate_core",
    "VerificationReport",
    "VerificationStats",
    "ReportBuilder",
    "UnsatCore",
    "PROOF_IS_CORRECT",
    "PROOF_IS_NOT_CORRECT",
    "RESOURCE_LIMIT_EXCEEDED",
    "CheckBudget",
    "BudgetMeter",
    "BudgetExhausted",
]
