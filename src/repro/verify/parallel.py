"""Fault-tolerant process-parallel backend for ``Proof_verification1``.

The checks of Proof_verification1 are independent by construction (each
one is a self-contained BCP run over ``F ∪ F*_{<i}``), so the proof
indices can be sharded across a pool of worker processes.  Each worker
builds its checker once and streams shard verdicts back.

Two transports carry the clause database to the workers:

``fork`` (classic)
    The formula and proof are inherited through fork-time copy-on-write
    — nothing large is pickled, but every worker that touches the
    Python objects dirties their refcount pages and duplicates them.

``shared-memory arena`` (zero-copy)
    The parent builds one flat :class:`~repro.bcp.arena.ClauseArena`
    holding ``F ∪ F*`` and exports it as a single
    ``multiprocessing.shared_memory`` block; workers attach it
    read-only (proof clause ``i`` *is* arena clause ``num_input + i``,
    so no formula/proof objects cross the process boundary at all) and
    keep only private trail/assignment state.  This works under any
    start method — it is what makes ``--jobs`` effective on platforms
    without ``fork`` — and under ``fork`` it also eliminates the
    copy-on-write page duplication.

Backend selection (see :func:`select_backend`): arena-backed engines
(``arena``, and the numpy ``vector`` kernel — workers build their
numpy views over the very same shm block) always use the shared-memory
transport; other engines use classic ``fork`` when available and are
*substituted* with the arena engine (warning in the report, identical
verdicts) when only ``spawn`` exists — never the old silent sequential
degrade.  The chosen path is announced with a
``backend_selected`` obs event; ``REPRO_START_METHOD`` (or the
``start_method`` parameter) forces a specific start method, which is
how the fork-vs-spawn report-identity guarantee is tested.

Failure reporting stays deterministic regardless of pool scheduling:
every shard scans in the requested direction and reports the first
failure it meets, and the parent reduces shard failures with max (for a
backward pass: the first failure a sequential backward scan would hit is
the *highest* failing index) or min (forward).

Workers run the incremental checker with ``retire=False``: a worker may
receive non-adjacent shards in any order, so clauses must never be
permanently retired, but the persistent root trail still amortizes the
unit pass within each shard.

Fault tolerance
---------------
A production verifier cannot assume its workers survive: an OOM kill or
a segfault in a worker must degrade the run, not wedge it.  Shards are
therefore dispatched individually through a
:class:`~concurrent.futures.ProcessPoolExecutor`, whose prompt
``BrokenProcessPool`` signal detects a dead worker.  The recovery
ladder is:

1. shards completed before the crash keep their results;
2. lost shards are retried once on a fresh pool;
3. shards still unfinished after the retry are checked *in process*,
   sequentially — correctness is never sacrificed, only parallelism.

Every lost shard execution is counted in
:attr:`ShardRunResult.worker_failures` and each degradation step is
described in :attr:`ShardRunResult.warnings`, both of which surface in
the :class:`~repro.verify.report.VerificationReport`.

Budgets: the parent's :class:`~repro.verify.budget.BudgetMeter` is
inherited by the forked workers, each of which rebases it onto its own
engine counters and aborts its shard cleanly when the shared deadline
(or its per-process ``max_props`` share) runs out; the parent then
reports ``resource_limit_exceeded`` with the work that did complete.

Observability: with an :class:`~repro.obs.context.Obs` attached, each
worker buffers a ``shard`` trace span, per-check time/work histograms,
and its slowest-K checks *locally* and ships them back inside the
:class:`ShardResult`; the parent replays the trace events (stamped
with the shard bounds) and folds the metric snapshots into its own
registry — merging is associative, so completion order does not
matter.  Worker failures, retries, and the sequential degrade are
emitted as trace events, the shard queue depth as a gauge, and the
parent ticks the opt-in progress heartbeat as shard results arrive.
BCP counter totals are *not* shipped in the worker snapshots — the
parent publishes the reduced ``ShardRunResult.counters`` once, so
nothing is double-counted.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context

from repro.bcp import engine_name
from repro.bcp.arena import ArenaPropagator, ClauseArena, build_arena
from repro.bcp.engine import PropagatorBase
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.verify.budget import BudgetMeter
from repro.verify.checker import ProofChecker

# Slowest checks a worker reports per shard (merged into the parent's
# slowest-K; K matches repro.verify.instrument.SLOWEST_K).
_SHARD_SLOWEST = 5

# Worker state: populated in the parent immediately before the pool's
# workers fork so children inherit it, then extended per-process with
# the lazily built checker (and the rebased budget meter).
_SHARED: dict = {}

# Test-only fault injection: shard -> number of times a worker should
# die (hard exit, as an OOM kill would) before executing it.  Populated
# in the parent before the fork; workers consult it with the attempt
# number the parent passes along, so a retried shard survives.
_FAULTS: dict[tuple[int, int], int] = {}


def fork_available() -> bool:
    """Whether the fork-based pool backend can run on this platform."""
    return "fork" in get_all_start_methods()


def select_backend(engine_cls: type[PropagatorBase],
                   start_method: str | None = None,
                   ) -> tuple[str | None, bool, type[PropagatorBase]]:
    """Pick ``(start_method, use_shm, worker_engine_cls)`` for a run.

    * arena-backed engines (``arena``, ``vector``) always ride the
      shared-memory transport (under ``fork`` too — that is the
      zero-copy point); vector workers rebuild their numpy views with
      ``np.frombuffer`` over the attached block, so the clause
      database is mapped, never copied;
    * other engines use classic ``fork`` inheritance when available;
    * without ``fork``, the workers run the arena engine over shared
      memory instead of degrading to sequential (the caller records the
      substitution as a report warning);
    * ``start_method`` (or a ``REPRO_START_METHOD`` environment
      override) forces a specific method; an unavailable one raises
      ``ValueError``.  A ``None`` method in the result means no
      process start method exists at all (degrade sequentially).
    """
    methods = get_all_start_methods()
    if start_method is None:
        env = os.environ.get("REPRO_START_METHOD")
        if env is not None and env.strip():
            start_method = env.strip()
    if start_method is not None:
        if start_method not in methods:
            raise ValueError(
                f"start method {start_method!r} is not available on "
                f"this platform (have {tuple(methods)})")
        method = start_method
    elif "fork" in methods:
        method = "fork"
    elif "spawn" in methods:
        method = "spawn"
    else:
        return None, False, engine_cls
    use_shm = bool(getattr(engine_cls, "arena_backed", False))
    worker_cls = engine_cls
    if method != "fork" and not use_shm:
        # Only the arena crosses a non-fork boundary without pickling
        # the clause database; substitute it rather than degrade.
        use_shm = True
        worker_cls = ArenaPropagator
    return method, use_shm, worker_cls


def default_jobs() -> int:
    """A sensible worker count for ``jobs=None``.

    A ``REPRO_JOBS`` environment variable overrides the built-in
    default of CPU count capped at 8 — the cap keeps small cloud
    runners honest, but an operator with 64 cores should not need code
    to use them.  An unparseable or non-positive override raises
    ``ValueError`` (surfaced by the CLI as a ``c error:`` line) rather
    than being silently ignored.
    """
    override = os.environ.get("REPRO_JOBS")
    if override is not None and override.strip():
        try:
            jobs = int(override)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be a positive integer, "
                f"got {override!r}") from None
        if jobs < 1:
            raise ValueError(
                f"REPRO_JOBS must be >= 1, got {jobs}")
        return jobs
    return min(os.cpu_count() or 1, 8)


def install_fault(shard: tuple[int, int], deaths: int = 1) -> None:
    """Arrange for the worker executing ``shard`` to die ``deaths``
    times (testing hook; cleared with :func:`clear_faults`)."""
    _FAULTS[shard] = deaths


def clear_faults() -> None:
    _FAULTS.clear()


def make_shards(num_indices: int, jobs: int) -> list[tuple[int, int]]:
    """Split ``range(num_indices)`` into contiguous ``(lo, hi)`` shards
    of equal count.

    More shards than workers (4x) so the pool can balance the uneven
    per-check cost (high indices propagate over more clauses), clamped
    so every shard carries at least
    :data:`~repro.verify.schedule.MIN_CHECKS_PER_SHARD` checks — tiny
    shards pay per-shard span/IPC overhead for no balancing gain.
    This is the ``contiguous`` planner's partition; the default
    ``cost`` planner cuts the same range by *predicted* cost instead
    (see :mod:`repro.verify.schedule`).
    """
    from repro.verify.schedule import shard_count

    if num_indices <= 0:
        return []
    num_shards = shard_count(num_indices, jobs)
    bounds = [round(i * num_indices / num_shards)
              for i in range(num_shards + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(num_shards)
            if bounds[i] < bounds[i + 1]]


def planned_shards(formula: CnfFormula, proof: ConflictClauseProof,
                   jobs: int, mode: str = "incremental",
                   order: str = "backward",
                   instance: str | None = None,
                   planner: str | None = None):
    """The :class:`~repro.verify.schedule.ShardPlan` a
    :func:`run_sharded_v1` call with these arguments executes.

    Exposed so tests (fault injection keys faults by shard bounds) and
    tooling can reproduce the exact partition; the plan is a pure
    function of its inputs plus the planner choice (argument, then the
    ``REPRO_SHARD_PLANNER`` override) and any usable calibration
    record for ``instance``.
    """
    from repro.verify.schedule import plan_verification1

    return plan_verification1(
        formula.num_clauses,
        [len(proof[i]) for i in range(len(proof))],
        jobs, mode=mode, order=order, instance=instance,
        planner=planner)


@dataclass
class ShardResult:
    """One shard's verdict: first failure (if any), progress, counters.

    The observability fields are populated only when the run carries an
    ``Obs``: ``metrics`` is the worker's local registry snapshot
    (per-check histograms — never BCP totals, which travel in
    ``counter_delta``), ``slowest`` its slowest checks as
    ``(seconds, index)`` pairs, and ``trace`` the worker's buffered
    trace events, replayed by the parent with the shard id attached.
    """

    first_failure: int | None
    num_checked: int
    counter_delta: dict[str, int]
    budget_reason: str | None = None
    stopped_at_index: int | None = None
    duration: float = 0.0
    metrics: dict | None = None
    slowest: tuple = ()
    trace: list = field(default_factory=list)
    depgraph: list = field(default_factory=list)


@dataclass
class ShardRunResult:
    """Aggregated outcome of a sharded verification run."""

    failed_index: int | None
    num_checked: int
    counters: dict[str, int]
    worker_failures: int = 0
    warnings: tuple[str, ...] = ()
    budget_reason: str | None = None
    stopped_at_index: int | None = None


def _init_worker(spec: dict) -> None:
    """Pool initializer for the shared-memory transport.

    ``spec`` is small and fully picklable (an
    :class:`~repro.bcp.arena.ArenaHandle`, scalars, and the budget
    meter), so it crosses any start-method boundary; the clause
    database itself never does — the worker maps the parent's arena
    read-only in :func:`_worker_checker`.
    """
    _SHARED.clear()
    _SHARED.update(spec)
    _FAULTS.clear()
    _FAULTS.update(spec.get("faults") or {})


def _worker_checker() -> ProofChecker:
    checker = _SHARED.get("checker")
    if checker is None:
        meter: BudgetMeter | None = _SHARED.get("meter")
        handle = _SHARED.get("arena")
        if handle is not None:
            arena = ClauseArena.from_shared_memory(handle)
            checker = ProofChecker.from_arena(
                arena, _SHARED["num_input"], mode=_SHARED["mode"],
                retire=False,
                engine_cls=_SHARED.get("worker_engine"))
        else:
            checker = ProofChecker(
                _SHARED["formula"], _SHARED["proof"],
                _SHARED["engine_cls"], mode=_SHARED["mode"],
                retire=False)
        if meter is not None:
            # Fresh engine in this process: keep the shared deadline but
            # charge work units against this worker's own counters.
            checker.meter = meter.rebase(checker.engine.counters)
        _SHARED["checker"] = checker
    return checker


def _run_shard(checker: ProofChecker, shard: tuple[int, int],
               order: str, instrument: bool = False,
               epoch: float | None = None,
               run_id: str | None = None,
               depgraph: bool = False,
               epoch_wall: float | None = None,
               trace_id: str | None = None,
               attempt: int = 0) -> ShardResult:
    """Scan one shard in the requested direction (shared by the pool
    workers and the in-process degraded fallback).

    With ``instrument`` set, per-check wall time and propagation work
    are observed into a shard-local registry, the slowest checks are
    kept, and the whole shard is wrapped in a ``shard`` trace span —
    stamped with the parent's ``trace_id`` and on the parent's time
    axis via the shared ``(epoch, epoch_wall)`` anchor (rebased when
    this process's monotonic clock is unrelated, i.e. under spawn;
    see :func:`repro.obs.spans.rebase_epoch`).  The span's end attrs
    carry the shard's cost attribution (checks, wall, props,
    clause_visits) and the ``attempt`` number that produced it, so
    the timeline can tell a retried shard's spans apart.
    With ``depgraph`` set, each passing check's conflict-analysis
    antecedents are buffered as plain record dicts (shipped back in
    :attr:`ShardResult.depgraph`, merged order-free by the parent).
    """
    from repro.verify.budget import BudgetExhausted
    from repro.verify.conflict_analysis import collect_responsible

    lo, hi = shard
    counters = checker.engine.counters
    before = counters.as_dict()
    indices = (range(hi - 1, lo - 1, -1) if order == "backward"
               else range(lo, hi))
    first_failure = None
    budget_reason = None
    stopped_at = None
    checked = 0
    registry = None
    tracer = None
    slowest: list[tuple[float, int]] = []
    records: list[dict] = []
    hist_seconds = hist_work = None
    if instrument:
        from repro.obs.registry import (
            DEFAULT_WORK_BUCKETS,
            MetricsRegistry,
        )
        from repro.obs.spans import worker_tracer

        registry = MetricsRegistry()
        hist_seconds = registry.histogram(
            "repro_check_seconds",
            help="Wall time per proof-clause check")
        hist_work = registry.histogram(
            "repro_check_work", buckets=DEFAULT_WORK_BUCKETS,
            help="Propagation work units per check")
        tracer = worker_tracer(run_id=run_id, epoch=epoch,
                               epoch_wall=epoch_wall,
                               trace_id=trace_id)
        tracer_cm = tracer.span("shard", lo=lo, hi=hi,
                                pid=os.getpid(), attempt=attempt)
        tracer_cm.__enter__()
    shard_start = time.perf_counter()
    for index in indices:
        if instrument or depgraph:
            check_start = time.perf_counter()
            work_before = counters.total_work()
        try:
            outcome = checker.check_clause(index)
        except BudgetExhausted as exc:
            budget_reason = str(exc)
            stopped_at = index
            break
        if depgraph and outcome.conflict \
                and outcome.confl_cid is not None:
            # Before reset(): the walk reads post-propagation reasons.
            responsible = collect_responsible(checker.engine,
                                              outcome.confl_cid)
            cid = checker.cid_of_proof_clause(index)
            records.append({
                "type": "check", "index": index, "cid": cid,
                "antecedents": sorted(responsible - {cid}),
                "confl": outcome.confl_cid,
                "props": counters.total_work() - work_before})
        checker.reset()
        checked += 1
        if instrument:
            seconds = time.perf_counter() - check_start
            hist_seconds.observe(seconds)
            hist_work.observe(counters.total_work() - work_before)
            slowest.append((seconds, index))
            if len(slowest) > _SHARD_SLOWEST:
                slowest.sort(reverse=True)
                del slowest[_SHARD_SLOWEST:]
        if not outcome.conflict:
            first_failure = index
            break
    duration = time.perf_counter() - shard_start
    after = counters.as_dict()
    delta = {key: after[key] - before[key] for key in after}
    if instrument:
        from repro.obs.mem import arena_mem_stats, read_rss

        # One RSS read per shard (far off the per-check path): the
        # worker's peak resident set, max-merged across the pool via
        # the gauge semantics and attributed per shard on the span.
        peak_rss = None
        reading = read_rss()
        if reading is not None:
            rss, peak_rss, _source = reading
            gauge = registry.gauge(
                "repro_mem_worker_peak_rss_bytes",
                help="Peak resident set across pool workers")
            gauge.set(peak_rss)
        arena_stats = arena_mem_stats(checker.engine)
        if arena_stats is not None:
            registry.gauge(
                "repro_mem_arena_pool_bytes",
                help="Clause-arena pool footprint").set(
                    arena_stats["pool_bytes"])
            registry.gauge(
                "repro_mem_watch_entries",
                help="Watch-table entries across all literals").set(
                    arena_stats["watch_entries"])
        tracer_cm.__exit__(None, None, None)
        # Cost attribution on the span's end attrs: the timeline
        # reconstructor reads these into its per-shard attribution
        # rows, straggler ranking, and memory lane.
        tracer.events[-1]["attrs"].update(
            checks=checked, wall=duration,
            props=(delta.get("assignments", 0)
                   + delta.get("clause_visits", 0)),
            clause_visits=delta.get("clause_visits", 0),
            peak_rss=peak_rss)
        registry.histogram(
            "repro_shard_seconds",
            help="Wall time per shard").observe(duration)
    return ShardResult(first_failure, checked, delta,
                       budget_reason=budget_reason,
                       stopped_at_index=stopped_at,
                       duration=duration,
                       metrics=registry.snapshot() if registry else None,
                       slowest=tuple(sorted(slowest, reverse=True)),
                       trace=tracer.events if tracer else [],
                       depgraph=records)


def _shard_worker(shard: tuple[int, int], attempt: int) -> ShardResult:
    deaths = _FAULTS.get(shard, 0)
    if attempt < deaths:
        # Simulate an OOM kill / segfault: bypass Python teardown so the
        # parent sees exactly what a hard worker death looks like.
        os._exit(1)
    return _run_shard(_worker_checker(), shard, _SHARED["order"],
                      instrument=_SHARED.get("obs_enabled", False),
                      epoch=_SHARED.get("obs_epoch"),
                      run_id=_SHARED.get("obs_run"),
                      depgraph=_SHARED.get("depgraph_enabled", False),
                      epoch_wall=_SHARED.get("obs_epoch_wall"),
                      trace_id=_SHARED.get("obs_trace"),
                      attempt=attempt)


def _reduce(results: dict[tuple[int, int], ShardResult],
            order: str, worker_failures: int,
            warnings: list[str]) -> ShardRunResult:
    failures = [r.first_failure for r in results.values()
                if r.first_failure is not None]
    num_checked = sum(r.num_checked for r in results.values())
    counters: dict[str, int] = {}
    for result in results.values():
        for key, value in result.counter_delta.items():
            counters[key] = counters.get(key, 0) + value
    budget_reasons = [r.budget_reason for r in results.values()
                      if r.budget_reason is not None]
    budget_reason = budget_reasons[0] if budget_reasons else None
    stopped = [r.stopped_at_index for r in results.values()
               if r.stopped_at_index is not None]
    # The most informative "where it stopped": the first index (in scan
    # order) that some shard had to abandon.
    stopped_at = (None if not stopped
                  else max(stopped) if order == "backward"
                  else min(stopped))
    if failures:
        failed = max(failures) if order == "backward" else min(failures)
    else:
        failed = None
    return ShardRunResult(
        failed_index=failed, num_checked=num_checked, counters=counters,
        worker_failures=worker_failures, warnings=tuple(warnings),
        budget_reason=budget_reason, stopped_at_index=stopped_at)


class _ObsSink:
    """Parent-side absorption of per-shard observability payloads.

    Centralizes what happens when a shard result lands, on both the
    pool path and the degraded fallback: merge the worker's metric
    snapshot, fold its slowest checks into the builder's heap, replay
    its trace events (stamped with the shard bounds), tick the
    progress heartbeat, and track the shard queue depth gauge.
    """

    def __init__(self, obs, builder, num_shards: int):
        self.obs = obs
        self.builder = builder
        self.checked = 0
        # Shards whose trace has already been replayed: a duplicate
        # result for the same bounds (a retried shard whose first
        # attempt landed late) must not produce duplicate spans in
        # the merged timeline.
        self._absorbed: set[tuple[int, int]] = set()
        if obs is not None:
            obs.counter_add("repro_parallel_shards_total", num_shards,
                            help="Shards the proof was split into")
            # Pre-register the failure-path counters at zero so a
            # healthy run's artifact says "measured, none" rather than
            # omitting them.
            obs.counter_add("repro_parallel_retries_total", 0,
                            help="Shard retry rounds after worker "
                                 "deaths")
            obs.counter_add("repro_parallel_degraded_shards_total", 0,
                            help="Shards that fell back to in-process "
                                 "sequential checking")

    def absorb(self, shard: tuple[int, int], result: ShardResult) -> None:
        if shard in self._absorbed:
            # A duplicate execution of the same bounds (late first
            # attempt of a retried shard): its verdict is identical by
            # construction, and absorbing it again would double-count
            # metrics and duplicate spans.
            if self.obs is not None:
                self.obs.event("duplicate_shard_suppressed",
                               shard=list(shard))
            return
        self._absorbed.add(shard)
        self.checked += result.num_checked
        obs = self.obs
        if obs is None:
            return
        obs.merge_worker_metrics(result.metrics)
        obs.merge_worker_depgraph(result.depgraph)
        if obs.tracer is not None and result.trace:
            obs.tracer.replay(result.trace, shard=list(shard))
        if self.builder is not None:
            self.builder.merge_slowest(result.slowest)
            if self.builder.progress is not None:
                self.builder.progress.update(self.checked)

    def queue_depth(self, depth: int) -> None:
        if self.obs is not None:
            self.obs.gauge_set("repro_parallel_queue_depth", depth,
                               help="Shards not yet completed")

    def event(self, name: str, **attrs) -> None:
        if self.obs is not None:
            self.obs.event(name, **attrs)

    def counter(self, name: str, amount: int, help: str = "") -> None:
        if self.obs is not None:
            self.obs.counter_add(name, amount, help=help)


def run_sharded_v1(formula: CnfFormula, proof: ConflictClauseProof,
                   engine_cls: type[PropagatorBase], order: str,
                   mode: str, jobs: int,
                   meter: BudgetMeter | None = None,
                   obs=None, builder=None,
                   start_method: str | None = None,
                   plan=None, instance: str | None = None,
                   ) -> ShardRunResult:
    """Check every proof index across a process pool, surviving faults.

    Returns a :class:`ShardRunResult` whose ``failed_index`` matches
    what a sequential scan in ``order`` would report (None when every
    check passes); ``num_checked`` can exceed a failing sequential run's
    count — shards past the failure still ran.  Dead workers are
    retried once and the leftovers checked in process (counted in
    ``worker_failures`` / ``warnings``); an exhausted budget surfaces as
    ``budget_reason`` plus partial progress.

    The start method and clause-database transport are picked by
    :func:`select_backend` (``start_method`` / ``REPRO_START_METHOD``
    force one); the verdict, failure index and check counts are
    identical across backends — only the BCP counters depend on which
    engine the workers ran.

    ``obs`` (and the driver's ``builder``, for slowest-K and progress)
    attach the instrumentation layer; see the module docstring for
    what is collected where.

    ``plan`` is the :class:`~repro.verify.schedule.ShardPlan` to
    execute; ``None`` plans here (cost planner by default, with
    best-effort history calibration when ``instance`` names the run's
    input).  Shards are dispatched in the plan's LPT order — largest
    predicted cost first — so the pool never starts a long shard
    last; verdicts and failure indices are plan-independent.
    """
    if plan is None:
        plan = planned_shards(formula, proof, jobs, mode, order,
                              instance)
    shards = list(plan.shards)
    sink = _ObsSink(obs, builder, len(shards))
    sink.event("shard_plan", **plan.as_event())
    dispatch_rank = {shard: rank for rank, shard
                     in enumerate(plan.dispatch_shards())}
    requested = engine_name(engine_cls)
    method, use_shm, worker_cls = select_backend(engine_cls,
                                                 start_method)
    if method is None:
        sink.event("backend_selected", backend="sequential",
                   engine=requested, reason="no start method")
        return _run_degraded(formula, proof, engine_cls, order, mode,
                             shards, {}, 0,
                             ["parallel backend unavailable: no process "
                              "start method on this platform; checked "
                              "sequentially in process"], meter, sink)
    results: dict[tuple[int, int], ShardResult] = {}
    worker_failures = 0
    warnings: list[str] = []
    if worker_cls is not engine_cls:
        warnings.append(
            f"engine '{requested}' cannot cross the '{method}' start "
            "method; workers ran the shared-memory arena engine "
            "(verdicts are engine-independent, BCP counters are the "
            "arena's)")
    sink.event("backend_selected",
               backend=f"{method}+shm" if use_shm else method,
               engine=requested, worker_engine=engine_name(worker_cls),
               start_method=method)
    arena = None
    initializer = None
    initargs: tuple = ()
    tracer = obs.tracer if obs is not None else None
    obs_fields = dict(
        obs_enabled=obs is not None,
        obs_epoch=tracer.epoch if tracer is not None else None,
        obs_epoch_wall=(getattr(tracer, "epoch_wall", None)
                        if tracer is not None else None),
        obs_trace=(getattr(tracer, "trace_id", None)
                   if tracer is not None else None),
        obs_run=obs.run_id if obs is not None else None,
        depgraph_enabled=(obs is not None and obs.wants_depgraph))
    if use_shm:
        arena, num_input = build_arena(formula, proof)
        handle = arena.to_shared_memory()
        initializer = _init_worker
        initargs = ({"arena": handle, "num_input": num_input,
                     "worker_engine": engine_name(worker_cls),
                     "order": order, "mode": mode, "meter": meter,
                     "faults": dict(_FAULTS), **obs_fields},)
    else:
        _SHARED.update(formula=formula, proof=proof,
                       engine_cls=engine_cls, order=order, mode=mode,
                       meter=meter, **obs_fields)
    context = get_context(method)
    try:
        for attempt in (0, 1):
            pending = sorted((s for s in shards if s not in results),
                             key=lambda s: dispatch_rank.get(s, 0))
            if not pending or _budget_hit(results):
                break
            if attempt == 1:
                warnings.append(
                    f"worker died; retrying {len(pending)} shard(s) "
                    "on a fresh pool")
                sink.event("worker_retry", pending=len(pending))
                sink.counter("repro_parallel_retries_total", 1,
                             help="Shard retry rounds after worker "
                                  "deaths")
            executor = ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)), mp_context=context,
                initializer=initializer, initargs=initargs)
            try:
                futures = {
                    executor.submit(_shard_worker, shard, attempt): shard
                    for shard in pending}
                not_done = set(futures)
                sink.queue_depth(len(not_done))
                while not_done:
                    timeout = (meter.remaining_time()
                               if meter is not None else None)
                    if timeout is not None and timeout <= 0:
                        break  # deadline passed: stop collecting
                    done, not_done = wait(not_done, timeout=timeout,
                                          return_when=FIRST_COMPLETED)
                    if not done:
                        break  # wait() timed out at the deadline
                    for future in done:
                        shard = futures[future]
                        try:
                            results[shard] = future.result()
                            sink.absorb(shard, results[shard])
                        except BrokenProcessPool:
                            # A shard execution lost to a dead worker;
                            # anything else a worker raises is a checker
                            # bug and propagates unmasked.
                            worker_failures += 1
                            sink.event("worker_failure",
                                       shard=list(shard),
                                       attempt=attempt)
                    sink.queue_depth(len(not_done))
            finally:
                # cancel_futures covers the deadline-passed early exit;
                # wait=False so a straggler cannot wedge the parent.
                executor.shutdown(wait=False, cancel_futures=True)
    finally:
        _SHARED.clear()
        if arena is not None:
            arena.release_shared(unlink=True)
    sink.counter("repro_parallel_worker_failures_total", worker_failures,
                 help="Shard executions lost to dead workers")
    remaining = [s for s in shards if s not in results]
    if remaining and not _budget_hit(results):
        if meter is not None and meter.remaining_time() is not None \
                and meter.remaining_time() <= 0:
            # Deadline elapsed while shards were still queued: report
            # exhaustion rather than silently dropping coverage.
            run = _reduce(results, order, worker_failures, warnings)
            run.budget_reason = (run.budget_reason
                                 or "wall-clock budget exhausted before "
                                    f"{len(remaining)} shard(s) ran")
            return run
        warnings.append(
            f"{len(remaining)} shard(s) degraded to in-process "
            "sequential checking after repeated worker failures")
        sink.event("degraded_sequential", reason="worker failures",
                   shards=len(remaining))
        sink.counter("repro_parallel_degraded_shards_total",
                     len(remaining),
                     help="Shards that fell back to in-process "
                          "sequential checking")
        return _run_degraded(formula, proof, engine_cls, order, mode,
                             remaining, results, worker_failures,
                             warnings, meter, sink)
    return _reduce(results, order, worker_failures, warnings)


def _budget_hit(results: dict[tuple[int, int], ShardResult]) -> bool:
    return any(r.budget_reason is not None for r in results.values())


def _run_degraded(formula: CnfFormula, proof: ConflictClauseProof,
                  engine_cls: type[PropagatorBase], order: str,
                  mode: str, remaining: list[tuple[int, int]],
                  results: dict[tuple[int, int], ShardResult],
                  worker_failures: int, warnings: list[str],
                  meter: BudgetMeter | None,
                  sink: "_ObsSink | None" = None) -> ShardRunResult:
    """In-process sequential fallback for shards the pool never
    finished.  Scans shards in deterministic scan order so the reduced
    failure index still matches a sequential run."""
    checker = ProofChecker(formula, proof, engine_cls, mode=mode,
                           retire=False)
    if meter is not None:
        checker.meter = meter.rebase(checker.engine.counters)
    instrument = sink is not None and sink.obs is not None
    tracer = sink.obs.tracer if instrument else None
    epoch = tracer.epoch if tracer is not None else None
    epoch_wall = getattr(tracer, "epoch_wall", None) \
        if tracer is not None else None
    trace_id = getattr(tracer, "trace_id", None) \
        if tracer is not None else None
    run_id = sink.obs.run_id if instrument else None
    depgraph = instrument and sink.obs.wants_depgraph
    ordered = sorted(remaining, reverse=(order == "backward"))
    for shard in ordered:
        results[shard] = _run_shard(checker, shard, order,
                                    instrument=instrument, epoch=epoch,
                                    run_id=run_id, depgraph=depgraph,
                                    epoch_wall=epoch_wall,
                                    trace_id=trace_id,
                                    # Degrade follows the failed pool
                                    # attempts 0 and 1.
                                    attempt=2)
        if sink is not None:
            sink.absorb(shard, results[shard])
        if results[shard].budget_reason is not None:
            break
    return _reduce(results, order, worker_failures, warnings)
