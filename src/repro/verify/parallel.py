"""Process-parallel backend for ``Proof_verification1``.

The checks of Proof_verification1 are independent by construction (each
one is a self-contained BCP run over ``F ∪ F*_{<i}``), so the proof
indices can be sharded across a pool of worker processes.  Each worker
builds its checker once — the formula and proof are inherited through
fork-time copy-on-write, so nothing large is pickled — and streams shard
verdicts back.

Failure reporting stays deterministic regardless of pool scheduling:
every shard scans in the requested direction and reports the first
failure it meets, and the parent reduces shard failures with max (for a
backward pass: the first failure a sequential backward scan would hit is
the *highest* failing index) or min (forward).

Workers run the incremental checker with ``retire=False``: a worker may
receive non-adjacent shards in any order, so clauses must never be
permanently retired, but the persistent root trail still amortizes the
unit pass within each shard.
"""

from __future__ import annotations

import os
from multiprocessing import get_context

from repro.bcp.engine import PropagatorBase
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.verify.checker import ProofChecker

# Worker state: populated in the parent immediately before the fork so
# children inherit it, then extended per-process with the lazily built
# checker (and the last counter snapshot, to report per-shard deltas).
_SHARED: dict = {}


def default_jobs() -> int:
    """A sensible worker count for ``jobs=None`` (CPU count, capped)."""
    return min(os.cpu_count() or 1, 8)


def make_shards(num_indices: int, jobs: int) -> list[tuple[int, int]]:
    """Split ``range(num_indices)`` into contiguous ``(lo, hi)`` shards.

    More shards than workers (4x) so the pool can balance the uneven
    per-check cost (high indices propagate over more clauses).
    """
    if num_indices <= 0:
        return []
    num_shards = min(num_indices, max(1, jobs) * 4)
    bounds = [round(i * num_indices / num_shards)
              for i in range(num_shards + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(num_shards)
            if bounds[i] < bounds[i + 1]]


def _shard_worker(shard: tuple[int, int]) -> tuple[int | None, int,
                                                   dict[str, int]]:
    lo, hi = shard
    checker = _SHARED.get("checker")
    if checker is None:
        checker = ProofChecker(
            _SHARED["formula"], _SHARED["proof"], _SHARED["engine_cls"],
            mode=_SHARED["mode"], retire=False)
        _SHARED["checker"] = checker
    before = checker.engine.counters.as_dict()
    indices = (range(hi - 1, lo - 1, -1)
               if _SHARED["order"] == "backward" else range(lo, hi))
    first_failure = None
    checked = 0
    for index in indices:
        outcome = checker.check_clause(index)
        checker.reset()
        checked += 1
        if not outcome.conflict:
            first_failure = index
            break
    after = checker.engine.counters.as_dict()
    delta = {key: after[key] - before[key] for key in after}
    return first_failure, checked, delta


def run_sharded_v1(formula: CnfFormula, proof: ConflictClauseProof,
                   engine_cls: type[PropagatorBase], order: str,
                   mode: str, jobs: int,
                   ) -> tuple[int | None, int, dict[str, int]]:
    """Check every proof index across a process pool.

    Returns ``(failed_index, num_checked, summed_counters)`` where
    ``failed_index`` matches what a sequential scan in ``order`` would
    report (None when every check passes).  ``num_checked`` can exceed a
    failing sequential run's count — shards past the failure still ran.
    """
    shards = make_shards(len(proof), jobs)
    _SHARED.update(formula=formula, proof=proof, engine_cls=engine_cls,
                   order=order, mode=mode)
    try:
        context = get_context("fork")
        with context.Pool(processes=jobs) as pool:
            results = pool.map(_shard_worker, shards, chunksize=1)
    finally:
        _SHARED.clear()
    failures = [failed for failed, _, _ in results if failed is not None]
    num_checked = sum(checked for _, checked, _ in results)
    counters: dict[str, int] = {}
    for _, _, delta in results:
        for key, value in delta.items():
            counters[key] = counters.get(key, 0) + value
    if not failures:
        return None, num_checked, counters
    failed = max(failures) if order == "backward" else min(failures)
    return failed, num_checked, counters
