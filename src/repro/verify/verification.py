"""The paper's two proof verification procedures.

``verify_proof_v1`` is Proof_verification1 (Section 3): every clause of
``F*`` is checked, in reverse chronological order, by falsifying it and
running BCP over the formula plus the earlier-deduced clauses.  Because
its checks are independent by construction, it also offers a
process-parallel backend (``jobs > 1``) that shards the proof indices
across a worker pool with deterministic first-failure reporting.

``verify_proof_v2`` is Proof_verification2 (Section 4): only clauses
marked as contributing to the refutation are checked — marking starts
from the final conflicting pair and is extended by conflict analysis of
each BCP conflict — and the marked clauses of ``F`` are returned as an
unsatisfiable core.

Both procedures accept ``mode``: ``"rebuild"`` re-asserts the unit
clauses inside every check (the original behavior), while
``"incremental"`` keeps a persistent root trail and retires clauses
behind the moving ceiling (see :mod:`repro.verify.checker`), which is
markedly cheaper on backward passes.

Both also accept an optional :class:`~repro.verify.budget.CheckBudget`:
when the budget runs out mid-verification the run aborts cleanly with
the ``resource_limit_exceeded`` outcome and partial progress
(``num_checked``, ``stopped_at_index``) instead of running unbounded.

Instrumentation: both accept an optional :class:`~repro.obs.context.
Obs`.  With one attached, every check is timed into histograms, phases
and checks become trace spans, a progress heartbeat ticks, and the
report's :class:`~repro.verify.report.VerificationStats` gains the
slowest-K check indices.  Without one (the default), the drivers take
a registry-free fast path — per-check cost is one ``is None`` branch.
All reports are built through the shared
:class:`~repro.verify.instrument.ReportBuilder`, the single place
``verification_time`` and the stats breakdown are computed.
"""

from __future__ import annotations

import os

from repro.bcp import engine_name, resolve_engine
from repro.bcp.engine import PropagatorBase
from repro.bcp.watched import WatchedPropagator
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import ENDING_FINAL_PAIR, \
    ConflictClauseProof
from repro.verify.budget import BudgetExhausted, BudgetMeter, CheckBudget
from repro.verify.checker import CHECKER_MODES, ProofChecker
from repro.verify.conflict_analysis import collect_responsible
from repro.verify.instrument import ReportBuilder
from repro.verify.report import (
    PROOF_IS_CORRECT,
    PROOF_IS_NOT_CORRECT,
    RESOURCE_LIMIT_EXCEEDED,
    UnsatCore,
    VerificationReport,
)

V1_ORDERS = ("backward", "forward")


def _check_mode(mode: str) -> None:
    if mode not in CHECKER_MODES:
        raise ValueError(f"unknown checker mode {mode!r}; "
                         f"expected one of {CHECKER_MODES}")


def _check_order(order: str) -> None:
    if order not in V1_ORDERS:
        raise ValueError(f"unknown order {order!r}; "
                         f"expected one of {V1_ORDERS}")


def _resolve_jobs(jobs: int | None, obs=None) -> int:
    """Validate the worker count; ``None`` means "pick a default".

    The resolved count — and where it came from (explicit argument,
    ``REPRO_JOBS`` override, or CPU-count default) — is recorded as a
    gauge and a trace event when instrumentation is attached.
    """
    if jobs is None:
        from repro.verify.parallel import default_jobs

        source = "env:REPRO_JOBS" if os.environ.get("REPRO_JOBS") \
            else "default"
        jobs = default_jobs()
    else:
        source = "explicit"
        if isinstance(jobs, bool) or not isinstance(jobs, int):
            raise ValueError(f"jobs must be a positive int or None "
                             f"(auto-detect), got {jobs!r}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1 or None (auto-detect), "
                             f"got {jobs!r}")
    if obs is not None:
        obs.gauge_set("repro_verify_jobs", jobs,
                      help="Resolved worker process count")
        obs.event("jobs_resolved", jobs=jobs, source=source)
    return jobs


def _resolve_engine_cls(engine_cls, obs, mode: str | None = None,
                        order: str | None = None) -> type[PropagatorBase]:
    """Resolve an engine (name, class, or None) to a class.

    Default engine: watched normally, counting under capture.  The
    watched engine permanently reorders its watch lists (and the
    literals inside each clause) as checks run, so the conflicting
    clause a check reports — and hence its conflict-analysis support —
    depends on which checks ran earlier in the same engine.  The
    counting engine's occurrence lists are fixed at load time and its
    counters are restored on backtrack, which makes every rebuild-mode
    check a pure function of ``(F, F*, index)``: the captured
    dependency graph is then identical for any check order or sharding
    (the ``--jobs 1`` vs ``--jobs 4`` artifact-identity guarantee).
    An explicit ``engine_cls`` — a :data:`repro.bcp.ENGINES` name
    (``"watched"``, ``"counting"``, ``"arena"``, ``"vector"``,
    ``"vector-inc"``), the pseudo-name ``"auto"``, or a
    :class:`~repro.bcp.engine.PropagatorBase` subclass — always wins
    over this default.

    The ``auto`` ladder is *workload-aware*: the drivers pass their
    ``mode``/``order`` here so incremental-mode runs get the
    ``vector-inc`` kernel (batched blocker probes and retraction pay
    off exactly on a persistent root trail) while rebuild/forward
    workloads get ``vector``, with ``arena`` as the no-numpy floor.

    With instrumentation attached the decision is put on record as a
    ``kernel_selected`` trace event carrying what was requested, which
    engine won, whether its hot loop is the numpy or the pure-Python
    kernel, and the *reason* — the ladder rung (or default rule) that
    picked it.
    """
    if engine_cls is not None:
        requested = engine_cls if isinstance(engine_cls, str) \
            else getattr(engine_cls, "__name__", repr(engine_cls))
        resolved = resolve_engine(engine_cls, mode=mode, order=order)
        if isinstance(engine_cls, str) and engine_cls == "auto":
            from repro.bcp import numpy_available

            if not numpy_available():
                reason = "auto: numpy unavailable, arena fallback"
            elif mode == "incremental":
                reason = ("auto: incremental mode, persistent root "
                          "trail favors the batched vector-inc kernel")
            else:
                reason = "auto: rebuild workload, frontier-batched " \
                         "vector kernel"
        else:
            reason = "explicit request"
    elif obs is not None and obs.wants_depgraph:
        from repro.bcp.counting import CountingPropagator

        requested = "default(depgraph)"
        resolved = CountingPropagator
        reason = ("depgraph capture: counting's fixed occurrence "
                  "lists make provenance order-independent")
    else:
        requested = "default"
        resolved = WatchedPropagator
        reason = "default: the paper's watched-literal engine"
    if obs is not None:
        obs.event("kernel_selected", requested=requested,
                  engine=engine_name(resolved), kernel=resolved.kernel,
                  mode=mode, order=order, reason=reason)
    return resolved


def _publish_checker_stats(obs, checker: ProofChecker) -> None:
    """Publish the checker's root-trail maintenance counters — the
    observable form of the rebuild-vs-incremental savings — plus the
    captured dependency-graph totals, if a recorder is attached.
    Arena-backed engines also report their memory gauges here (pool
    bytes, occupancy, watch entries), once per run."""
    if obs is None:
        return
    for key, value in checker.root_stats.items():
        obs.counter_add(f"repro_checker_{key}_total", value,
                        help=f"Incremental checker: {key}")
    from repro.obs.mem import record_arena_gauges

    record_arena_gauges(obs, checker.engine)
    obs.publish_depgraph_totals()


def verify_proof_v1(
        formula: CnfFormula, proof: ConflictClauseProof,
        engine_cls: type[PropagatorBase] | None = None,
        order: str = "backward",
        mode: str = "rebuild",
        jobs: int | None = 1,
        budget: CheckBudget | None = None,
        obs=None,
        instance: str | None = None,
) -> VerificationReport:
    """Proof_verification1: check the correctness of *every* clause of F*.

    Returns ``proof_is_not_correct`` pointing at the first questionable
    clause (in processing order), else ``proof_is_correct``.

    The paper notes that "the order in which clauses are checked does
    not matter" when all of them are checked; ``order`` exposes both
    directions (``"backward"``, the paper's default, or ``"forward"``)
    — the verdict is order-independent, only the index of the first
    failure reported can differ.

    ``jobs > 1`` shards the independent checks across worker processes
    (``jobs=None`` auto-sizes to the machine, honoring a ``REPRO_JOBS``
    environment override); the verdict and the reported failure index
    match the sequential scan (``num_checked`` may exceed it on failing
    proofs, since shards past the failure still ran).  The parallel
    backend is fault-tolerant: a dead worker's shards are retried once
    and then fall back to in-process sequential checking (see
    :mod:`repro.verify.parallel`).  On platforms without the ``fork``
    start method the workers run the shared-memory arena engine under
    ``spawn`` — same verdict, a report warning notes the engine
    substitution — instead of degrading to a sequential run.

    An exhausted ``budget`` aborts with ``resource_limit_exceeded`` and
    partial progress instead of a verdict.  ``obs`` attaches the
    optional instrumentation layer (metrics, tracing, progress); when
    it carries a dependency-graph recorder and no explicit
    ``engine_cls`` is given, the counting engine is selected so the
    captured graph is independent of check order and sharding (see
    :func:`_resolve_engine_cls`).  ``instance`` (a name or path for
    the formula, optional) keys the parallel backend's best-effort
    shard-plan calibration against the run-history store.
    """
    _check_order(order)
    _check_mode(mode)
    engine_cls = _resolve_engine_cls(engine_cls, obs, mode=mode,
                                     order=order)
    jobs = _resolve_jobs(jobs, obs)
    meter = budget.start() if budget is not None else None
    if jobs > 1 and len(proof) > 1:
        # The backend picks the start method and transport itself:
        # no-fork platforms run spawn + shared-memory arena instead of
        # the old silent sequential degrade (see select_backend).
        return _verify_proof_v1_parallel(formula, proof, engine_cls,
                                         order, mode, jobs, meter,
                                         obs, instance=instance)
    build = ReportBuilder(
        VerificationReport, obs=obs, total_checks=len(proof),
        procedure="verification1", num_proof_clauses=len(proof),
        mode=mode, engine=engine_name(engine_cls))
    with build.phase("setup", procedure="verification1", mode=mode,
                     order=order):
        # Retirement requires a monotone-decreasing ceiling (backward).
        checker = ProofChecker(formula, proof, engine_cls, mode=mode,
                               retire=(order == "backward"), meter=meter)
    counters = checker.engine.counters
    checked = 0
    capture = obs is not None and obs.wants_depgraph
    indices = (range(len(proof) - 1, -1, -1) if order == "backward"
               else range(len(proof)))
    with build.phase("checks"):
        for index in indices:
            work_before = counters.total_work() if capture else 0
            try:
                if obs is None:
                    outcome = checker.check_clause(index)
                else:
                    with build.check(index, counters):
                        outcome = checker.check_clause(index)
            except BudgetExhausted as exc:
                if obs is not None:
                    obs.event("budget_exhausted", reason=str(exc))
                    obs.counter_add("repro_budget_exhausted_total")
                _publish_checker_stats(obs, checker)
                return build.build(
                    RESOURCE_LIMIT_EXCEEDED,
                    num_checked=checked,
                    stopped_at_index=index,
                    failure_reason=str(exc),
                    bcp_counters=counters.as_dict())
            if capture and outcome.conflict \
                    and outcome.confl_cid is not None:
                # Before reset(): the responsibility walk reads the
                # post-propagation reasons.
                obs.record_dependency(
                    index, checker.cid_of_proof_clause(index),
                    collect_responsible(checker.engine,
                                        outcome.confl_cid),
                    confl=outcome.confl_cid,
                    props=counters.total_work() - work_before)
            checker.reset()
            checked += 1
            if not outcome.conflict:
                _publish_checker_stats(obs, checker)
                return build.build(
                    PROOF_IS_NOT_CORRECT,
                    num_checked=checked,
                    failed_clause_index=index,
                    failure_reason=(
                        f"BCP on the falsified clause {proof[index]} "
                        "did not produce a conflict"),
                    bcp_counters=counters.as_dict())
    _publish_checker_stats(obs, checker)
    return build.build(PROOF_IS_CORRECT, num_checked=checked,
                       bcp_counters=counters.as_dict())


def _verify_proof_v1_parallel(
        formula: CnfFormula, proof: ConflictClauseProof,
        engine_cls: type[PropagatorBase], order: str, mode: str,
        jobs: int, meter: BudgetMeter | None,
        obs=None, instance: str | None = None) -> VerificationReport:
    from repro.verify.parallel import run_sharded_v1

    jobs = min(jobs, len(proof))
    build = ReportBuilder(
        VerificationReport, obs=obs, total_checks=len(proof),
        procedure="verification1", num_proof_clauses=len(proof),
        mode=mode, jobs=jobs, engine=engine_name(engine_cls))
    with build.phase("pool", procedure="verification1", mode=mode,
                     order=order, jobs=jobs):
        run = run_sharded_v1(formula, proof, engine_cls, order, mode,
                             jobs, meter, obs=obs, builder=build,
                             instance=instance)
    if obs is not None:
        obs.publish_depgraph_totals()
    if run.budget_reason is not None:
        if obs is not None:
            obs.event("budget_exhausted", reason=run.budget_reason)
            obs.counter_add("repro_budget_exhausted_total")
        return build.build(
            RESOURCE_LIMIT_EXCEEDED,
            num_checked=run.num_checked,
            stopped_at_index=run.stopped_at_index,
            failure_reason=run.budget_reason,
            bcp_counters=run.counters,
            worker_failures=run.worker_failures, warnings=run.warnings)
    if run.failed_index is not None:
        return build.build(
            PROOF_IS_NOT_CORRECT,
            num_checked=run.num_checked,
            failed_clause_index=run.failed_index,
            failure_reason=(
                f"BCP on the falsified clause {proof[run.failed_index]} "
                "did not produce a conflict"),
            bcp_counters=run.counters,
            worker_failures=run.worker_failures, warnings=run.warnings)
    return build.build(
        PROOF_IS_CORRECT,
        num_checked=run.num_checked,
        bcp_counters=run.counters,
        worker_failures=run.worker_failures, warnings=run.warnings)


def verify_proof_v2(
        formula: CnfFormula, proof: ConflictClauseProof,
        engine_cls: type[PropagatorBase] | None = None,
        mode: str = "rebuild",
        budget: CheckBudget | None = None,
        obs=None,
) -> VerificationReport:
    """Proof_verification2: check only marked clauses; extract a core.

    Initially only the clauses of the final conflicting pair are marked
    (for an empty-ended proof, the final empty clause).  Each passing
    check marks, via conflict analysis, every clause of ``F`` and ``F*``
    responsible for its conflict.  Unmarked clauses of ``F*`` are
    redundant and skipped; marked clauses of ``F`` form the unsatisfiable
    core.

    An exhausted ``budget`` aborts with ``resource_limit_exceeded``; no
    core is reported for a partial run (marking is incomplete).  ``obs``
    attaches the optional instrumentation layer; the marked-clause
    ratio — the quantity Section 6's efficiency claim rests on — is
    exported as the ``repro_verify_marked_ratio`` gauge.  When ``obs``
    carries a dependency-graph recorder and no explicit ``engine_cls``
    is given, the counting engine is selected for reproducible
    provenance (see :func:`_resolve_engine_cls`).
    """
    _check_mode(mode)
    engine_cls = _resolve_engine_cls(engine_cls, obs, mode=mode,
                                     order="backward")
    build = ReportBuilder(
        VerificationReport, obs=obs, total_checks=len(proof),
        procedure="verification2", num_proof_clauses=len(proof),
        mode=mode, engine=engine_name(engine_cls))
    meter = budget.start() if budget is not None else None
    with build.phase("setup", procedure="verification2", mode=mode):
        checker = ProofChecker(formula, proof, engine_cls, mode=mode,
                               meter=meter)
    counters = checker.engine.counters
    num_input = formula.num_clauses
    marked: set[int] = set()
    if proof.ending == ENDING_FINAL_PAIR:
        marked.add(checker.cid_of_proof_clause(len(proof) - 1))
        marked.add(checker.cid_of_proof_clause(len(proof) - 2))
    else:
        marked.add(checker.cid_of_proof_clause(len(proof) - 1))

    checked = 0
    skipped = 0

    def finish_metrics() -> None:
        _publish_checker_stats(obs, checker)
        if obs is not None:
            obs.counter_add("repro_verify_checks_skipped_total", skipped,
                            help="Redundant proof clauses never checked")
            if len(proof):
                obs.gauge_set(
                    "repro_verify_marked_ratio",
                    checked / len(proof),
                    help="Fraction of F* that had to be checked")

    capture = obs is not None and obs.wants_depgraph
    with build.phase("checks"):
        for index in range(len(proof) - 1, -1, -1):
            cid = checker.cid_of_proof_clause(index)
            if cid not in marked:
                skipped += 1
                continue
            work_before = counters.total_work() if capture else 0
            try:
                if obs is None:
                    outcome = checker.check_clause(index)
                else:
                    with build.check(index, counters):
                        outcome = checker.check_clause(index)
            except BudgetExhausted as exc:
                if obs is not None:
                    obs.event("budget_exhausted", reason=str(exc))
                    obs.counter_add("repro_budget_exhausted_total")
                finish_metrics()
                return build.build(
                    RESOURCE_LIMIT_EXCEEDED,
                    num_checked=checked,
                    num_skipped=skipped,
                    stopped_at_index=index,
                    failure_reason=str(exc),
                    bcp_counters=counters.as_dict())
            if outcome.conflict and outcome.confl_cid is not None:
                # One responsibility walk serves both the marking and
                # the provenance record — the depgraph is the paper's
                # marking machinery made visible, not a second pass.
                if obs is None:
                    marked.update(collect_responsible(
                        checker.engine, outcome.confl_cid))
                else:
                    with build.phase("marking"):
                        responsible = collect_responsible(
                            checker.engine, outcome.confl_cid)
                        marked.update(responsible)
                    if capture:
                        obs.record_dependency(
                            index, cid, responsible,
                            confl=outcome.confl_cid,
                            props=counters.total_work() - work_before)
            checker.reset()
            checked += 1
            if not outcome.conflict:
                finish_metrics()
                return build.build(
                    PROOF_IS_NOT_CORRECT,
                    num_checked=checked,
                    num_skipped=skipped,
                    failed_clause_index=index,
                    failure_reason=(
                        f"BCP on the falsified clause {proof[index]} "
                        "did not produce a conflict"),
                    bcp_counters=counters.as_dict())

    with build.phase("core"):
        core_indices = tuple(sorted(cid for cid in marked
                                    if cid < num_input))
        marked_proof = tuple(sorted(cid - num_input for cid in marked
                                    if cid >= num_input))
        core = UnsatCore(core_indices, formula)
    finish_metrics()
    return build.build(
        PROOF_IS_CORRECT,
        num_checked=checked,
        num_skipped=skipped,
        core=core,
        marked_proof_indices=marked_proof,
        bcp_counters=counters.as_dict())


def verify_proof(formula: CnfFormula, proof: ConflictClauseProof,
                 procedure: str = "verification2",
                 engine_cls: type[PropagatorBase] | None = None,
                 order: str = "backward",
                 mode: str = "rebuild",
                 jobs: int | None = 1,
                 budget: CheckBudget | None = None,
                 obs=None,
                 instance: str | None = None,
                 ) -> VerificationReport:
    """Verify a conflict clause proof (``verification2`` by default).

    The dispatcher forwards every option the selected procedure
    understands: ``order``, ``jobs`` and ``instance`` (the shard
    planner's calibration key) apply to ``verification1`` only
    (``verification2``'s marking pass is inherently backward and
    sequential), ``mode``, ``engine_cls``, ``budget`` and ``obs`` to
    both.
    """
    if procedure == "verification1":
        return verify_proof_v1(formula, proof, engine_cls, order=order,
                               mode=mode, jobs=jobs, budget=budget,
                               obs=obs, instance=instance)
    if procedure == "verification2":
        if order != "backward":
            raise ValueError(
                "verification2 is inherently backward; "
                f"order={order!r} is only valid with verification1")
        if jobs not in (1, None):
            raise ValueError(
                "verification2's marking pass is sequential; "
                f"jobs={jobs!r} is only valid with verification1")
        return verify_proof_v2(formula, proof, engine_cls, mode=mode,
                               budget=budget, obs=obs)
    raise ValueError(f"unknown verification procedure {procedure!r}")
