"""The paper's two proof verification procedures.

``verify_proof_v1`` is Proof_verification1 (Section 3): every clause of
``F*`` is checked, in reverse chronological order, by falsifying it and
running BCP over the formula plus the earlier-deduced clauses.  Because
its checks are independent by construction, it also offers a
process-parallel backend (``jobs > 1``) that shards the proof indices
across a worker pool with deterministic first-failure reporting.

``verify_proof_v2`` is Proof_verification2 (Section 4): only clauses
marked as contributing to the refutation are checked — marking starts
from the final conflicting pair and is extended by conflict analysis of
each BCP conflict — and the marked clauses of ``F`` are returned as an
unsatisfiable core.

Both procedures accept ``mode``: ``"rebuild"`` re-asserts the unit
clauses inside every check (the original behavior), while
``"incremental"`` keeps a persistent root trail and retires clauses
behind the moving ceiling (see :mod:`repro.verify.checker`), which is
markedly cheaper on backward passes.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.bcp.engine import PropagatorBase
from repro.bcp.watched import WatchedPropagator
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import ENDING_FINAL_PAIR, \
    ConflictClauseProof
from repro.verify.checker import CHECKER_MODES, ProofChecker
from repro.verify.conflict_analysis import mark_responsible
from repro.verify.report import (
    PROOF_IS_CORRECT,
    PROOF_IS_NOT_CORRECT,
    UnsatCore,
    VerificationReport,
)


def _check_mode(mode: str) -> None:
    if mode not in CHECKER_MODES:
        raise ValueError(f"unknown checker mode {mode!r}; "
                         f"expected one of {CHECKER_MODES}")


def verify_proof_v1(
        formula: CnfFormula, proof: ConflictClauseProof,
        engine_cls: type[PropagatorBase] = WatchedPropagator,
        order: str = "backward",
        mode: str = "rebuild",
        jobs: int = 1,
) -> VerificationReport:
    """Proof_verification1: check the correctness of *every* clause of F*.

    Returns ``proof_is_not_correct`` pointing at the first questionable
    clause (in processing order), else ``proof_is_correct``.

    The paper notes that "the order in which clauses are checked does
    not matter" when all of them are checked; ``order`` exposes both
    directions (``"backward"``, the paper's default, or ``"forward"``)
    — the verdict is order-independent, only the index of the first
    failure reported can differ.

    ``jobs > 1`` shards the independent checks across worker processes;
    the verdict and the reported failure index match the sequential scan
    (``num_checked`` may exceed it on failing proofs, since shards past
    the failure still ran).
    """
    if order not in ("backward", "forward"):
        raise ValueError(f"unknown order {order!r}")
    _check_mode(mode)
    if jobs > 1 and len(proof) > 1 \
            and "fork" in multiprocessing.get_all_start_methods():
        return _verify_proof_v1_parallel(formula, proof, engine_cls,
                                         order, mode, jobs)
    start = time.perf_counter()
    # Retirement requires a monotone-decreasing ceiling, i.e. backward.
    checker = ProofChecker(formula, proof, engine_cls, mode=mode,
                           retire=(order == "backward"))
    checked = 0
    indices = (range(len(proof) - 1, -1, -1) if order == "backward"
               else range(len(proof)))
    for index in indices:
        outcome = checker.check_clause(index)
        checker.reset()
        checked += 1
        if not outcome.conflict:
            return VerificationReport(
                outcome=PROOF_IS_NOT_CORRECT,
                procedure="verification1",
                num_proof_clauses=len(proof),
                num_checked=checked,
                failed_clause_index=index,
                failure_reason=(
                    f"BCP on the falsified clause {proof[index]} did not "
                    "produce a conflict"),
                verification_time=time.perf_counter() - start,
                mode=mode,
                bcp_counters=checker.engine.counters.as_dict())
    return VerificationReport(
        outcome=PROOF_IS_CORRECT,
        procedure="verification1",
        num_proof_clauses=len(proof),
        num_checked=checked,
        verification_time=time.perf_counter() - start,
        mode=mode,
        bcp_counters=checker.engine.counters.as_dict())


def _verify_proof_v1_parallel(
        formula: CnfFormula, proof: ConflictClauseProof,
        engine_cls: type[PropagatorBase], order: str, mode: str,
        jobs: int) -> VerificationReport:
    from repro.verify.parallel import run_sharded_v1

    start = time.perf_counter()
    jobs = min(jobs, len(proof))
    failed, num_checked, counters = run_sharded_v1(
        formula, proof, engine_cls, order, mode, jobs)
    if failed is not None:
        return VerificationReport(
            outcome=PROOF_IS_NOT_CORRECT,
            procedure="verification1",
            num_proof_clauses=len(proof),
            num_checked=num_checked,
            failed_clause_index=failed,
            failure_reason=(
                f"BCP on the falsified clause {proof[failed]} did not "
                "produce a conflict"),
            verification_time=time.perf_counter() - start,
            mode=mode, jobs=jobs, bcp_counters=counters)
    return VerificationReport(
        outcome=PROOF_IS_CORRECT,
        procedure="verification1",
        num_proof_clauses=len(proof),
        num_checked=num_checked,
        verification_time=time.perf_counter() - start,
        mode=mode, jobs=jobs, bcp_counters=counters)


def verify_proof_v2(
        formula: CnfFormula, proof: ConflictClauseProof,
        engine_cls: type[PropagatorBase] = WatchedPropagator,
        mode: str = "rebuild",
) -> VerificationReport:
    """Proof_verification2: check only marked clauses; extract a core.

    Initially only the clauses of the final conflicting pair are marked
    (for an empty-ended proof, the final empty clause).  Each passing
    check marks, via conflict analysis, every clause of ``F`` and ``F*``
    responsible for its conflict.  Unmarked clauses of ``F*`` are
    redundant and skipped; marked clauses of ``F`` form the unsatisfiable
    core.
    """
    _check_mode(mode)
    start = time.perf_counter()
    checker = ProofChecker(formula, proof, engine_cls, mode=mode)
    num_input = formula.num_clauses
    marked: set[int] = set()
    if proof.ending == ENDING_FINAL_PAIR:
        marked.add(checker.cid_of_proof_clause(len(proof) - 1))
        marked.add(checker.cid_of_proof_clause(len(proof) - 2))
    else:
        marked.add(checker.cid_of_proof_clause(len(proof) - 1))

    checked = 0
    skipped = 0
    for index in range(len(proof) - 1, -1, -1):
        cid = checker.cid_of_proof_clause(index)
        if cid not in marked:
            skipped += 1
            continue
        outcome = checker.check_clause(index)
        if outcome.conflict and outcome.confl_cid is not None:
            mark_responsible(checker.engine, outcome.confl_cid, marked)
        checker.reset()
        checked += 1
        if not outcome.conflict:
            return VerificationReport(
                outcome=PROOF_IS_NOT_CORRECT,
                procedure="verification2",
                num_proof_clauses=len(proof),
                num_checked=checked,
                num_skipped=skipped,
                failed_clause_index=index,
                failure_reason=(
                    f"BCP on the falsified clause {proof[index]} did not "
                    "produce a conflict"),
                verification_time=time.perf_counter() - start,
                mode=mode,
                bcp_counters=checker.engine.counters.as_dict())

    core_indices = tuple(sorted(cid for cid in marked if cid < num_input))
    marked_proof = tuple(sorted(cid - num_input for cid in marked
                                if cid >= num_input))
    return VerificationReport(
        outcome=PROOF_IS_CORRECT,
        procedure="verification2",
        num_proof_clauses=len(proof),
        num_checked=checked,
        num_skipped=skipped,
        verification_time=time.perf_counter() - start,
        core=UnsatCore(core_indices, formula),
        marked_proof_indices=marked_proof,
        mode=mode,
        bcp_counters=checker.engine.counters.as_dict())


def verify_proof(formula: CnfFormula, proof: ConflictClauseProof,
                 procedure: str = "verification2",
                 engine_cls: type[PropagatorBase] = WatchedPropagator,
                 order: str = "backward",
                 mode: str = "rebuild",
                 jobs: int = 1,
                 ) -> VerificationReport:
    """Verify a conflict clause proof (``verification2`` by default).

    The dispatcher forwards every option the selected procedure
    understands: ``order`` and ``jobs`` apply to ``verification1`` only
    (``verification2``'s marking pass is inherently backward and
    sequential), ``mode`` and ``engine_cls`` to both.
    """
    if procedure == "verification1":
        return verify_proof_v1(formula, proof, engine_cls, order=order,
                               mode=mode, jobs=jobs)
    if procedure == "verification2":
        if order != "backward":
            raise ValueError(
                "verification2 is inherently backward; "
                f"order={order!r} is only valid with verification1")
        if jobs != 1:
            raise ValueError(
                "verification2's marking pass is sequential; "
                f"jobs={jobs!r} is only valid with verification1")
        return verify_proof_v2(formula, proof, engine_cls, mode=mode)
    raise ValueError(f"unknown verification procedure {procedure!r}")
