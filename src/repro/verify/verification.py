"""The paper's two proof verification procedures.

``verify_proof_v1`` is Proof_verification1 (Section 3): every clause of
``F*`` is checked, in reverse chronological order, by falsifying it and
running BCP over the formula plus the earlier-deduced clauses.  Because
its checks are independent by construction, it also offers a
process-parallel backend (``jobs > 1``) that shards the proof indices
across a worker pool with deterministic first-failure reporting.

``verify_proof_v2`` is Proof_verification2 (Section 4): only clauses
marked as contributing to the refutation are checked — marking starts
from the final conflicting pair and is extended by conflict analysis of
each BCP conflict — and the marked clauses of ``F`` are returned as an
unsatisfiable core.

Both procedures accept ``mode``: ``"rebuild"`` re-asserts the unit
clauses inside every check (the original behavior), while
``"incremental"`` keeps a persistent root trail and retires clauses
behind the moving ceiling (see :mod:`repro.verify.checker`), which is
markedly cheaper on backward passes.

Both also accept an optional :class:`~repro.verify.budget.CheckBudget`:
when the budget runs out mid-verification the run aborts cleanly with
the ``resource_limit_exceeded`` outcome and partial progress
(``num_checked``, ``stopped_at_index``) instead of running unbounded.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.bcp.engine import PropagatorBase
from repro.bcp.watched import WatchedPropagator
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import ENDING_FINAL_PAIR, \
    ConflictClauseProof
from repro.verify.budget import BudgetExhausted, BudgetMeter, CheckBudget
from repro.verify.checker import CHECKER_MODES, ProofChecker
from repro.verify.conflict_analysis import mark_responsible
from repro.verify.report import (
    PROOF_IS_CORRECT,
    PROOF_IS_NOT_CORRECT,
    RESOURCE_LIMIT_EXCEEDED,
    UnsatCore,
    VerificationReport,
)

V1_ORDERS = ("backward", "forward")


def _check_mode(mode: str) -> None:
    if mode not in CHECKER_MODES:
        raise ValueError(f"unknown checker mode {mode!r}; "
                         f"expected one of {CHECKER_MODES}")


def _check_order(order: str) -> None:
    if order not in V1_ORDERS:
        raise ValueError(f"unknown order {order!r}; "
                         f"expected one of {V1_ORDERS}")


def _resolve_jobs(jobs: int | None) -> int:
    """Validate the worker count; ``None`` means "pick a default"."""
    if jobs is None:
        from repro.verify.parallel import default_jobs

        return default_jobs()
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ValueError(f"jobs must be a positive int or None "
                         f"(auto-detect), got {jobs!r}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 or None (auto-detect), "
                         f"got {jobs!r}")
    return jobs


def verify_proof_v1(
        formula: CnfFormula, proof: ConflictClauseProof,
        engine_cls: type[PropagatorBase] = WatchedPropagator,
        order: str = "backward",
        mode: str = "rebuild",
        jobs: int | None = 1,
        budget: CheckBudget | None = None,
) -> VerificationReport:
    """Proof_verification1: check the correctness of *every* clause of F*.

    Returns ``proof_is_not_correct`` pointing at the first questionable
    clause (in processing order), else ``proof_is_correct``.

    The paper notes that "the order in which clauses are checked does
    not matter" when all of them are checked; ``order`` exposes both
    directions (``"backward"``, the paper's default, or ``"forward"``)
    — the verdict is order-independent, only the index of the first
    failure reported can differ.

    ``jobs > 1`` shards the independent checks across worker processes
    (``jobs=None`` auto-sizes to the machine); the verdict and the
    reported failure index match the sequential scan (``num_checked``
    may exceed it on failing proofs, since shards past the failure
    still ran).  The parallel backend is fault-tolerant: a dead worker's
    shards are retried once and then fall back to in-process sequential
    checking (see :mod:`repro.verify.parallel`), and the whole call
    degrades to sequential — with a report warning — on platforms
    without the ``fork`` start method.

    An exhausted ``budget`` aborts with ``resource_limit_exceeded`` and
    partial progress instead of a verdict.
    """
    _check_order(order)
    _check_mode(mode)
    jobs = _resolve_jobs(jobs)
    meter = budget.start() if budget is not None else None
    warnings: tuple[str, ...] = ()
    if jobs > 1 and len(proof) > 1:
        if "fork" in multiprocessing.get_all_start_methods():
            return _verify_proof_v1_parallel(formula, proof, engine_cls,
                                             order, mode, jobs, meter)
        warnings = (
            "parallel backend unavailable: no 'fork' start method on "
            "this platform; degraded to a sequential run",)
    start = time.perf_counter()
    # Retirement requires a monotone-decreasing ceiling, i.e. backward.
    checker = ProofChecker(formula, proof, engine_cls, mode=mode,
                           retire=(order == "backward"), meter=meter)
    checked = 0
    indices = (range(len(proof) - 1, -1, -1) if order == "backward"
               else range(len(proof)))
    for index in indices:
        try:
            outcome = checker.check_clause(index)
        except BudgetExhausted as exc:
            return VerificationReport(
                outcome=RESOURCE_LIMIT_EXCEEDED,
                procedure="verification1",
                num_proof_clauses=len(proof),
                num_checked=checked,
                stopped_at_index=index,
                failure_reason=str(exc),
                verification_time=time.perf_counter() - start,
                mode=mode, warnings=warnings,
                bcp_counters=checker.engine.counters.as_dict())
        checker.reset()
        checked += 1
        if not outcome.conflict:
            return VerificationReport(
                outcome=PROOF_IS_NOT_CORRECT,
                procedure="verification1",
                num_proof_clauses=len(proof),
                num_checked=checked,
                failed_clause_index=index,
                failure_reason=(
                    f"BCP on the falsified clause {proof[index]} did not "
                    "produce a conflict"),
                verification_time=time.perf_counter() - start,
                mode=mode, warnings=warnings,
                bcp_counters=checker.engine.counters.as_dict())
    return VerificationReport(
        outcome=PROOF_IS_CORRECT,
        procedure="verification1",
        num_proof_clauses=len(proof),
        num_checked=checked,
        verification_time=time.perf_counter() - start,
        mode=mode, warnings=warnings,
        bcp_counters=checker.engine.counters.as_dict())


def _verify_proof_v1_parallel(
        formula: CnfFormula, proof: ConflictClauseProof,
        engine_cls: type[PropagatorBase], order: str, mode: str,
        jobs: int, meter: BudgetMeter | None) -> VerificationReport:
    from repro.verify.parallel import run_sharded_v1

    start = time.perf_counter()
    jobs = min(jobs, len(proof))
    run = run_sharded_v1(formula, proof, engine_cls, order, mode, jobs,
                         meter)
    if run.budget_reason is not None:
        return VerificationReport(
            outcome=RESOURCE_LIMIT_EXCEEDED,
            procedure="verification1",
            num_proof_clauses=len(proof),
            num_checked=run.num_checked,
            stopped_at_index=run.stopped_at_index,
            failure_reason=run.budget_reason,
            verification_time=time.perf_counter() - start,
            mode=mode, jobs=jobs, bcp_counters=run.counters,
            worker_failures=run.worker_failures, warnings=run.warnings)
    if run.failed_index is not None:
        return VerificationReport(
            outcome=PROOF_IS_NOT_CORRECT,
            procedure="verification1",
            num_proof_clauses=len(proof),
            num_checked=run.num_checked,
            failed_clause_index=run.failed_index,
            failure_reason=(
                f"BCP on the falsified clause {proof[run.failed_index]} "
                "did not produce a conflict"),
            verification_time=time.perf_counter() - start,
            mode=mode, jobs=jobs, bcp_counters=run.counters,
            worker_failures=run.worker_failures, warnings=run.warnings)
    return VerificationReport(
        outcome=PROOF_IS_CORRECT,
        procedure="verification1",
        num_proof_clauses=len(proof),
        num_checked=run.num_checked,
        verification_time=time.perf_counter() - start,
        mode=mode, jobs=jobs, bcp_counters=run.counters,
        worker_failures=run.worker_failures, warnings=run.warnings)


def verify_proof_v2(
        formula: CnfFormula, proof: ConflictClauseProof,
        engine_cls: type[PropagatorBase] = WatchedPropagator,
        mode: str = "rebuild",
        budget: CheckBudget | None = None,
) -> VerificationReport:
    """Proof_verification2: check only marked clauses; extract a core.

    Initially only the clauses of the final conflicting pair are marked
    (for an empty-ended proof, the final empty clause).  Each passing
    check marks, via conflict analysis, every clause of ``F`` and ``F*``
    responsible for its conflict.  Unmarked clauses of ``F*`` are
    redundant and skipped; marked clauses of ``F`` form the unsatisfiable
    core.

    An exhausted ``budget`` aborts with ``resource_limit_exceeded``; no
    core is reported for a partial run (marking is incomplete).
    """
    _check_mode(mode)
    start = time.perf_counter()
    meter = budget.start() if budget is not None else None
    checker = ProofChecker(formula, proof, engine_cls, mode=mode,
                           meter=meter)
    num_input = formula.num_clauses
    marked: set[int] = set()
    if proof.ending == ENDING_FINAL_PAIR:
        marked.add(checker.cid_of_proof_clause(len(proof) - 1))
        marked.add(checker.cid_of_proof_clause(len(proof) - 2))
    else:
        marked.add(checker.cid_of_proof_clause(len(proof) - 1))

    checked = 0
    skipped = 0
    for index in range(len(proof) - 1, -1, -1):
        cid = checker.cid_of_proof_clause(index)
        if cid not in marked:
            skipped += 1
            continue
        try:
            outcome = checker.check_clause(index)
        except BudgetExhausted as exc:
            return VerificationReport(
                outcome=RESOURCE_LIMIT_EXCEEDED,
                procedure="verification2",
                num_proof_clauses=len(proof),
                num_checked=checked,
                num_skipped=skipped,
                stopped_at_index=index,
                failure_reason=str(exc),
                verification_time=time.perf_counter() - start,
                mode=mode,
                bcp_counters=checker.engine.counters.as_dict())
        if outcome.conflict and outcome.confl_cid is not None:
            mark_responsible(checker.engine, outcome.confl_cid, marked)
        checker.reset()
        checked += 1
        if not outcome.conflict:
            return VerificationReport(
                outcome=PROOF_IS_NOT_CORRECT,
                procedure="verification2",
                num_proof_clauses=len(proof),
                num_checked=checked,
                num_skipped=skipped,
                failed_clause_index=index,
                failure_reason=(
                    f"BCP on the falsified clause {proof[index]} did not "
                    "produce a conflict"),
                verification_time=time.perf_counter() - start,
                mode=mode,
                bcp_counters=checker.engine.counters.as_dict())

    core_indices = tuple(sorted(cid for cid in marked if cid < num_input))
    marked_proof = tuple(sorted(cid - num_input for cid in marked
                                if cid >= num_input))
    return VerificationReport(
        outcome=PROOF_IS_CORRECT,
        procedure="verification2",
        num_proof_clauses=len(proof),
        num_checked=checked,
        num_skipped=skipped,
        verification_time=time.perf_counter() - start,
        core=UnsatCore(core_indices, formula),
        marked_proof_indices=marked_proof,
        mode=mode,
        bcp_counters=checker.engine.counters.as_dict())


def verify_proof(formula: CnfFormula, proof: ConflictClauseProof,
                 procedure: str = "verification2",
                 engine_cls: type[PropagatorBase] = WatchedPropagator,
                 order: str = "backward",
                 mode: str = "rebuild",
                 jobs: int | None = 1,
                 budget: CheckBudget | None = None,
                 ) -> VerificationReport:
    """Verify a conflict clause proof (``verification2`` by default).

    The dispatcher forwards every option the selected procedure
    understands: ``order`` and ``jobs`` apply to ``verification1`` only
    (``verification2``'s marking pass is inherently backward and
    sequential), ``mode``, ``engine_cls`` and ``budget`` to both.
    """
    if procedure == "verification1":
        return verify_proof_v1(formula, proof, engine_cls, order=order,
                               mode=mode, jobs=jobs, budget=budget)
    if procedure == "verification2":
        if order != "backward":
            raise ValueError(
                "verification2 is inherently backward; "
                f"order={order!r} is only valid with verification1")
        if jobs not in (1, None):
            raise ValueError(
                "verification2's marking pass is sequential; "
                f"jobs={jobs!r} is only valid with verification1")
        return verify_proof_v2(formula, proof, engine_cls, mode=mode,
                               budget=budget)
    raise ValueError(f"unknown verification procedure {procedure!r}")
