"""The paper's two proof verification procedures.

``verify_proof_v1`` is Proof_verification1 (Section 3): every clause of
``F*`` is checked, in reverse chronological order, by falsifying it and
running BCP over the formula plus the earlier-deduced clauses.

``verify_proof_v2`` is Proof_verification2 (Section 4): only clauses
marked as contributing to the refutation are checked — marking starts
from the final conflicting pair and is extended by conflict analysis of
each BCP conflict — and the marked clauses of ``F`` are returned as an
unsatisfiable core.
"""

from __future__ import annotations

import time

from repro.bcp.engine import PropagatorBase
from repro.bcp.watched import WatchedPropagator
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import ENDING_FINAL_PAIR, \
    ConflictClauseProof
from repro.verify.checker import ProofChecker
from repro.verify.conflict_analysis import mark_responsible
from repro.verify.report import (
    PROOF_IS_CORRECT,
    PROOF_IS_NOT_CORRECT,
    UnsatCore,
    VerificationReport,
)


def verify_proof_v1(
        formula: CnfFormula, proof: ConflictClauseProof,
        engine_cls: type[PropagatorBase] = WatchedPropagator,
        order: str = "backward",
) -> VerificationReport:
    """Proof_verification1: check the correctness of *every* clause of F*.

    Returns ``proof_is_not_correct`` pointing at the first questionable
    clause (in processing order), else ``proof_is_correct``.

    The paper notes that "the order in which clauses are checked does
    not matter" when all of them are checked; ``order`` exposes both
    directions (``"backward"``, the paper's default, or ``"forward"``)
    — the verdict is order-independent, only the index of the first
    failure reported can differ.
    """
    if order not in ("backward", "forward"):
        raise ValueError(f"unknown order {order!r}")
    start = time.perf_counter()
    checker = ProofChecker(formula, proof, engine_cls)
    checked = 0
    indices = (range(len(proof) - 1, -1, -1) if order == "backward"
               else range(len(proof)))
    for index in indices:
        outcome = checker.check_clause(index)
        checker.reset()
        checked += 1
        if not outcome.conflict:
            return VerificationReport(
                outcome=PROOF_IS_NOT_CORRECT,
                procedure="verification1",
                num_proof_clauses=len(proof),
                num_checked=checked,
                failed_clause_index=index,
                failure_reason=(
                    f"BCP on the falsified clause {proof[index]} did not "
                    "produce a conflict"),
                verification_time=time.perf_counter() - start)
    return VerificationReport(
        outcome=PROOF_IS_CORRECT,
        procedure="verification1",
        num_proof_clauses=len(proof),
        num_checked=checked,
        verification_time=time.perf_counter() - start)


def verify_proof_v2(
        formula: CnfFormula, proof: ConflictClauseProof,
        engine_cls: type[PropagatorBase] = WatchedPropagator,
) -> VerificationReport:
    """Proof_verification2: check only marked clauses; extract a core.

    Initially only the clauses of the final conflicting pair are marked
    (for an empty-ended proof, the final empty clause).  Each passing
    check marks, via conflict analysis, every clause of ``F`` and ``F*``
    responsible for its conflict.  Unmarked clauses of ``F*`` are
    redundant and skipped; marked clauses of ``F`` form the unsatisfiable
    core.
    """
    start = time.perf_counter()
    checker = ProofChecker(formula, proof, engine_cls)
    num_input = formula.num_clauses
    marked: set[int] = set()
    if proof.ending == ENDING_FINAL_PAIR:
        marked.add(checker.cid_of_proof_clause(len(proof) - 1))
        marked.add(checker.cid_of_proof_clause(len(proof) - 2))
    else:
        marked.add(checker.cid_of_proof_clause(len(proof) - 1))

    checked = 0
    skipped = 0
    for index in range(len(proof) - 1, -1, -1):
        cid = checker.cid_of_proof_clause(index)
        if cid not in marked:
            skipped += 1
            continue
        outcome = checker.check_clause(index)
        if outcome.conflict and outcome.confl_cid is not None:
            mark_responsible(checker.engine, outcome.confl_cid, marked)
        checker.reset()
        checked += 1
        if not outcome.conflict:
            return VerificationReport(
                outcome=PROOF_IS_NOT_CORRECT,
                procedure="verification2",
                num_proof_clauses=len(proof),
                num_checked=checked,
                num_skipped=skipped,
                failed_clause_index=index,
                failure_reason=(
                    f"BCP on the falsified clause {proof[index]} did not "
                    "produce a conflict"),
                verification_time=time.perf_counter() - start)

    core_indices = tuple(sorted(cid for cid in marked if cid < num_input))
    marked_proof = tuple(sorted(cid - num_input for cid in marked
                                if cid >= num_input))
    return VerificationReport(
        outcome=PROOF_IS_CORRECT,
        procedure="verification2",
        num_proof_clauses=len(proof),
        num_checked=checked,
        num_skipped=skipped,
        verification_time=time.perf_counter() - start,
        core=UnsatCore(core_indices, formula),
        marked_proof_indices=marked_proof)


def verify_proof(formula: CnfFormula, proof: ConflictClauseProof,
                 procedure: str = "verification2",
                 engine_cls: type[PropagatorBase] = WatchedPropagator,
                 ) -> VerificationReport:
    """Verify a conflict clause proof (``verification2`` by default)."""
    if procedure == "verification1":
        return verify_proof_v1(formula, proof, engine_cls)
    if procedure == "verification2":
        return verify_proof_v2(formula, proof, engine_cls)
    raise ValueError(f"unknown verification procedure {procedure!r}")
