"""Reconstruct a resolution graph proof from a conflict clause proof.

Section 5 of the paper observes that during verification "each conflict
clause will be eventually assigned to an internal node of the resolution
graph" — i.e. a conflict clause proof plus its BCP checks *is* an
implicit resolution graph.  This module makes the graph explicit: while
checking each clause (forward), the conflict is resolved backwards along
the trail (input resolution over the clauses BCP actually used), which
yields a derivation of the clause — or of a strengthening of it;
derivations of redundant clauses are pruned from the final DAG.

Strengthened intermediate clauses are the classic complication of
RUP-to-resolution conversion: when a reason clause's derived version no
longer contains the propagated literal, it is already falsified outright
and the derivation *restarts* from it.  The result is always a valid
resolution DAG whose sink is the empty clause, checkable with
:meth:`repro.proofs.ResolutionGraphProof.check`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bcp.engine import PropagatorBase
from repro.bcp.watched import WatchedPropagator
from repro.core.exceptions import ReproError
from repro.core.formula import CnfFormula
from repro.core.literals import decode
from repro.proofs.conflict_clause import ENDING_FINAL_PAIR, \
    ConflictClauseProof
from repro.proofs.resolution import ResolutionGraphProof, ResolutionNode
from repro.verify.checker import ProofChecker


@dataclass
class ReconstructionResult:
    """A resolution graph rebuilt from a conflict clause proof."""

    graph: ResolutionGraphProof
    derived_clauses: dict[int, frozenset[int]]
    """Per chronological proof index: the clause actually derived (a
    subset of the proof clause — equal in the common case)."""

    strengthened: int
    """How many proof clauses were derived strictly stronger."""


def _derive_chain(engine: PropagatorBase, derived_of, confl_cid: int):
    """Input resolution of the conflict backwards along the trail.

    Returns ``(chain_cids, pivots, final_literal_set)``; the final set
    contains only negations of assumption literals.
    """
    resolvent = set(derived_of(confl_cid))
    chain = [confl_cid]
    pivots: list[int] = []
    trail = engine.trail
    reasons = engine.reasons
    for pos in range(len(trail) - 1, -1, -1):
        enc = trail[pos]
        lit_true = decode(enc)
        if -lit_true not in resolvent:
            continue
        reason_cid = reasons[enc >> 1]
        if reason_cid is None:
            continue  # assumption: its negation stays in the resolvent
        reason_set = derived_of(reason_cid)
        if lit_true not in reason_set:
            # The derived reason is already falsified below this point:
            # restart the derivation from it (strengthening).
            resolvent = set(reason_set)
            chain = [reason_cid]
            pivots = []
            continue
        resolvent = (resolvent - {-lit_true}) | (reason_set - {lit_true})
        chain.append(reason_cid)
        pivots.append(abs(lit_true))
    return chain, pivots, frozenset(resolvent)


def reconstruct_resolution_graph(
        formula: CnfFormula, proof: ConflictClauseProof,
        engine_cls: type[PropagatorBase] = WatchedPropagator,
) -> ReconstructionResult:
    """Rebuild an explicit, checkable resolution DAG from ``proof``.

    Checks every proof clause forward (recording its derivation chain)
    and prunes the chains of redundant clauses by reachability from the
    sink.  Raises :class:`ReproError` if the proof does not verify (no
    graph exists for an incorrect proof).
    """
    checker = ProofChecker(formula, proof, engine_cls)
    engine = checker.engine
    num_input = formula.num_clauses

    derived: dict[int, frozenset[int]] = {}

    def derived_of(cid: int) -> frozenset[int]:
        if cid in derived:
            return derived[cid]
        return frozenset(decode(enc) for enc in engine.clause_lits(cid))

    # One forward pass checking *every* clause: each derivation then
    # sees the (possibly strengthened) derived versions of all earlier
    # clauses, and a chain can never reference a clause without a chain.
    # (A backward marked-only pass would be cheaper, but watch-list
    # mutation makes later re-checks find different conflicts than the
    # marking pass did; redundant chains are pruned by reachability
    # below instead.)
    chains: dict[int, tuple[list[int], list[int], frozenset[int]]] = {}
    for index in range(len(proof)):
        cid = checker.cid_of_proof_clause(index)
        outcome = checker.check_clause(index)
        if not outcome.conflict:
            checker.reset()
            raise ReproError(
                f"proof clause {index} failed its BCP check; cannot "
                "reconstruct a resolution graph from an incorrect proof")
        if outcome.confl_cid is None:
            checker.reset()
            raise ReproError(
                f"proof clause {index} is a tautology; tautologies have "
                "no resolution derivation")
        chains[index] = _derive_chain(engine, derived_of,
                                      outcome.confl_cid)
        checker.reset()
        derived[cid] = chains[index][2]

    # Assemble the DAG in chronological order so references are earlier.
    sources = [clause.literals for clause in formula]
    nodes: list[ResolutionNode] = []
    node_of: dict[int, int] = {}

    def node_id(cid: int) -> int:
        if cid < num_input:
            return cid
        return node_of[cid]

    strengthened = 0
    empty_node: int | None = None
    for index in sorted(chains):
        chain, pivots, final_set = chains[index]
        current = node_id(chain[0])
        for ref, pivot in zip(chain[1:], pivots):
            nodes.append(ResolutionNode(current, node_id(ref), pivot))
            current = num_input + len(nodes) - 1
        cid = checker.cid_of_proof_clause(index)
        node_of[cid] = current
        if final_set != frozenset(proof[index]):
            strengthened += 1
        if not final_set and empty_node is None:
            empty_node = current

    if empty_node is not None:
        sink = empty_node
    elif proof.ending == ENDING_FINAL_PAIR:
        first = node_id(checker.cid_of_proof_clause(len(proof) - 2))
        second = node_id(checker.cid_of_proof_clause(len(proof) - 1))
        pivot = abs(proof[len(proof) - 1][0])
        nodes.append(ResolutionNode(first, second, pivot))
        sink = num_input + len(nodes) - 1
    else:
        sink = node_id(checker.cid_of_proof_clause(len(proof) - 1))

    nodes, sink = _prune_unreachable(num_input, nodes, sink)
    derived_by_index = {
        index: chains[index][2] for index in chains}
    graph = ResolutionGraphProof(sources, nodes, sink)
    return ReconstructionResult(graph=graph,
                                derived_clauses=derived_by_index,
                                strengthened=strengthened)


def _prune_unreachable(num_sources: int, nodes: list[ResolutionNode],
                       sink: int) -> tuple[list[ResolutionNode], int]:
    """Drop internal nodes not reachable from the sink (the derivations
    of redundant proof clauses), re-indexing the survivors."""
    needed: set[int] = set()
    stack = [sink]
    while stack:
        node_id = stack.pop()
        if node_id < num_sources or node_id in needed:
            continue
        needed.add(node_id)
        node = nodes[node_id - num_sources]
        stack.append(node.left)
        stack.append(node.right)

    mapping: dict[int, int] = {}
    surviving: list[ResolutionNode] = []
    for old_index, node in enumerate(nodes):
        old_id = num_sources + old_index
        if old_id not in needed:
            continue
        left = node.left if node.left < num_sources \
            else mapping[node.left]
        right = node.right if node.right < num_sources \
            else mapping[node.right]
        mapping[old_id] = num_sources + len(surviving)
        surviving.append(ResolutionNode(left, right, node.pivot))
    new_sink = sink if sink < num_sources else mapping[sink]
    return surviving, new_sink
