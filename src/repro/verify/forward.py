"""Forward DRUP checking with deletions.

The dual of the paper's backward procedures: process the trace in
chronological order, RUP-checking each addition against the *currently
active* clause set and honoring deletion lines.  Deletions keep the
checker's working set as small as the solver's was — the fix for the
memory growth the paper's Section 5 worries about, at the price of
checking every addition (no marking/skipping is possible forward).

The active set is tracked with the clause-ceiling engine plus a set of
deleted clause ids (deleted clauses are detached, so they neither
propagate nor conflict).

Reports are built through the shared
:class:`~repro.verify.instrument.ReportBuilder`, so the forward
checker gets the same per-phase stats breakdown, optional per-event
instrumentation (``obs``), and progress heartbeat as the backward
procedures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bcp import engine_name, resolve_engine
from repro.bcp.engine import FALSE, TRUE, PropagatorBase
from repro.core.formula import CnfFormula
from repro.core.literals import encode
from repro.proofs.drup import ADD, DELETE, DrupProof
from repro.verify.budget import CheckBudget
from repro.verify.instrument import ReportBuilder
from repro.verify.report import (
    PROOF_IS_CORRECT,
    PROOF_IS_NOT_CORRECT,
    RESOURCE_LIMIT_EXCEEDED,
    VerificationStats,
)


@dataclass
class ForwardCheckReport:
    """Outcome of a forward DRUP check.

    With an exhausted :class:`~repro.verify.budget.CheckBudget` the
    outcome is ``resource_limit_exceeded``: ``stopped_at_event`` names
    the first unprocessed trace event and the addition/deletion counts
    report partial progress.  ``stats`` is the shared
    :class:`~repro.verify.report.VerificationStats` breakdown (for the
    forward checker, "checks" are RUP-checked additions).
    """

    outcome: str
    num_additions: int = 0
    num_deletions: int = 0
    failed_event_index: int | None = None
    failure_reason: str | None = None
    peak_active_clauses: int = 0
    verification_time: float = 0.0
    stopped_at_event: int | None = None
    engine: str = "watched"
    stats: VerificationStats | None = None

    @property
    def ok(self) -> bool:
        return self.outcome == PROOF_IS_CORRECT

    @property
    def exhausted(self) -> bool:
        return self.outcome == RESOURCE_LIMIT_EXCEEDED


def check_drup(formula: CnfFormula, proof: DrupProof,
               budget: CheckBudget | None = None,
               obs=None,
               engine_cls: "type[PropagatorBase] | str | None" = None,
               ) -> ForwardCheckReport:
    """Check a DRUP trace forward; report the first bad event.

    The ``budget`` (if given) is consulted before every trace event;
    when it runs out the check aborts with ``resource_limit_exceeded``
    and partial progress instead of a verdict.  ``obs`` attaches the
    optional instrumentation layer (per-addition timing, trace spans,
    progress over trace events).  ``engine_cls`` selects the BCP
    engine (a :data:`repro.bcp.ENGINES` name or class; default
    watched); an engine without clause-removal support (counting) is
    rejected when the trace contains deletions — honoring them is the
    point of forward checking.
    """
    engine_cls = resolve_engine(engine_cls)
    if not engine_cls.supports_removal \
            and any(event.kind == DELETE for event in proof.events):
        raise ValueError(
            f"engine '{engine_name(engine_cls)}' does not support "
            "clause removal, but the DRUP trace contains deletions; "
            "use the watched, arena, or vector engine")
    build = ReportBuilder(ForwardCheckReport, obs=obs,
                          total_checks=len(proof.events),
                          progress_label="events",
                          engine=engine_name(engine_cls))
    with build.phase("setup", procedure="drup-forward"):
        # Size the engine over the trace's variables too: a (corrupt or
        # merely foreign) trace may mention variables the formula never
        # does, and those must be assignable rather than crash the
        # checker.
        num_vars = formula.num_vars
        for event in proof.events:
            for lit in event.literals:
                if abs(lit) > num_vars:
                    num_vars = abs(lit)
        engine = engine_cls(num_vars)
        meter = budget.start() if budget is not None else None
        # Active units, kept separately (units carry no watches).
        units: dict[int, int] = {}   # cid -> encoded literal
        # Clause key -> list of active cids (for deletion lookup).
        active: dict[tuple[int, ...], list[int]] = {}

        def clause_key(literals) -> tuple[int, ...]:
            return tuple(sorted(set(literals)))

        def load(literals) -> int:
            cid = engine.add_clause([encode(lit) for lit in literals],
                                    propagate_units=False)
            if engine.clause_len(cid) == 1:
                units[cid] = engine.clause_lits(cid)[0]
            active.setdefault(clause_key(literals), []).append(cid)
            return cid

        for clause in formula:
            load(clause.literals)
        active_count = formula.num_clauses
        peak = active_count

    counters = engine.counters

    def finish_metrics() -> None:
        # BCP counter totals are published by build() itself (it gets
        # bcp_counters=); only the DRUP-specific metrics live here.
        if obs is not None:
            obs.counter_add("repro_drup_additions_total", additions,
                            help="DRUP additions RUP-checked")
            obs.counter_add("repro_drup_deletions_total", deletions,
                            help="DRUP deletion events honored")
            obs.gauge_set("repro_drup_peak_active_clauses", peak,
                          help="Peak size of the active clause set")

    def rup_check(literals) -> bool:
        engine.new_level()
        conflict = False
        for lit in literals:
            negated = encode(lit) ^ 1
            value = engine.value(negated)
            if value == TRUE:
                continue
            if value == FALSE:
                conflict = True
                break
            engine.enqueue(negated, None)
        if not conflict:
            for cid, enc in units.items():
                value = engine.value(enc)
                if value == TRUE:
                    continue
                if value == FALSE:
                    conflict = True
                    break
                engine.enqueue(enc, cid)
        if not conflict:
            conflict = engine.propagate() is not None
        engine.backtrack(0)
        return conflict

    additions = 0
    deletions = 0
    derived_empty = False
    with build.phase("events"):
        for index, event in enumerate(proof.events):
            if meter is not None:
                reason = meter.exhausted(counters)
                if reason is not None:
                    if obs is not None:
                        obs.event("budget_exhausted", reason=reason)
                        obs.counter_add("repro_budget_exhausted_total")
                    finish_metrics()
                    return build.build(
                        RESOURCE_LIMIT_EXCEEDED,
                        bcp_counters=counters.as_dict(),
                        num_additions=additions,
                        num_deletions=deletions,
                        stopped_at_event=index,
                        failure_reason=reason,
                        peak_active_clauses=peak)
            if event.kind == ADD:
                additions += 1
                if obs is None:
                    passed = rup_check(event.literals)
                else:
                    with build.check(index, counters):
                        passed = rup_check(event.literals)
                if not passed:
                    finish_metrics()
                    return build.build(
                        PROOF_IS_NOT_CORRECT,
                        bcp_counters=counters.as_dict(),
                        num_additions=additions,
                        num_deletions=deletions,
                        failed_event_index=index,
                        failure_reason=(
                            f"addition {event.literals} is not RUP"),
                        peak_active_clauses=peak)
                if not event.literals:
                    derived_empty = True
                    break
                load(event.literals)
                active_count += 1
                peak = max(peak, active_count)
            else:
                deletions += 1
                key = clause_key(event.literals)
                cids = active.get(key)
                if not cids:
                    finish_metrics()
                    return build.build(
                        PROOF_IS_NOT_CORRECT,
                        bcp_counters=counters.as_dict(),
                        num_additions=additions,
                        num_deletions=deletions,
                        failed_event_index=index,
                        failure_reason=(
                            f"deletion of inactive clause "
                            f"{event.literals}"),
                        peak_active_clauses=peak)
                cid = cids.pop()
                engine.remove_clause(cid)
                units.pop(cid, None)
                active_count -= 1
                if build.progress is not None:
                    build.progress.update(additions + deletions)

    finish_metrics()
    if not derived_empty:
        return build.build(
            PROOF_IS_NOT_CORRECT,
            bcp_counters=counters.as_dict(),
            num_additions=additions, num_deletions=deletions,
            failure_reason="trace never derives the empty clause",
            peak_active_clauses=peak)
    return build.build(
        PROOF_IS_CORRECT,
        bcp_counters=counters.as_dict(),
        num_additions=additions, num_deletions=deletions,
        peak_active_clauses=peak)