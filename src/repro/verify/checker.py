"""Shared machinery of the two verification procedures.

The checker loads ``F`` followed by ``F*`` into one BCP engine and then
checks individual proof clauses: to check clause ``C`` at chronological
position ``i``, it falsifies ``C`` (assigns the paper's ``R``) and runs
BCP over ``F ∪ F*_{<i}`` — realized with the engine's clause *ceiling*,
so no clauses are ever re-added or removed between checks.

Decision level 0 is kept empty (unit clauses are re-asserted inside each
check, filtered by the ceiling), which makes checks fully independent:
each one opens level 1, enqueues assumptions and applicable units,
propagates, and is undone by a single backtrack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bcp.engine import FALSE, TRUE, PropagatorBase
from repro.bcp.watched import WatchedPropagator
from repro.core.formula import CnfFormula
from repro.core.literals import encode
from repro.proofs.conflict_clause import ConflictClauseProof


@dataclass
class CheckOutcome:
    """Result of BCP-checking one proof clause.

    ``conflict`` is the paper's pass criterion.  ``confl_cid`` is the
    clause id of the conflicting clause for marking purposes; it is None
    when the conflict arose between two assumption literals (a
    tautological proof clause), in which case nothing is responsible.
    """

    conflict: bool
    confl_cid: int | None = None


class ProofChecker:
    """BCP-based checker over ``F ∪ F*`` with a movable clause ceiling."""

    def __init__(self, formula: CnfFormula, proof: ConflictClauseProof,
                 engine_cls: type[PropagatorBase] = WatchedPropagator):
        self.formula = formula
        self.proof = proof
        num_vars = max(formula.num_vars, proof.max_var())
        self.engine = engine_cls(num_vars)
        self.num_input = formula.num_clauses
        # (cid, encoded literal) of every unit clause, in cid order.
        self.units: list[tuple[int, int]] = []
        for clause in formula:
            self._load([encode(lit) for lit in clause.literals])
        for lits in proof:
            self._load([encode(lit) for lit in lits])

    def _load(self, enc_lits: list[int]) -> int:
        cid = self.engine.add_clause(enc_lits, propagate_units=False)
        clause = self.engine.clauses[cid]
        if len(clause) == 1:
            self.units.append((cid, clause[0]))
        return cid

    def cid_of_proof_clause(self, index: int) -> int:
        return self.num_input + index

    def check_clause(self, index: int) -> CheckOutcome:
        """BCP((F ∪ F*_{<index}) | R) — Section 3 of the paper.

        Leaves the engine at the post-propagation state so the caller can
        run conflict analysis for marking; call :meth:`reset` afterwards.
        """
        engine = self.engine
        ceiling = self.num_input + index
        engine.new_level()
        # R: falsify every literal of the checked clause.
        for lit in self.proof[index]:
            enc_neg = encode(lit) ^ 1
            value = engine.value(enc_neg)
            if value == TRUE:
                continue
            if value == FALSE:
                # Tautological clause: R is self-contradictory, the
                # clause is trivially implied; nothing is responsible.
                return CheckOutcome(conflict=True, confl_cid=None)
            engine.enqueue(enc_neg, None)
        # Unit clauses of F and the F*-prefix (they carry no watches).
        for cid, enc in self.units:
            if cid >= ceiling:
                break
            value = engine.value(enc)
            if value == TRUE:
                continue
            if value == FALSE:
                return CheckOutcome(conflict=True, confl_cid=cid)
            engine.enqueue(enc, cid)
        confl = engine.propagate(ceiling)
        if confl is not None:
            return CheckOutcome(conflict=True, confl_cid=confl)
        return CheckOutcome(conflict=False)

    def reset(self) -> None:
        """Undo the last check (the engine keeps nothing at level 0)."""
        self.engine.backtrack(0)
