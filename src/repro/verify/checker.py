"""Shared machinery of the two verification procedures.

The checker loads ``F`` followed by ``F*`` into one BCP engine and then
checks individual proof clauses: to check clause ``C`` at chronological
position ``i``, it falsifies ``C`` (assigns the paper's ``R``) and runs
BCP over ``F ∪ F*_{<i}`` — realized with the engine's clause *ceiling*,
so no clauses are ever re-added or removed between checks.

Two state-management modes are supported:

``rebuild`` (the original, order-agnostic path)
    Decision level 0 is kept empty; each check opens level 1, enqueues
    the assumptions *and* every applicable unit clause, propagates, and
    is undone by a single backtrack.  Every check re-pays the full unit
    pass, but checks are completely independent of order and history.

``incremental`` (the backward-verification fast path)
    The unit closure of ``F ∪ F*_{<ceiling}`` is kept as a *persistent
    root trail* on its own decision level.  While the ceiling moves
    monotonically (down during a backward pass, up during a forward
    one), only the root suffix whose reason cids crossed the ceiling is
    retracted and re-propagated; each check then only asserts ``R`` on a
    fresh level above the root.  With ``retire=True`` (valid for
    monotonically *decreasing* ceilings only) the checker additionally
    calls :meth:`PropagatorBase.retire_above`, letting the engine purge
    dead clauses from its watch/occurrence lists.  This is the
    DRAT-trim/window-shifting observation: backward checking is
    monotone, so root state and watch lists only ever shrink.

Both modes produce the same verdict for every check (BCP conflict
existence is order-invariant); the conflicting clause they report — and
hence the marked sets of ``Proof_verification2`` — may differ when a
check admits several distinct conflicts.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.bcp.engine import FALSE, TRUE, PropagatorBase
from repro.bcp.watched import WatchedPropagator
from repro.core.formula import CnfFormula
from repro.core.literals import encode
from repro.proofs.conflict_clause import ConflictClauseProof

if TYPE_CHECKING:
    from repro.verify.budget import BudgetMeter

CHECKER_MODES = ("rebuild", "incremental")


@dataclass
class CheckOutcome:
    """Result of BCP-checking one proof clause.

    ``conflict`` is the paper's pass criterion.  ``confl_cid`` is the
    clause id of the conflicting clause for marking purposes; it is None
    when the conflict arose between two assumption literals (a
    tautological proof clause), in which case nothing is responsible.
    """

    conflict: bool
    confl_cid: int | None = None


class ProofChecker:
    """BCP-based checker over ``F ∪ F*`` with a movable clause ceiling."""

    def __init__(self, formula: CnfFormula, proof: ConflictClauseProof,
                 engine_cls: type[PropagatorBase] = WatchedPropagator,
                 mode: str = "rebuild", retire: bool = True,
                 meter: "BudgetMeter | None" = None):
        if mode not in CHECKER_MODES:
            raise ValueError(f"unknown checker mode {mode!r}; "
                             f"expected one of {CHECKER_MODES}")
        self.formula = formula
        self.proof = proof
        self.mode = mode
        # Budget enforcement point: with a meter attached, every
        # check_clause() call first verifies the budget and raises
        # BudgetExhausted once it runs out.  The drivers catch it and
        # report the resource_limit_exceeded outcome.
        self.meter = meter
        # Retirement permanently removes clauses above the ceiling from
        # the engine, which is only sound when the ceiling never rises
        # again (a pure backward pass).  Shard workers that may revisit
        # higher ceilings pass retire=False.
        self.retire = retire and mode == "incremental"
        num_vars = max(formula.num_vars, proof.max_var())
        self.engine = engine_cls(num_vars)
        self.num_input = formula.num_clauses
        # (cid, encoded literal) of every unit clause, in cid order.
        self.units: list[tuple[int, int]] = []
        for clause in formula:
            self._load([encode(lit) for lit in clause.literals])
        for lits in proof:
            self._load([encode(lit) for lit in lits])
        self._finish_init()

    @classmethod
    def from_arena(cls, arena, num_input: int, mode: str = "rebuild",
                   retire: bool = True,
                   meter: "BudgetMeter | None" = None,
                   engine_cls=None) -> "ProofChecker":
        """A checker over a pre-built (typically shared-memory-attached)
        clause arena instead of a formula/proof pair.

        The arena must hold ``F`` followed by ``F*`` in load order (see
        :func:`repro.bcp.arena.build_arena`): proof clause ``i`` is
        arena clause ``num_input + i``, so the checker derives its unit
        table and assumption sets straight from the pool — a worker
        process needs nothing but the (picklable) arena handle and
        ``num_input``.  ``formula``/``proof`` are ``None`` on the
        resulting checker; callers that format failure messages from
        proof literals keep their own copy.

        ``engine_cls`` picks which arena-backed engine (a
        :data:`repro.bcp.ENGINES` name or class with
        ``arena_backed=True``; default ``"arena"``) is built over the
        adopted arena — this is how parallel workers run the numpy
        vector kernel against the parent's shared-memory block.
        """
        from repro.bcp import resolve_engine
        from repro.bcp.arena import ArenaPropagator

        if mode not in CHECKER_MODES:
            raise ValueError(f"unknown checker mode {mode!r}; "
                             f"expected one of {CHECKER_MODES}")
        if engine_cls is None:
            engine_cls = ArenaPropagator
        else:
            engine_cls = resolve_engine(engine_cls)
            if not engine_cls.arena_backed:
                raise ValueError(
                    f"{engine_cls.__name__} is not arena-backed and "
                    "cannot adopt a pre-built clause arena")
        self = cls.__new__(cls)
        self.formula = None
        self.proof = None
        self.mode = mode
        self.meter = meter
        self.retire = retire and mode == "incremental"
        self.engine = engine_cls(arena=arena)
        self.num_input = num_input
        starts = arena.starts
        pool = arena.pool
        self.units = [(cid, pool[starts[cid]])
                      for cid in range(arena.num_clauses)
                      if starts[cid + 1] - starts[cid] == 1]
        self._finish_init()
        return self

    def _finish_init(self) -> None:
        self._unit_cids = [cid for cid, _ in self.units]
        # Root-trail maintenance counts (plain ints, always on — the
        # cheap observable form of the rebuild-vs-incremental savings;
        # drivers export them as metrics when instrumentation is
        # attached).  ``root_builds`` counts full root constructions,
        # ``root_lowers``/``root_raises`` incremental ceiling moves,
        # ``root_retracted`` trail assignments undone by lowering.
        self.root_stats: dict[str, int] = {
            "root_builds": 0, "root_lowers": 0, "root_raises": 0,
            "root_retracted": 0}
        # Persistent-root bookkeeping (incremental mode only).
        self._root_ceiling: int | None = None
        self._root_conflict: int | None = None
        # reason cid -> trail position of the root assignment it
        # justifies (each asserted clause justifies at most one literal).
        self._root_reason_pos: dict[int, int] = {}
        self._prop_ceiling: int | None = None

    def _load(self, enc_lits: list[int]) -> int:
        cid = self.engine.add_clause(enc_lits, propagate_units=False)
        if self.engine.clause_len(cid) == 1:
            self.units.append((cid, self.engine.clause_lits(cid)[0]))
        return cid

    def cid_of_proof_clause(self, index: int) -> int:
        return self.num_input + index

    def _assumption_encs(self, index: int):
        """Encoded literals of proof clause ``index`` (the set whose
        negation is the paper's ``R``).  Arena-backed checkers read the
        (deduplicated) body straight from the pool; duplicates in the
        plain path are harmless — a repeated assumption hits the
        already-TRUE branch."""
        if self.proof is not None:
            return [encode(lit) for lit in self.proof[index]]
        return self.engine.clause_lits(self.num_input + index)

    def check_clause(self, index: int) -> CheckOutcome:
        """BCP((F ∪ F*_{<index}) | R) — Section 3 of the paper.

        Leaves the engine at the post-propagation state so the caller can
        run conflict analysis for marking; call :meth:`reset` afterwards.

        Raises :class:`~repro.verify.budget.BudgetExhausted` when the
        attached budget meter has run out (checked *before* the BCP run,
        so a completed check is never retroactively voided).
        """
        if self.meter is not None:
            self.meter.ensure(self.engine.counters)
        if self.mode == "incremental":
            return self._check_incremental(index)
        engine = self.engine
        ceiling = self.num_input + index
        engine.new_level()
        # R: falsify every literal of the checked clause.
        for enc in self._assumption_encs(index):
            enc_neg = enc ^ 1
            value = engine.value(enc_neg)
            if value == TRUE:
                continue
            if value == FALSE:
                # Tautological clause: R is self-contradictory, the
                # clause is trivially implied; nothing is responsible.
                return CheckOutcome(conflict=True, confl_cid=None)
            engine.enqueue(enc_neg, None)
        # Unit clauses of F and the F*-prefix (they carry no watches).
        for cid, enc in self.units:
            if cid >= ceiling:
                break
            value = engine.value(enc)
            if value == TRUE:
                continue
            if value == FALSE:
                return CheckOutcome(conflict=True, confl_cid=cid)
            engine.enqueue(enc, cid)
        confl = engine.propagate(ceiling)
        if confl is not None:
            return CheckOutcome(conflict=True, confl_cid=confl)
        return CheckOutcome(conflict=False)

    def reset(self) -> None:
        """Undo the last check (the persistent root, if any, survives)."""
        if self.mode == "incremental":
            self.engine.backtrack(1)
        else:
            self.engine.backtrack(0)

    # -- incremental mode -------------------------------------------------

    def _check_incremental(self, index: int) -> CheckOutcome:
        ceiling = self.num_input + index
        self._sync_root(ceiling)
        engine = self.engine
        if self._root_conflict is not None:
            # F ∪ F*_{<index} is unit-refutable on its own: every check
            # at this ceiling trivially conflicts.
            return CheckOutcome(conflict=True,
                                confl_cid=self._root_conflict)
        # The root trail is a stable fixpoint for this check; engines
        # with root-derived acceleration structures refresh them here.
        engine.note_root_boundary()
        engine.new_level()
        for enc in self._assumption_encs(index):
            enc_neg = enc ^ 1
            value = engine.value(enc_neg)
            if value == TRUE:
                continue
            if value == FALSE:
                # Falsified either by a sibling assumption (tautological
                # clause — nothing responsible) or by a root assignment,
                # whose reason clause then carries the conflict.
                return CheckOutcome(conflict=True,
                                    confl_cid=engine.reasons[enc_neg >> 1])
            engine.enqueue(enc_neg, None)
        confl = engine.propagate(self._prop_ceiling)
        if confl is not None:
            return CheckOutcome(conflict=True, confl_cid=confl)
        return CheckOutcome(conflict=False)

    def _sync_root(self, ceiling: int) -> None:
        """Bring the persistent root level to the given ceiling."""
        if self._root_ceiling is None:
            self._build_root(ceiling)
        elif ceiling == self._root_ceiling:
            return
        elif self._root_conflict is not None:
            # The old root stopped at a conflict, so its trail is not a
            # usable fixpoint; rebuild from scratch at the new ceiling.
            self._build_root(ceiling)
        elif ceiling < self._root_ceiling:
            self._lower_root(ceiling)
        else:
            self._raise_root(ceiling)
        self._root_ceiling = ceiling

    def _apply_ceiling(self, ceiling: int) -> None:
        if self.retire:
            if ceiling > self.engine.retire_ceiling:
                raise ValueError(
                    "incremental checker with retire=True requires "
                    "monotonically decreasing check ceilings "
                    f"(ceiling {ceiling} is above the retirement floor "
                    f"{self.engine.retire_ceiling}); "
                    "use retire=False for non-monotone orders")
            self.engine.retire_above(ceiling)
            self._prop_ceiling = None
        else:
            self._prop_ceiling = ceiling

    def _record_root_positions(self, start: int) -> None:
        trail = self.engine.trail
        reasons = self.engine.reasons
        positions = self._root_reason_pos
        for pos in range(start, len(trail)):
            positions[reasons[trail[pos] >> 1]] = pos

    def _assert_units(self, lo_cid: int, ceiling: int) -> bool:
        """Enqueue unasserted units with ``lo_cid <= cid < ceiling``.

        Returns False (setting the root conflict) if a unit is already
        falsified by the standing root assignment.
        """
        engine = self.engine
        start = bisect_left(self._unit_cids, lo_cid)
        stop = bisect_left(self._unit_cids, ceiling)
        for cid, enc in self.units[start:stop]:
            value = engine.value(enc)
            if value == TRUE:
                continue
            if value == FALSE:
                self._root_conflict = cid
                return False
            engine.enqueue(enc, cid)
        return True

    def _build_root(self, ceiling: int) -> None:
        self.root_stats["root_builds"] += 1
        engine = self.engine
        engine.backtrack(0)
        self._root_reason_pos.clear()
        self._root_conflict = None
        self._apply_ceiling(ceiling)
        engine.new_level()
        if not self._assert_units(0, ceiling):
            return
        confl = engine.propagate(self._prop_ceiling)
        if confl is not None:
            self._root_conflict = confl
            return
        self._record_root_positions(0)

    def _lower_root(self, ceiling: int) -> None:
        """Move the root down: retract assignments whose reason cid
        crossed the ceiling (plus their trail suffix) and re-close."""
        self.root_stats["root_lowers"] += 1
        old_ceiling = self._root_ceiling
        self._apply_ceiling(ceiling)
        positions = self._root_reason_pos
        cut: int | None = None
        for cid in range(ceiling, old_ceiling):
            pos = positions.get(cid)
            if pos is not None and (cut is None or pos < cut):
                cut = pos
        if cut is None:
            # Every root assignment is still justified below the new
            # ceiling; a fixpoint of the larger clause set over the same
            # trail is a fixpoint of any subset.
            return
        engine = self.engine
        trail = engine.trail
        reasons = engine.reasons
        for pos in range(cut, len(trail)):
            reason = reasons[trail[pos] >> 1]
            if positions.get(reason) == pos:
                del positions[reason]
        self.root_stats["root_retracted"] += len(trail) - cut
        engine.unwind_to(cut)
        # Re-assert the retracted units that survive the new ceiling and
        # re-close from the *start* of the trail: a retracted assignment
        # may still be implied by a clause whose falsified literals all
        # sit below the cut (derived literals land after every batched
        # unit, so trail position does not bound derivation depth), and
        # only a full rescan of the surviving prefix re-fires it.
        if not self._assert_units(0, ceiling):
            return
        engine.qhead = 0
        confl = engine.propagate(self._prop_ceiling)
        if confl is not None:
            self._root_conflict = confl
            return
        self._record_root_positions(cut)

    def _raise_root(self, ceiling: int) -> None:
        """Move the root up (forward pass): assert the newly admitted
        units and extend the closure.  Requires retire=False."""
        self.root_stats["root_raises"] += 1
        old_ceiling = self._root_ceiling
        start = len(self.engine.trail)
        self._apply_ceiling(ceiling)
        if not self._assert_units(old_ceiling, ceiling):
            return
        # Newly admitted clauses may already be unit under the standing
        # root assignment without any fresh enqueue to trigger them;
        # rescan the whole trail so their (previously ceiling-skipped)
        # watch entries are finally inspected.
        self.engine.qhead = 0
        confl = self.engine.propagate(self._prop_ceiling)
        if confl is not None:
            self._root_conflict = confl
            return
        self._record_root_positions(start)
