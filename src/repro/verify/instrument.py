"""The shared instrumented report builder.

Before this module, every verification driver hand-rolled its reports:
a dozen call sites each remembered to compute
``verification_time=time.perf_counter() - start`` and to copy the
``mode``/``jobs``/``warnings`` boilerplate — a drift bug waiting to
happen (and one that did happen: early versions disagreed on whether
setup time counted).  :class:`ReportBuilder` is now the single
construction point:

* it owns the run clock, so every report's ``verification_time`` is
  measured identically (setup included);
* it owns the common fields (``procedure``, ``mode``, ``jobs``,
  ``warnings``), so a driver states them once;
* it accumulates the :class:`~repro.verify.report.VerificationStats`
  breakdown (phase times always — that is a handful of clock reads per
  run; per-check timing, histograms, and slowest-K only when an
  :class:`~repro.obs.context.Obs` is attached);
* it feeds the metrics registry and tracer, keeping the drivers' loops
  free of exporter knowledge.

The builder is generic over the report dataclass so the forward DRUP
checker's :class:`~repro.verify.forward.ForwardCheckReport` shares it
with :class:`~repro.verify.report.VerificationReport`.
"""

from __future__ import annotations

import heapq
import time
from contextlib import contextmanager

from repro.verify.report import VerificationStats

# How many slowest checks a stats breakdown names.
SLOWEST_K = 5


class ReportBuilder:
    """Single construction point for verification reports.

    ``report_cls`` is the dataclass to build; ``common`` fields are
    merged into every :meth:`build` call (per-call fields win).  When
    ``obs`` is given, the builder also maintains per-check metrics and
    a progress heartbeat; when it is ``None`` the per-check surface is
    a single ``is None`` branch.
    """

    def __init__(self, report_cls, *, obs=None, total_checks: int = 0,
                 progress_label: str = "checks", **common):
        self._report_cls = report_cls
        self._common = dict(common)
        self.obs = obs
        self._start = time.perf_counter()
        self._phase_times: dict[str, float] = {}
        self._checks = 0
        # Min-heap of (seconds, -index): the root is the fastest of the
        # current slowest-K, evicted when something slower arrives.
        self._slowest: list[tuple[float, int]] = []
        self.progress = (obs.progress_reporter(total_checks,
                                               progress_label)
                         if obs is not None else None)

    # -- phases ------------------------------------------------------------

    @contextmanager
    def phase(self, name: str, **attrs):
        """Time a coarse phase (setup, checks, pool...).

        Cheap enough to run unconditionally: two clock reads per phase,
        a handful of phases per run.  Emits a trace span when tracing
        is on.
        """
        start = time.perf_counter()
        if self.obs is not None:
            with self.obs.span(name, **attrs):
                try:
                    yield
                finally:
                    self._phase_times[name] = self._phase_times.get(
                        name, 0.0) + time.perf_counter() - start
        else:
            try:
                yield
            finally:
                self._phase_times[name] = self._phase_times.get(
                    name, 0.0) + time.perf_counter() - start

    def add_phase_time(self, name: str, seconds: float) -> None:
        """Fold externally measured phase time in (worker shards)."""
        self._phase_times[name] = self._phase_times.get(name, 0.0) \
            + seconds

    # -- per-check instrumentation ----------------------------------------

    @contextmanager
    def check(self, index: int, counters=None):
        """Instrument one proof-clause check (obs-enabled path only).

        Wraps the check in a ``check`` trace span, observes wall time
        and propagation work into histograms, maintains the slowest-K
        heap, and ticks the progress heartbeat.  Drivers call this only
        when ``obs`` is attached; the disabled path calls the checker
        directly.
        """
        obs = self.obs
        work_before = counters.total_work() if counters is not None else 0
        start = time.perf_counter()
        with obs.span("check", index=index):
            try:
                yield
            finally:
                seconds = time.perf_counter() - start
                self.observe_check(index, seconds)
                if counters is not None:
                    obs.observe_work(
                        "repro_check_work",
                        counters.total_work() - work_before,
                        help="Propagation work units per check")
                if self.progress is not None:
                    self.progress.update(self._checks)

    def observe_check(self, index: int, seconds: float) -> None:
        """Record one check's wall time (also used for worker merges)."""
        self._checks += 1
        if self.obs is not None:
            self.obs.observe_seconds(
                "repro_check_seconds", seconds,
                help="Wall time per proof-clause check")
        entry = (seconds, -index)
        if len(self._slowest) < SLOWEST_K:
            heapq.heappush(self._slowest, entry)
        elif entry > self._slowest[0]:
            heapq.heapreplace(self._slowest, entry)

    def merge_slowest(self, slowest) -> None:
        """Fold a worker's ``(seconds, index)`` slowest list in."""
        for seconds, index in slowest:
            entry = (seconds, -index)
            if len(self._slowest) < SLOWEST_K:
                heapq.heappush(self._slowest, entry)
            elif entry > self._slowest[0]:
                heapq.heapreplace(self._slowest, entry)

    def count_checks(self, amount: int) -> None:
        """Count checks whose individual timing was not observed
        (disabled path, or parallel totals)."""
        self._checks += amount

    @property
    def checks_observed(self) -> int:
        return self._checks

    # -- finishing ---------------------------------------------------------

    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    def stats(self, counters: dict[str, int] | None = None,
              ) -> VerificationStats:
        props = 0
        if counters is not None:
            props = counters.get("assignments", 0) \
                + counters.get("clause_visits", 0)
        slowest = tuple(
            (-neg_index, seconds)
            for seconds, neg_index in sorted(self._slowest,
                                             reverse=True))
        return VerificationStats(
            total_time=self.elapsed(),
            phase_times=dict(self._phase_times),
            props=props, checks=self._checks,
            slowest_checks=slowest)

    def build(self, outcome: str, *, bcp_counters: dict | None = None,
              **fields):
        """Construct the report: common fields + per-call fields +
        the measured ``verification_time`` and ``stats``."""
        if self.obs is not None and bcp_counters is not None:
            self.obs.record_bcp_counters(bcp_counters)
        merged = {**self._common, **fields}
        if bcp_counters is not None \
                and "bcp_counters" in self._report_cls.__dataclass_fields__:
            merged.setdefault("bcp_counters", bcp_counters)
        # Checks that ran without per-check timing (the disabled fast
        # path, or pool workers whose observations were not merged)
        # still count toward the stats breakdown.
        num_checked = merged.get("num_checked",
                                 merged.get("num_additions"))
        if isinstance(num_checked, int) and num_checked > self._checks:
            self._checks = num_checked
        # Finish the heartbeat only after the reconciliation above, so
        # a pool run's final line reports the real check count.
        if self.progress is not None:
            self.progress.finish(self._checks)
            self.progress = None
        if self.obs is not None:
            self.obs.counter_add("repro_verify_checks_total",
                                 self._checks,
                                 help="Proof-clause checks executed")
        merged["stats"] = self.stats(bcp_counters)
        return self._report_cls(
            outcome=outcome,
            verification_time=self.elapsed(),
            **merged)
