"""The verifier-side Conflict_analysis procedure (paper Section 4).

After BCP finds a conflict while checking a proof clause, walk the
implication graph backwards from the conflicting clause and mark every
clause of ``F`` and ``F*`` that is responsible for the conflict.  Literals
assigned by the assumptions ``R`` (the falsified literals of the checked
clause) terminate the walk — per the paper: "If a literal p ∈ S is in the
clause C whose deduction is tested for correctness, then nothing
happens."
"""

from __future__ import annotations

from repro.bcp.engine import PropagatorBase


def collect_responsible(engine: PropagatorBase,
                        confl_cid: int) -> set[int]:
    """The set of clause ids responsible for the current conflict.

    ``confl_cid`` is the clause BCP falsified (or the violated unit
    clause).  The recursion of the paper is realized with an explicit
    stack; variables are visited at most once.  The walk is read-only —
    it inspects the engine's post-propagation reasons without touching
    its state — which is what lets the provenance recorder reuse it per
    check without perturbing verification.
    """
    clause_lits = engine.clause_lits
    reasons = engine.reasons
    responsible: set[int] = {confl_cid}
    stack = list(clause_lits(confl_cid))
    seen_vars: set[int] = set()
    while stack:
        enc = stack.pop()
        var = enc >> 1
        if var in seen_vars:
            continue
        seen_vars.add(var)
        reason_cid = reasons[var]
        if reason_cid is None:
            # Assumption literal — part of R, not deduced from a clause.
            continue
        # The clause may already carry a mark from an earlier check; the
        # walk must still pass through it to reach this conflict's full
        # support (seen_vars bounds the traversal).
        responsible.add(reason_cid)
        stack.extend(clause_lits(reason_cid))
    return responsible


def mark_responsible(engine: PropagatorBase, confl_cid: int,
                     marked: set[int]) -> None:
    """Add to ``marked`` every clause id responsible for the conflict."""
    marked.update(collect_responsible(engine, confl_cid))
