"""Proof-shape cost-model shard planning for parallel verification.

:func:`repro.verify.parallel.make_shards` splits the proof indices into
equal-*count* contiguous shards, but the checks are nowhere near
equal-cost: check ``i`` runs BCP over ``F`` plus the first ``i`` proof
clauses, so high-index checks propagate over a strictly larger live set
(longer watch rows, more traffic), and wide proof clauses assume more
literals per check.  On backward passes the equal-count split therefore
systematically hands the last shard the most work — the timeline
tooling (PR 8) measures exactly this as shard skew, with the slowest
shard dominating wall-clock.

This module plans shards by *predicted cost* instead:

* :func:`predict_costs` — cheap static proxies, pure Python (the
  planner must work on the no-numpy install): per-check cost scales
  with the live clause count at the check's ceiling (proof position)
  times an assumption-width factor, plus a root-replay term in rebuild
  mode (every rebuild check re-asserts the unit prefix).  The width
  factor doubles as a resolution-trace-length proxy: a wide conflict
  clause assumes more literals, opening a larger propagation frontier.
* :func:`load_calibration` — optionally replaces the analytic position
  curve with an *empirical* one recovered from ``.repro/history.jsonl``:
  a previous parallel run's attribution section records measured
  propagation work per shard span (PR 4/PR 8), which is a
  piecewise-constant sample of the true cost-vs-index curve.
* :func:`plan_shards` — partitions the index range into contiguous
  shards of (approximately) equal *predicted* cost, clamped so every
  shard carries at least :data:`MIN_CHECKS_PER_SHARD` checks, and
  orders dispatch largest-predicted-first (LPT) so the pool never
  starts a long shard last.  Shards stay contiguous ``(lo, hi)``
  ranges: the fault-tolerant backend's first-failure reduction, retry
  keying and the incremental checker's root-trail amortization all
  rely on contiguity, and a contiguous equal-cost partition already
  removes the systematic skew (the residual within-shard variance is
  what the 4x over-sharding absorbs).
* :func:`plan_verification2` — the marked-clause-first variant: when a
  marked set is known ahead of time (a previous run's marking, a
  trimmed proof's kept set), the replay sweep should check marked
  clauses first — they are the ones that extend the marking — and
  only then the speculative remainder.  The plan orders indices
  marked-first (descending within each group, matching the marking
  pass's scan direction) and shards that ordering by predicted cost.

``REPRO_SHARD_PLANNER`` selects the planner globally: ``cost`` (the
default) or ``contiguous`` (the legacy equal-count split, kept as an
escape hatch and as the degenerate-input fallback).  Every plan is a
pure function of its inputs — the same formula, proof, jobs and
calibration always produce the same plan, regardless of worker count
at execution time (plan determinism is what makes the ``--jobs 1`` vs
``--jobs 4`` artifact-identity guarantee extend to planned runs).

The executed plan is announced with a ``shard_plan`` obs event
(planner, source, shard count, predicted skew) so ``repro obs
timeline`` can attribute skew reduction to the planner; see
``docs/observability.md``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

#: Minimum checks a shard should carry: below this the per-shard
#: overhead (span bookkeeping, IPC, result pickling) outweighs the
#: balancing benefit of more shards.  `make_shards` and the planner
#: share this clamp.
MIN_CHECKS_PER_SHARD = 16

#: Over-sharding factor: shards per worker, so the pool can rebalance
#: residual prediction error dynamically.
SHARDS_PER_JOB = 4

PLANNERS = ("cost", "contiguous")

#: Relative weight of the rebuild-mode root-replay term: every rebuild
#: check re-asserts the unit prefix before assuming, which adds a
#: near-constant cost floor per check and flattens the position curve.
_REBUILD_REPLAY_WEIGHT = 0.5


def planner_choice(planner: str | None = None) -> str:
    """The effective planner name: explicit argument, then the
    ``REPRO_SHARD_PLANNER`` environment override, then ``cost``."""
    if planner is None:
        planner = os.environ.get("REPRO_SHARD_PLANNER") or "cost"
        planner = planner.strip() or "cost"
    if planner not in PLANNERS:
        raise ValueError(f"unknown shard planner {planner!r}; "
                         f"expected one of {PLANNERS}")
    return planner


def shard_count(num_indices: int, jobs: int,
                min_checks: int = MIN_CHECKS_PER_SHARD) -> int:
    """How many shards to cut ``num_indices`` checks into.

    Over-shards by :data:`SHARDS_PER_JOB` for dynamic balancing but
    never cuts shards smaller than ``min_checks`` (tiny shards pay
    per-shard span/IPC overhead for no balancing gain — the old
    unclamped split gave 16 shards to a 20-check proof).  The clamp
    trims the over-sharding only: the count never drops below one
    shard per worker while there are enough checks to go around, so
    a small proof still spreads across the pool instead of idling
    every worker but one.
    """
    if num_indices <= 0:
        return 0
    jobs = max(1, jobs)
    return max(1, min(num_indices,
                      jobs * SHARDS_PER_JOB,
                      max(jobs, num_indices // min_checks)))


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic sharding of a check-index range.

    ``shards`` are contiguous ``(lo, hi)`` bounds partitioning
    ``range(n)``; ``predicted`` the planner's cost estimate per shard
    (same order); ``dispatch`` the submission order as indices into
    ``shards`` (largest predicted cost first).  ``indices`` is None
    for an identity plan over ``range(n)``; a verification2 replay
    plan stores the reordered check indices there, and shard bounds
    then address *positions* in that sequence.
    """

    shards: tuple[tuple[int, int], ...]
    predicted: tuple[float, ...]
    dispatch: tuple[int, ...]
    planner: str
    source: str
    indices: tuple[int, ...] | None = None

    def predicted_skew(self) -> float:
        """Max/mean predicted shard cost — 1.0 is perfectly balanced
        (the same ratio the timeline computes from measured walls)."""
        if not self.predicted:
            return 1.0
        mean = sum(self.predicted) / len(self.predicted)
        return max(self.predicted) / mean if mean > 0 else 1.0

    def dispatch_shards(self) -> list[tuple[int, int]]:
        """The shard bounds in dispatch (LPT) order."""
        return [self.shards[i] for i in self.dispatch]

    def as_event(self) -> dict:
        """Compact attrs for the ``shard_plan`` obs event."""
        return {
            "planner": self.planner,
            "source": self.source,
            "shards": len(self.shards),
            "predicted_skew": round(self.predicted_skew(), 4),
            "first_dispatched": (list(self.shards[self.dispatch[0]])
                                 if self.dispatch else None),
        }


@dataclass(frozen=True)
class Calibration:
    """An empirical cost-vs-index curve from a past run's attribution.

    ``spans`` are ``(lo, hi, cost_per_check)`` rows recovered from the
    per-shard measured propagation work of a history fingerprint;
    ``run_id`` names the fingerprint for the plan's ``source`` field.
    """

    spans: tuple[tuple[int, int, float], ...]
    run_id: str

    def density(self, index: int) -> float | None:
        """Measured cost per check at ``index``; None outside every
        recorded span (the caller falls back to the static proxy)."""
        for lo, hi, per_check in self.spans:
            if lo <= index < hi:
                return per_check
        return None


def load_calibration(instance: str | None,
                     mode: str | None = None,
                     directory: str | None = None) -> Calibration | None:
    """The newest usable attribution record for ``instance`` from the
    run-history store, or None.

    A usable record is a parallel-run fingerprint whose attribution
    section carries per-shard ``(lo, hi, props)`` rows for the same
    instance (basename match) and — when given — the same checker
    mode.  Absent store, no match, or malformed rows all return None:
    calibration is strictly best-effort and the static proxies remain
    the planner's floor.
    """
    if not instance:
        return None
    from repro.obs.insight.history import HistoryStore

    try:
        records = HistoryStore(directory).read()
    except OSError:
        return None
    want = os.path.basename(instance)
    for record in reversed(records):
        if os.path.basename(record.get("instance") or "") != want:
            continue
        if mode is not None and record.get("mode") not in (None, mode):
            continue
        attribution = record.get("attribution")
        if not isinstance(attribution, dict):
            continue
        spans = []
        for row in attribution.get("shards") or []:
            if not isinstance(row, dict):
                continue
            lo, hi = row.get("lo"), row.get("hi")
            props = row.get("props")
            if isinstance(lo, int) and isinstance(hi, int) \
                    and hi > lo and isinstance(props, (int, float)) \
                    and props >= 0:
                spans.append((lo, hi, props / (hi - lo)))
        if spans:
            return Calibration(tuple(sorted(spans)),
                               str(record.get("id")))
    return None


def predict_costs(num_input: int, widths: Sequence[int],
                  mode: str = "incremental",
                  calibration: Calibration | None = None) -> list[float]:
    """Predicted relative cost of each proof check (index order).

    Static proxies only — O(n), pure Python: check ``i`` propagates
    over ``num_input + i`` live clauses (the position term) with a
    frontier scaled by its assumption width (``widths[i]``, the proof
    clause's literal count, doubling as the resolution-trace-length
    proxy).  Rebuild mode adds the near-constant unit-replay term,
    which flattens relative differences.  A ``calibration`` replaces
    the analytic position term with the measured per-check work of a
    previous run wherever its spans cover the index.
    """
    n = len(widths)
    if n == 0:
        return []
    avg_width = max(1.0, sum(widths) / n)
    costs = []
    for i in range(n):
        base = calibration.density(i) if calibration is not None else None
        if base is None:
            base = float(num_input + i + 1)
            if mode == "rebuild":
                base += _REBUILD_REPLAY_WEIGHT * (num_input + 1)
        costs.append(base * (0.5 + 0.5 * widths[i] / avg_width))
    return costs


def plan_shards(costs: Sequence[float], jobs: int,
                planner: str | None = None,
                min_checks: int = MIN_CHECKS_PER_SHARD,
                source: str = "static",
                indices: Sequence[int] | None = None) -> ShardPlan:
    """Partition ``range(len(costs))`` into contiguous shards of equal
    predicted cost (``cost`` planner) or equal count (``contiguous``).

    Deterministic: a pure function of ``(costs, jobs, planner,
    min_checks)``.  Degenerate inputs (empty, single shard, or
    non-finite/non-positive total cost) fall back to the contiguous
    split, recorded in the plan's ``source``.
    """
    planner = planner_choice(planner)
    n = len(costs)
    num_shards = shard_count(n, jobs, min_checks)
    if num_shards <= 0:
        return ShardPlan((), (), (), planner, "empty",
                         tuple(indices) if indices is not None else None)
    total = float(sum(costs))
    if planner == "cost" and (num_shards == 1 or total <= 0
                              or total != total or total == float("inf")):
        planner_used, source = "contiguous", "degenerate"
    else:
        planner_used = planner
    if planner_used == "contiguous":
        bounds = [round(k * n / num_shards)
                  for k in range(num_shards + 1)]
    else:
        # Equal-cost walk: cut where the cost prefix crosses each
        # k/num_shards quantile.  A cut must leave at least
        # min_checks behind it and min_checks per shard still to
        # come — feasible by construction, since shard_count() caps
        # num_shards at n // min_checks.
        min_keep = min(min_checks, max(1, n // num_shards))
        bounds = [0]
        acc = 0.0
        target = total / num_shards
        for i in range(n):
            acc += costs[i]
            cuts_left = num_shards - len(bounds)
            if cuts_left <= 0:
                break
            if acc >= target * len(bounds) \
                    and i + 1 - bounds[-1] >= min_keep \
                    and n - (i + 1) >= cuts_left * min_keep:
                bounds.append(i + 1)
        bounds.append(n)
    shards = tuple((bounds[k], bounds[k + 1])
                   for k in range(len(bounds) - 1)
                   if bounds[k] < bounds[k + 1])
    predicted = tuple(float(sum(costs[lo:hi])) for lo, hi in shards)
    dispatch = tuple(sorted(range(len(shards)),
                            key=lambda k: (-predicted[k], k)))
    return ShardPlan(shards, predicted, dispatch, planner_used, source,
                     tuple(indices) if indices is not None else None)


def plan_verification1(num_input: int, widths: Sequence[int],
                       jobs: int, mode: str = "incremental",
                       order: str = "backward",
                       instance: str | None = None,
                       history_dir: str | None = None,
                       planner: str | None = None) -> ShardPlan:
    """The verification1 plan: every index, contiguous shards.

    ``instance`` (when given) keys the best-effort calibration lookup;
    ``order`` is accepted for symmetry — the partition is identical
    either way, only the in-shard scan direction differs, which the
    backend owns.
    """
    planner = planner_choice(planner)
    calibration = None
    if planner == "cost":
        calibration = load_calibration(instance, mode, history_dir)
    costs = predict_costs(num_input, widths, mode, calibration)
    source = (f"calibrated:{calibration.run_id}"
              if calibration is not None else "static")
    return plan_shards(costs, jobs, planner=planner, source=source)


def marked_first_order(num_indices: int,
                       marked: Sequence[int]) -> list[int]:
    """Check order for a replay sweep with a known marked set: marked
    indices first, then the rest, each group descending (the marking
    pass's own direction, so marking extensions are met before the
    speculative tail runs)."""
    marked_set = {i for i in marked if 0 <= i < num_indices}
    front = sorted(marked_set, reverse=True)
    back = [i for i in range(num_indices - 1, -1, -1)
            if i not in marked_set]
    return front + back


def plan_verification2(num_input: int, widths: Sequence[int],
                       marked: Sequence[int], jobs: int,
                       mode: str = "incremental",
                       planner: str | None = None) -> ShardPlan:
    """The verification2 replay plan: marked-clause-first ordering,
    sharded by predicted cost over that ordering.

    The plan's ``indices`` carries the reordered check sequence and
    its shard bounds address positions in it — shard ``(lo, hi)``
    covers ``plan.indices[lo:hi]``.  Used when a marked set is known
    ahead of time (a prior run's marking, a trimmed proof's kept set)
    and the replay should establish the core before spending workers
    on the speculative remainder.
    """
    ordered = marked_first_order(len(widths), marked)
    costs = predict_costs(num_input, widths, mode)
    return plan_shards([costs[i] for i in ordered], jobs,
                       planner=planner, source="marked-first",
                       indices=ordered)
