"""repro — conflict clause proofs of unsatisfiability.

A full reproduction of E. Goldberg & Y. Novikov, *"Verification of Proofs
of Unsatisfiability for CNF Formulas"* (DATE 2003): a proof-logging CDCL
SAT solver, the conflict-clause proof format, the two BCP-based
verification procedures with unsatisfiable-core extraction, the
resolution-graph baseline, and the verification-domain benchmark
generators the paper evaluates on.

Quickstart::

    from repro import CnfFormula, solve, ConflictClauseProof, verify_proof

    formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
    result = solve(formula)                       # status == "UNSAT"
    proof = ConflictClauseProof.from_log(result.log)
    report = verify_proof(formula, proof)         # Proof_verification2
    assert report.ok
    core = report.core                            # unsat core, for free
"""

from repro.core import (
    Clause,
    CnfFormula,
    DimacsParseError,
    ProofFormatError,
    ReproError,
    ResolutionError,
    format_dimacs,
    parse_dimacs,
    read_dimacs,
    write_dimacs,
)
from repro.preprocess import (
    PreprocessResult,
    lift_model,
    lift_proof,
    preprocess,
    solve_with_preprocessing,
)
from repro.proofs import (
    ConflictClauseProof,
    ProofLog,
    ProofSizeComparison,
    ProofStatistics,
    ResolutionGraphProof,
    analyze_log,
    compare_proof_sizes,
    read_proof,
    write_proof,
)
from repro.solver import (
    CdclSolver,
    SolveResult,
    SolverOptions,
    dpll_solve,
    solve,
)
from repro.verify import (
    ReconstructionResult,
    TrimResult,
    UnsatCore,
    VerificationReport,
    extract_core,
    reconstruct_resolution_graph,
    trim_proof,
    validate_core,
    verify_proof,
    verify_proof_v1,
    verify_proof_v2,
)

__version__ = "1.0.0"

__all__ = [
    "Clause",
    "CnfFormula",
    "parse_dimacs",
    "read_dimacs",
    "format_dimacs",
    "write_dimacs",
    "solve",
    "CdclSolver",
    "SolverOptions",
    "SolveResult",
    "dpll_solve",
    "ProofLog",
    "ConflictClauseProof",
    "ResolutionGraphProof",
    "ProofSizeComparison",
    "compare_proof_sizes",
    "read_proof",
    "write_proof",
    "verify_proof",
    "verify_proof_v1",
    "verify_proof_v2",
    "extract_core",
    "validate_core",
    "VerificationReport",
    "UnsatCore",
    "trim_proof",
    "TrimResult",
    "reconstruct_resolution_graph",
    "ReconstructionResult",
    "preprocess",
    "PreprocessResult",
    "lift_proof",
    "lift_model",
    "solve_with_preprocessing",
    "ProofStatistics",
    "analyze_log",
    "ReproError",
    "DimacsParseError",
    "ResolutionError",
    "ProofFormatError",
    "__version__",
]
