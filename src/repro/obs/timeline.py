"""Timeline reconstruction: from a span log to a global run timeline.

:func:`build_timeline` consumes the events of a ``repro.obs.trace/v1``
JSONL file (parent spans plus replayed worker spans, already on one
time axis — see :mod:`repro.obs.spans`) and produces a single
``repro.obs.timeline/v1`` document answering the operational
questions the raw log can't:

* **lanes** — every span is assigned to a worker lane (``main`` for
  the parent process, ``worker-<pid>`` for pool workers) so the run
  renders as a Gantt chart;
* **utilization / idle gaps** — per-worker busy time vs the worker
  window, with the explicit gap intervals;
* **shard skew** — max/mean/min shard wall time and the skew ratio
  the ROADMAP's cost-model scheduler needs to beat;
* **critical path** — the chain of spans that actually bounds
  wall-clock, computed by the classic trace-analysis walk: start at
  the span that ends last, recurse into the child that ends last
  before the cursor, move the cursor to that child's begin, repeat;
* **attribution** — per-shard wall/checks/props/clause-visits rows
  (plus per-shard ``peak_rss`` when workers reported it) and the top
  stragglers, the section ``obs history`` persists so
  ``obs compare``/``check-regression`` can gate on utilization;
* **memory** — every ``mem_sample`` instant event the
  heartbeat-riding :class:`repro.obs.mem.MemSampler` stamped into the
  trace, folded with per-shard peaks into a run-wide ``peak_rss``,
  rendered as a sparkline lane (text) and a bar lane (HTML).

Retried shards are deduplicated here as well as at absorb time
(:class:`repro.verify.parallel._ObsSink`): among shard spans covering
the same ``[lo, hi)`` bounds only the latest attempt survives, and
anything dropped is counted in the document's ``dropped`` section so
tests can assert the merged timeline is duplicate- and orphan-free.

All of this runs at read/merge time over a finished trace — nothing
here executes in a verification hot loop.
"""

from __future__ import annotations

import html as _html
import json

from repro.obs.export import atomic_write_text
from repro.obs.live import format_bytes

TIMELINE_SCHEMA = "repro.obs.timeline/v1"

#: Default number of straggler rows kept in the attribution section.
TOP_STRAGGLERS = 5


# ---------------------------------------------------------------------------
# Span assembly


def _span_key(name: str, attrs: dict, seen: dict) -> str:
    """A stable identity for a span, independent of numeric span ids.

    Shard spans are keyed by their clause-index bounds, check spans by
    the check index; anything else by name plus an occurrence counter.
    Stable keys are what make the critical path comparable across
    repeated runs at a fixed shard layout.
    """
    if "lo" in attrs and "hi" in attrs:
        return f"{name}[{attrs['lo']}:{attrs['hi']}]"
    if "index" in attrs:
        return f"{name}#{attrs['index']}"
    # Replay folds a shard=[lo, hi] attr into every worker event, so
    # only use it for spans with no more specific identity.
    shard = attrs.get("shard")
    if isinstance(shard, (list, tuple)) and len(shard) == 2:
        return f"{name}[{shard[0]}:{shard[1]}]"
    count = seen.get(name, 0)
    seen[name] = count + 1
    return name if count == 0 else f"{name}@{count}"


def _assemble_spans(events: list[dict]) -> tuple[list[dict], int, str,
                                                 str]:
    """Pair begin/end events into span dicts.

    Returns ``(spans, open_count, run_id, trace_id)`` where
    ``open_count`` is the number of begins that never ended (an
    in-flight or torn trace).
    """
    run_id = ""
    trace_id = ""
    open_spans: dict[int, dict] = {}
    spans: list[dict] = []
    seen_names: dict[str, int] = {}
    for event in events:
        kind = event.get("type")
        if kind == "header":
            run_id = event.get("run", run_id)
            trace_id = event.get("trace", trace_id) or trace_id
            continue
        if not run_id:
            run_id = event.get("run", "")
        if not trace_id:
            trace_id = event.get("trace", "") or ""
        span_id = event.get("span")
        if kind == "begin":
            open_spans[span_id] = {
                "id": span_id, "name": event.get("name", ""),
                "parent": event.get("parent"),
                "begin": event["ts"], "end": None, "dur": None,
                "attrs": dict(event.get("attrs", {})),
                "events": []}
        elif kind == "end":
            span = open_spans.pop(span_id, None)
            if span is None:
                # An end without a begin: synthesize a zero-length
                # span rather than losing the data.
                span = {"id": span_id, "name": event.get("name", ""),
                        "parent": event.get("parent"),
                        "begin": event["ts"], "attrs": {},
                        "events": []}
            span["end"] = event["ts"]
            span["dur"] = event.get("dur",
                                    event["ts"] - span["begin"])
            span["attrs"].update(event.get("attrs", {}))
            spans.append(span)
        elif kind == "event":
            holder = open_spans.get(span_id)
            record = {"ts": event["ts"],
                      "name": event.get("name", ""),
                      "attrs": dict(event.get("attrs", {}))}
            if holder is not None:
                holder["events"].append(record)
    # Close still-open spans at their begin time so a live tail still
    # renders; callers can tell from open_count.
    open_count = len(open_spans)
    for span in open_spans.values():
        span["end"] = span["begin"]
        span["dur"] = 0.0
        spans.append(span)
    spans.sort(key=lambda s: (s["begin"], s["id"]))
    for span in spans:
        span["key"] = _span_key(span["name"], span["attrs"],
                                seen_names)
    return spans, open_count, run_id, trace_id


def _dedupe_retries(spans: list[dict]) -> tuple[list[dict], int]:
    """Keep only the winning attempt of each retried shard.

    Shard spans covering identical ``[lo, hi)`` bounds are duplicates
    from a retried/degraded shard; the latest ``(attempt, end)`` wins
    and the losers — with their entire subtrees — are dropped.
    """
    by_bounds: dict[tuple, list[dict]] = {}
    for span in spans:
        if span["name"] != "shard":
            continue
        attrs = span["attrs"]
        lo, hi = attrs.get("lo"), attrs.get("hi")
        if lo is None or hi is None:
            shard = attrs.get("shard") or (None, None)
            lo, hi = shard[0], shard[1]
        if lo is None:
            continue
        by_bounds.setdefault((lo, hi), []).append(span)
    doomed: set[int] = set()
    for group in by_bounds.values():
        if len(group) <= 1:
            continue
        group.sort(key=lambda s: (s["attrs"].get("attempt", 0),
                                  s["end"], s["id"]))
        for loser in group[:-1]:
            doomed.add(loser["id"])
    if not doomed:
        return spans, 0
    # Drop descendants of doomed spans too.
    dropped = 0
    while True:
        grew = False
        for span in spans:
            if (span["id"] not in doomed
                    and span["parent"] in doomed):
                doomed.add(span["id"])
                grew = True
        if not grew:
            break
    kept = []
    for span in spans:
        if span["id"] in doomed:
            dropped += 1
        else:
            kept.append(span)
    return kept, dropped


def _assign_lanes(spans: list[dict]) -> tuple[list[dict], int]:
    """Attach a ``worker`` lane to every span.

    A span with a ``pid`` attr (a worker-side root, e.g. ``shard``)
    anchors the lane ``worker-<pid>``; descendants inherit it; spans
    outside any worker subtree belong to ``main``.  Spans whose parent
    id is unknown are counted as orphans and re-parented to the root.
    """
    by_id = {span["id"]: span for span in spans}
    orphans = 0
    for span in spans:
        parent = span["parent"]
        if parent is not None and parent not in by_id:
            span["parent"] = None
            orphans += 1

    def lane_of(span: dict) -> str:
        if "worker" in span:
            return span["worker"]
        if "pid" in span["attrs"]:
            lane = f"worker-{span['attrs']['pid']}"
        elif span["parent"] is not None:
            lane = lane_of(by_id[span["parent"]])
        else:
            lane = "main"
        span["worker"] = lane
        return lane

    for span in spans:
        lane_of(span)
    return spans, orphans


# ---------------------------------------------------------------------------
# Metrics over the assembled spans


def _merge_intervals(intervals: list[tuple]) -> list[tuple]:
    merged: list[list] = []
    for begin, end in sorted(intervals):
        if merged and begin <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([begin, end])
    return [(b, e) for b, e in merged]


def _worker_stats(spans: list[dict]) -> tuple[list[dict], float]:
    """Per-lane busy/idle/utilization rows plus overall utilization.

    Busy time is the union of each lane's *lane-root* span intervals
    (spans whose parent lives in a different lane, or nowhere), so
    nested check spans don't double-count.  Utilization is measured
    against the worker window — first worker begin to last worker end
    — which isolates pool efficiency from setup/teardown; for the
    ``main`` lane it is measured against the whole trace window.
    """
    by_id = {span["id"]: span for span in spans}
    lanes: dict[str, list[dict]] = {}
    for span in spans:
        parent = by_id.get(span["parent"])
        if parent is None or parent["worker"] != span["worker"]:
            lanes.setdefault(span["worker"], []).append(span)
    worker_lanes = {name: roots for name, roots in lanes.items()
                    if name != "main"}
    if worker_lanes:
        window_begin = min(root["begin"]
                           for roots in worker_lanes.values()
                           for root in roots)
        window_end = max(root["end"]
                         for roots in worker_lanes.values()
                         for root in roots)
    else:
        window_begin = window_end = 0.0
    rows = []
    utilizations = []
    for name in sorted(lanes):
        roots = lanes[name]
        busy_iv = _merge_intervals(
            [(r["begin"], r["end"]) for r in roots])
        busy = sum(e - b for b, e in busy_iv)
        if name == "main":
            lo = min(r["begin"] for r in roots)
            hi = max(r["end"] for r in roots)
        else:
            lo, hi = window_begin, window_end
        wall = hi - lo
        gaps = []
        cursor = lo
        for begin, end in busy_iv:
            if begin - cursor > 1e-9:
                gaps.append({"begin": cursor, "end": begin,
                             "dur": begin - cursor})
            cursor = max(cursor, end)
        if hi - cursor > 1e-9:
            gaps.append({"begin": cursor, "end": hi,
                         "dur": hi - cursor})
        utilization = busy / wall if wall > 0 else 1.0
        rows.append({
            "worker": name, "spans": len(roots), "busy": busy,
            "idle": max(0.0, wall - busy),
            "utilization": utilization,
            "first_begin": min(r["begin"] for r in roots),
            "last_end": max(r["end"] for r in roots),
            "gaps": gaps})
        if name != "main":
            utilizations.append(utilization)
    overall = (sum(utilizations) / len(utilizations)
               if utilizations else None)
    return rows, overall


def _shard_skew(shards: list[dict]) -> dict | None:
    if not shards:
        return None
    walls = sorted(s["wall"] for s in shards)
    mean = sum(walls) / len(walls)
    return {"max_wall": walls[-1], "min_wall": walls[0],
            "mean_wall": mean,
            "skew_ratio": walls[-1] / mean if mean > 0 else 1.0}


def _attribution(spans: list[dict], top: int = TOP_STRAGGLERS,
                 ) -> dict | None:
    """Per-shard cost rows from shard-span attrs; None for runs with
    no shard spans (sequential / streaming)."""
    shards = []
    for span in spans:
        if span["name"] != "shard":
            continue
        attrs = span["attrs"]
        lo = attrs.get("lo")
        hi = attrs.get("hi")
        if lo is None and isinstance(attrs.get("shard"),
                                     (list, tuple)):
            lo, hi = attrs["shard"][0], attrs["shard"][1]
        shards.append({
            "shard": [lo, hi],
            "key": span["key"],
            "wall": attrs.get("wall", span["dur"]),
            "checks": attrs.get("checks"),
            "props": attrs.get("props"),
            "clause_visits": attrs.get("clause_visits"),
            "peak_rss": attrs.get("peak_rss"),
            "worker": span["worker"],
            "attempt": attrs.get("attempt", 0)})
    if not shards:
        return None
    shards.sort(key=lambda s: (s["shard"][0] if s["shard"][0]
                               is not None else -1))
    ranked = sorted(shards, key=lambda s: (-s["wall"], s["key"]))
    return {"shards": shards,
            "top_stragglers": ranked[:top],
            "skew": _shard_skew(shards)}


def _memory_section(spans: list[dict],
                    attribution: dict | None) -> dict | None:
    """The timeline's memory lane: every ``mem_sample`` instant event
    (emitted by :class:`repro.obs.mem.MemSampler` riding the progress
    heartbeat) plus the run-wide peak RSS.

    The peak folds in per-shard ``peak_rss`` end-attrs too, so a
    parallel run whose parent sampled little still reports the true
    max across workers.  None when the trace carries no memory data
    at all (sampler disabled) — renderers skip the lane entirely.
    """
    samples = []
    for span in spans:
        for record in span.get("events", ()):
            if record.get("name") != "mem_sample":
                continue
            attrs = record.get("attrs", {})
            rss = attrs.get("rss_bytes")
            if not isinstance(rss, (int, float)):
                continue
            samples.append({
                "ts": record["ts"],
                "rss_bytes": int(rss),
                "peak_rss_bytes": attrs.get("peak_rss_bytes"),
                "worker": span["worker"]})
    samples.sort(key=lambda s: s["ts"])
    peaks = [s["peak_rss_bytes"] for s in samples
             if isinstance(s["peak_rss_bytes"], (int, float))]
    peaks.extend(s["rss_bytes"] for s in samples)
    if attribution:
        peaks.extend(row["peak_rss"] for row in attribution["shards"]
                     if isinstance(row.get("peak_rss"),
                                   (int, float)))
    if not peaks:
        return None
    return {"samples": samples,
            "peak_rss_bytes": int(max(peaks))}


def _critical_path(spans: list[dict]) -> list[dict]:
    """The chain of spans bounding wall-clock.

    Standard trace-analysis walk over the span tree: starting from
    the root that ends last, repeatedly descend into the child that
    ends last at or before the cursor, then move the cursor to that
    child's begin.  Ties break on ``(end, begin, key)`` so the path
    is deterministic for identical traces.  Returns path entries in
    begin-time order, each with the ``self`` time (portion of the
    span not covered by on-path children).
    """
    if not spans:
        return []
    children: dict = {}
    for span in spans:
        children.setdefault(span["parent"], []).append(span)

    path: list[dict] = []

    def descend(span: dict) -> None:
        entry = {"key": span["key"], "name": span["name"],
                 "begin": span["begin"], "end": span["end"],
                 "dur": span["dur"], "worker": span["worker"],
                 "self": span["dur"]}
        path.append(entry)
        kids = children.get(span["id"], [])
        cursor = span["end"]
        covered = 0.0
        while True:
            candidates = [k for k in kids
                          if k["begin"] < cursor
                          and k["end"] <= cursor + 1e-12]
            if not candidates:
                break
            nxt = max(candidates,
                      key=lambda k: (k["end"], k["begin"], k["key"]))
            descend(nxt)
            covered += min(nxt["end"], cursor) - nxt["begin"]
            cursor = nxt["begin"]
        entry["self"] = max(0.0, span["dur"] - covered)

    roots = children.get(None, [])
    if not roots:
        return []
    # The run's wall clock ends when the last root ends; walk roots
    # backward from there, same cursor discipline as within a span.
    cursor = max(root["end"] for root in roots)
    ordered: list[dict] = []
    while True:
        candidates = [r for r in roots
                      if r["end"] <= cursor + 1e-12
                      and all(r is not o for o in ordered)]
        if not candidates:
            break
        nxt = max(candidates,
                  key=lambda r: (r["end"], r["begin"], r["key"]))
        ordered.append(nxt)
        cursor = nxt["begin"]
    for root in ordered:
        descend(root)
    path.sort(key=lambda e: (e["begin"], e["end"]))
    return path


# ---------------------------------------------------------------------------
# Public API


def build_timeline(events: list[dict], top: int = TOP_STRAGGLERS,
                   ) -> dict:
    """Merge a trace's events into a ``repro.obs.timeline/v1`` doc."""
    spans, open_count, run_id, trace_id = _assemble_spans(events)
    spans, duplicates = _dedupe_retries(spans)
    spans, orphans = _assign_lanes(spans)
    if spans:
        begin = min(s["begin"] for s in spans)
        end = max(s["end"] for s in spans)
    else:
        begin = end = 0.0
    workers, utilization = _worker_stats(spans) if spans else ([],
                                                               None)
    attribution = _attribution(spans, top=top)
    memory = _memory_section(spans, attribution)
    critical = _critical_path(spans)
    doc = {
        "schema": TIMELINE_SCHEMA,
        "run": run_id,
        "trace": trace_id,
        "window": {"begin": begin, "end": end,
                   "wall": end - begin},
        "spans": [{
            "key": s["key"], "id": s["id"], "name": s["name"],
            "parent": s["parent"], "worker": s["worker"],
            "begin": s["begin"], "end": s["end"], "dur": s["dur"],
            "attrs": s["attrs"]} for s in spans],
        "workers": workers,
        "utilization": utilization,
        "shard_skew": attribution["skew"] if attribution else None,
        "critical_path": critical,
        "critical_path_wall": sum(e["self"] for e in critical),
        "attribution": (
            {"shards": attribution["shards"],
             "top_stragglers": attribution["top_stragglers"]}
            if attribution else None),
        "memory": memory,
        "dropped": {"duplicates": duplicates, "orphans": orphans,
                    "open": open_count},
    }
    return doc


def attribution_summary(events: list[dict],
                        top: int = TOP_STRAGGLERS) -> dict | None:
    """The compact attribution record ``obs history`` persists for a
    parallel run: utilization, skew, and per-shard cost rows.

    Returns None when the trace has no shard spans (nothing to
    attribute)."""
    doc = build_timeline(events, top=top)
    if doc["attribution"] is None:
        return None
    return {
        "utilization": doc["utilization"],
        "skew_ratio": (doc["shard_skew"]["skew_ratio"]
                       if doc["shard_skew"] else None),
        "workers": len([w for w in doc["workers"]
                        if w["worker"] != "main"]),
        "peak_rss_bytes": (doc["memory"]["peak_rss_bytes"]
                           if doc.get("memory") else None),
        "shards": doc["attribution"]["shards"],
        "top_stragglers": doc["attribution"]["top_stragglers"],
    }


def write_timeline_json(doc: dict, path_or_file) -> None:
    text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        atomic_write_text(path_or_file, text)


# ---------------------------------------------------------------------------
# Rendering


_BAR_WIDTH = 48


def _memory_lane(memory: dict, lo: float, hi: float) -> str:
    """A fixed-width RSS sparkline over the timeline window: each
    column shows the largest sample falling in that time slice,
    scaled against the run peak (`` .:-=+*#`` from empty to peak)."""
    levels = " .:-=+*#"
    peak = max(memory["peak_rss_bytes"], 1)
    cols = [0] * _BAR_WIDTH
    span = max(hi - lo, 1e-9)
    for sample in memory["samples"]:
        col = int((sample["ts"] - lo) / span * _BAR_WIDTH)
        col = min(max(col, 0), _BAR_WIDTH - 1)
        cols[col] = max(cols[col], sample["rss_bytes"])
    return "".join(
        levels[min(len(levels) - 1,
                   int(value / peak * (len(levels) - 1) + 0.5))]
        if value else " " for value in cols)


def _bar(begin: float, end: float, lo: float, hi: float) -> str:
    """A fixed-width ASCII Gantt bar for [begin, end) within
    [lo, hi)."""
    span = hi - lo
    if span <= 0:
        return "#" * _BAR_WIDTH
    start = int((begin - lo) / span * _BAR_WIDTH)
    stop = max(start + 1, int(round((end - lo) / span * _BAR_WIDTH)))
    start = min(start, _BAR_WIDTH - 1)
    stop = min(stop, _BAR_WIDTH)
    return ("." * start + "#" * (stop - start)
            + "." * (_BAR_WIDTH - stop))


def render_timeline_text(doc: dict) -> str:
    """A terminal Gantt + summary rendering of a timeline doc."""
    lines = []
    window = doc["window"]
    util = doc["utilization"]
    head = (f"timeline {doc['run'] or '?'} "
            f"wall={window['wall']:.3f}s")
    if util is not None:
        head += f" utilization={util * 100:.1f}%"
    if doc["shard_skew"]:
        head += f" skew={doc['shard_skew']['skew_ratio']:.2f}x"
    lines.append(head)
    if doc["trace"]:
        lines.append(f"trace {doc['trace']}")
    lines.append("")
    lines.append("lanes:")
    lo, hi = window["begin"], window["end"]
    by_worker: dict[str, list[dict]] = {}
    for span in doc["spans"]:
        by_worker.setdefault(span["worker"], []).append(span)
    for row in doc["workers"]:
        name = row["worker"]
        roots = [s for s in by_worker.get(name, [])]
        merged = _merge_intervals(
            [(s["begin"], s["end"]) for s in roots])
        bar = list("." * _BAR_WIDTH)
        for begin, end in merged:
            seg = _bar(begin, end, lo, hi)
            for i, ch in enumerate(seg):
                if ch == "#":
                    bar[i] = "#"
        lines.append(
            f"  {name:<14} |{''.join(bar)}| "
            f"busy={row['busy']:.3f}s idle={row['idle']:.3f}s "
            f"util={row['utilization'] * 100:.1f}%")
    memory = doc.get("memory")
    if memory:
        lines.append("")
        lane = _memory_lane(memory, lo, hi)
        lines.append(
            f"  {'memory':<14} |{lane}| "
            f"peak={format_bytes(memory['peak_rss_bytes'])} "
            f"samples={len(memory['samples'])}")
    lines.append("")
    lines.append(
        f"critical path ({doc['critical_path_wall']:.3f}s of "
        f"{window['wall']:.3f}s wall):")
    for entry in doc["critical_path"]:
        lines.append(
            f"  {entry['key']:<24} {entry['dur']:.3f}s "
            f"(self {entry['self']:.3f}s) on {entry['worker']}")
    attribution = doc["attribution"]
    if attribution:
        lines.append("")
        lines.append("top stragglers:")
        for row in attribution["top_stragglers"]:
            props = row["props"]
            line = (
                f"  {row['key']:<24} wall={row['wall']:.3f}s "
                f"checks={row['checks']} "
                f"props={props if props is not None else '?'}")
            if isinstance(row.get("peak_rss"), (int, float)):
                line += f" rss={format_bytes(row['peak_rss'])}"
            lines.append(line + f" on {row['worker']}")
    dropped = doc["dropped"]
    if any(dropped.values()):
        lines.append("")
        lines.append(
            f"dropped: {dropped['duplicates']} duplicate, "
            f"{dropped['orphans']} orphaned, "
            f"{dropped['open']} unterminated span(s)")
    return "\n".join(lines) + "\n"


_LANE_COLORS = ["#4e79a7", "#f28e2b", "#59a14f", "#e15759",
                "#76b7b2", "#edc948", "#b07aa1", "#9c755f"]


def render_timeline_html(doc: dict) -> str:
    """A self-contained HTML Gantt + critical-path flame rendering
    (inline CSS only, no external resources)."""
    window = doc["window"]
    lo, hi = window["begin"], window["end"]
    span_wall = max(window["wall"], 1e-9)
    lanes: list[str] = []
    for row in doc["workers"]:
        if row["worker"] not in lanes:
            lanes.append(row["worker"])
    for span in doc["spans"]:
        if span["worker"] not in lanes:
            lanes.append(span["worker"])
    color = {lane: _LANE_COLORS[i % len(_LANE_COLORS)]
             for i, lane in enumerate(lanes)}
    critical_keys = {entry["key"] for entry in doc["critical_path"]}

    def pct(value: float) -> float:
        return (value - lo) / span_wall * 100.0

    rows = []
    for lane in lanes:
        blocks = []
        for span in doc["spans"]:
            if span["worker"] != lane:
                continue
            left = pct(span["begin"])
            width = max(0.05, pct(span["end"]) - left)
            title = _html.escape(
                f"{span['key']} {span['dur']:.4f}s")
            edge = ("outline:2px solid #d62728;"
                    if span["key"] in critical_keys else "")
            blocks.append(
                f'<div class="s" title="{title}" '
                f'style="left:{left:.3f}%;width:{width:.3f}%;'
                f'background:{color[lane]};{edge}"></div>')
        rows.append(
            f'<div class="lane"><span class="label">'
            f'{_html.escape(lane)}</span>'
            f'<div class="track">{"".join(blocks)}</div></div>')

    flame = []
    depth_end: list[float] = []
    for entry in doc["critical_path"]:
        depth = 0
        while depth < len(depth_end) and entry["begin"] < \
                depth_end[depth] - 1e-12:
            depth += 1
        if depth == len(depth_end):
            depth_end.append(entry["end"])
        else:
            depth_end[depth] = entry["end"]
        left = pct(entry["begin"])
        width = max(0.05, pct(entry["end"]) - left)
        title = _html.escape(
            f"{entry['key']} {entry['dur']:.4f}s "
            f"(self {entry['self']:.4f}s)")
        flame.append(
            f'<div class="f" title="{title}" '
            f'style="left:{left:.3f}%;top:{depth * 22}px;'
            f'width:{width:.3f}%;">'
            f'{_html.escape(entry["key"])}</div>')
    flame_height = max(22 * len(depth_end), 22)

    memory = doc.get("memory")
    mem_html = ""
    if memory:
        mem_peak = max(memory["peak_rss_bytes"], 1)
        mem_bars = []
        for sample in memory["samples"]:
            left = pct(sample["ts"])
            height = max(2.0, sample["rss_bytes"] / mem_peak * 40.0)
            title = _html.escape(
                f"{format_bytes(sample['rss_bytes'])} rss "
                f"at +{sample['ts'] - lo:.3f}s "
                f"({sample['worker']})")
            mem_bars.append(
                f'<div class="m" title="{title}" '
                f'style="left:{left:.3f}%;'
                f'height:{height:.0f}px;"></div>')
        mem_html = (
            f'<h2>Memory — peak '
            f'{_html.escape(format_bytes(memory["peak_rss_bytes"]))}'
            f'</h2>\n<div class="memlane">{"".join(mem_bars)}</div>\n')

    util = doc["utilization"]
    summary = (f"wall {window['wall']:.3f}s · critical path "
               f"{doc['critical_path_wall']:.3f}s")
    if util is not None:
        summary += f" · utilization {util * 100:.1f}%"
    if doc["shard_skew"]:
        summary += (f" · shard skew "
                    f"{doc['shard_skew']['skew_ratio']:.2f}x")
    if memory:
        summary += (f" · peak rss "
                    f"{format_bytes(memory['peak_rss_bytes'])}")
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>repro timeline {_html.escape(doc['run'] or '')}</title>
<style>
body {{ font: 13px/1.4 monospace; margin: 1.5em; color: #222; }}
h1 {{ font-size: 16px; }}
.lane {{ display: flex; align-items: center; margin: 2px 0; }}
.label {{ width: 9em; flex: none; }}
.track {{ position: relative; flex: 1; height: 18px;
  background: #f2f2f2; }}
.s {{ position: absolute; top: 2px; height: 14px;
  border-radius: 2px; }}
.flame {{ position: relative; height: {flame_height}px;
  margin-left: 9em; }}
.f {{ position: absolute; height: 20px; background: #d62728;
  color: #fff; overflow: hidden; white-space: nowrap;
  font-size: 11px; line-height: 20px; padding-left: 2px;
  border-radius: 2px; box-sizing: border-box; }}
.memlane {{ position: relative; height: 44px; margin-left: 9em;
  background: #f2f2f2; }}
.m {{ position: absolute; bottom: 0; width: 0.6%;
  min-width: 2px; background: #76b7b2; }}
</style></head><body>
<h1>repro timeline — run {_html.escape(doc['run'] or '?')}</h1>
<p>{_html.escape(summary)}</p>
<h2>Gantt</h2>
{''.join(rows)}
{mem_html}<h2>Critical path</h2>
<div class="flame">{''.join(flame)}</div>
</body></html>
"""
