"""The ``Obs`` bundle: what a verification run carries around.

Every instrumented entry point accepts ``obs: Obs | None = None``.
``None`` — the default everywhere — is the *disabled fast path*: the
drivers branch on it once per check at most, the BCP hot loops never
see it at all, and no registry, tracer, or clock is touched.  An
:class:`Obs` carries up to three optional facilities:

* ``metrics`` — a :class:`~repro.obs.registry.MetricsRegistry`;
* ``tracer`` — a :class:`~repro.obs.spans.Tracer` (JSONL event log);
* ``progress`` — heartbeat configuration (stream + interval); the
  drivers instantiate one
  :class:`~repro.obs.progress.ProgressReporter` per run once the
  total check count is known;
* ``depgraph`` — a :class:`~repro.obs.insight.depgraph.
  DepGraphRecorder`; with one attached the verification drivers
  record each checked clause's conflict-analysis antecedents (the
  proof dependency graph), and the parallel parent folds worker
  record buffers in like metric snapshots;
* ``mem`` — a :class:`~repro.obs.mem.MemSampler`; it rides the
  progress heartbeat (one RSS read per beat) and feeds the same
  metrics registry and tracer, so memory samples carry the run's
  trace context.  A ``mem_profiler``
  (:class:`~repro.obs.mem.MemProfiler`) additionally marks traced
  allocation peaks at span boundaries when ``--mem-profile`` asked
  for it.

The helpers (`span`, `event`, `counter_add`, ...) are null-safe with
respect to the *facilities* — an ``Obs`` with only a tracer ignores
metric calls — so drivers guard on ``obs is not None`` once and then
call helpers unconditionally.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext

from repro.obs.progress import ProgressReporter
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    DEFAULT_WORK_BUCKETS,
    MetricsRegistry,
)
from repro.obs.spans import Tracer, make_run_id

_NULL = nullcontext()


class Obs:
    """Optional instrumentation facilities threaded through a run."""

    def __init__(self, metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 progress_stream=None,
                 progress_interval: float = 0.5,
                 run_id: str | None = None,
                 depgraph=None,
                 live_dir=None,
                 live_meta: dict | None = None,
                 mem=None,
                 mem_profiler=None):
        if run_id is None:
            run_id = tracer.run_id if tracer is not None else make_run_id()
        self.run_id = run_id
        self.metrics = metrics
        self.tracer = tracer
        self.depgraph = depgraph
        self.mem = mem
        self.mem_profiler = mem_profiler
        if mem is not None:
            mem.bind(metrics, tracer)
        self.progress_stream = progress_stream
        self.progress_interval = progress_interval
        # The live view rides the progress heartbeat: a live_dir turns
        # progress on even without a console stream (console stays
        # quiet, the status file still updates — see repro.obs.live).
        self.live_dir = live_dir
        self.live_meta = dict(live_meta or {})
        self.wants_progress = (progress_stream is not None
                               or live_dir is not None)
        self.started = time.perf_counter()

    @classmethod
    def enabled(cls, tracing: bool = True, progress_stream=None,
                depgraph: bool = False, mem: bool = True) -> "Obs":
        """An Obs with everything on — the library-user one-liner."""
        if depgraph:
            from repro.obs.insight.depgraph import DepGraphRecorder

            recorder = DepGraphRecorder()
        else:
            recorder = None
        if mem:
            from repro.obs.mem import MemSampler

            sampler = MemSampler()
        else:
            sampler = None
        return cls(metrics=MetricsRegistry(),
                   tracer=Tracer() if tracing else None,
                   progress_stream=progress_stream,
                   depgraph=recorder, mem=sampler)

    # -- tracing -----------------------------------------------------------

    def span(self, name: str, **attrs):
        if self.mem_profiler is not None:
            return self._profiled_span(name, **attrs)
        if self.tracer is None:
            return _NULL
        return self.tracer.span(name, **attrs)

    @contextmanager
    def _profiled_span(self, name: str, **attrs):
        """A span that also marks the tracemalloc phase attribution at
        its boundary (``--mem-profile`` only — never the default
        path)."""
        inner = (self.tracer.span(name, **attrs)
                 if self.tracer is not None else _NULL)
        with inner as end_attrs:
            try:
                yield end_attrs
            finally:
                self.mem_profiler.mark(name)

    def event(self, name: str, **attrs) -> None:
        if self.tracer is not None:
            self.tracer.event(name, **attrs)

    # -- metrics -----------------------------------------------------------

    def counter_add(self, name: str, amount: int = 1,
                    help: str = "") -> None:
        # amount == 0 still registers the counter: a zero-valued
        # worker_failures_total in the artifact says "measured, none"
        # rather than "never measured".
        if self.metrics is not None:
            self.metrics.counter(name, help=help).inc(amount)

    def gauge_set(self, name: str, value: float, help: str = "") -> None:
        if self.metrics is not None:
            self.metrics.gauge(name, help=help).set(value)

    def observe_seconds(self, name: str, value: float,
                        help: str = "") -> None:
        if self.metrics is not None:
            self.metrics.histogram(
                name, help=help,
                buckets=DEFAULT_TIME_BUCKETS).observe(value)

    def observe_work(self, name: str, value: int, help: str = "") -> None:
        if self.metrics is not None:
            self.metrics.histogram(
                name, help=help,
                buckets=DEFAULT_WORK_BUCKETS).observe(value)

    def record_bcp_counters(self, counters: dict[str, int]) -> None:
        """Publish engine ``PropagationCounters`` totals as counters.

        The hot loops keep maintaining their plain-int counters; the
        drivers call this once per run (or the parallel parent once
        per merged result), so the registry stays off the hot path.
        """
        if self.metrics is None:
            return
        for key, value in counters.items():
            self.metrics.counter(
                f"repro_bcp_{key}_total",
                help=f"BCP engine counter: {key}").inc(value)

    def merge_worker_metrics(self, snapshot: dict | None) -> None:
        """Fold a worker's registry snapshot into this run's registry."""
        if self.metrics is not None and snapshot:
            self.metrics.merge(snapshot)

    # -- provenance --------------------------------------------------------

    @property
    def wants_depgraph(self) -> bool:
        return self.depgraph is not None

    def record_dependency(self, index: int, cid: int, antecedents,
                          confl: int | None = None,
                          props: int | None = None) -> None:
        """Record one checked clause's conflict-analysis support."""
        if self.depgraph is not None:
            self.depgraph.record_check(index, cid, antecedents,
                                       confl=confl, props=props)

    def merge_worker_depgraph(self, records) -> None:
        """Fold a worker's dependency record buffer in (order-free:
        the exporter sorts by check index)."""
        if self.depgraph is not None and records:
            self.depgraph.merge(records)

    def publish_depgraph_totals(self) -> None:
        """Summarize the captured graph as counters, once per run."""
        if self.depgraph is None or self.metrics is None:
            return
        self.metrics.counter(
            "repro_depgraph_checks_total",
            help="Checks with recorded provenance").inc(
                self.depgraph.num_checks)
        self.metrics.counter(
            "repro_depgraph_edges_total",
            help="Antecedent edges in the proof dependency graph").inc(
                self.depgraph.num_edges)

    # -- progress ----------------------------------------------------------

    def progress_reporter(self, total: int,
                          label: str = "checks") -> ProgressReporter | None:
        if not self.wants_progress:
            return None
        status_writer = None
        if self.live_dir is not None:
            from repro.obs.live import LiveStatusWriter

            status_writer = LiveStatusWriter(
                self.live_dir, self.run_id, meta=self.live_meta,
                mem_provider=(self.mem.live_view
                              if self.mem is not None else None))
        return ProgressReporter(total, label=label,
                                stream=self.progress_stream,
                                interval=self.progress_interval,
                                status_writer=status_writer,
                                console=self.progress_stream
                                is not None,
                                on_beat=(self.mem.sample
                                         if self.mem is not None
                                         else None))

    # -- timed phases ------------------------------------------------------

    @contextmanager
    def phase(self, name: str, sink: dict[str, float], **attrs):
        """Time a named phase into ``sink`` (and a trace span)."""
        start = time.perf_counter()
        with self.span(name, **attrs):
            try:
                yield
            finally:
                sink[name] = sink.get(name, 0.0) \
                    + time.perf_counter() - start
