"""Tracing spans: a structured JSONL event log for verification runs.

A :class:`Tracer` records *spans* (named, nested intervals — a whole
verification, one shard, one check) and *instant events* (a worker
retry, a budget trip, the resolved worker count) against a monotonic
clock.  Events are buffered as plain dicts and serialized as one JSON
object per line (JSONL), the format every trace viewer and ``jq``
one-liner can consume.

Event schema (``repro.obs.trace/v1``) — every event carries:

``ts``
    Seconds since the tracer was created (``time.monotonic`` based, so
    durations are immune to wall-clock steps).
``run``
    The run id shared by every event of one verification run.
``type``
    ``"begin"`` | ``"end"`` | ``"event"``.
``span``
    Integer span id (for ``begin``/``end``; instant events carry the
    id of their *enclosing* span, or None at top level).
``parent``
    The enclosing span's id (None for root spans).
``name``
    The span/event name (``"verify"``, ``"check"``, ``"shard"``, ...).
``attrs``
    A flat JSON object of metric-free context (check index, shard
    bounds, worker count...).

``end`` events additionally carry ``dur`` (seconds).  Workers in the
parallel backend buffer events locally and ship them to the parent
inside each shard result, where they are re-emitted with a ``shard``
attribute.

Trace context
-------------
Every event additionally carries ``trace`` — a globally unique trace
id shared by the whole process tree of one run.  The ``run`` id
correlates artifacts written by one parent process; the ``trace`` id
survives worker replay untouched, so events from any number of
processes can be re-assembled into one timeline
(:mod:`repro.obs.timeline`).

Worker timestamps must land on the *parent's* time axis.  Under
``fork`` the child inherits the parent's monotonic clock readings, so
reusing the parent epoch is exact; under ``spawn`` the monotonic
clock may (platform-dependently) restart from an unrelated origin.
:func:`rebase_epoch` makes the choice explicit: it measures the
monotonic-vs-wall drift against the parent's ``(epoch, epoch_wall)``
anchor pair and, when the monotonic clocks disagree, derives a local
epoch from the wall-clock anchor instead — worker events then carry
parent-axis timestamps regardless of start method.  Workers build
their tracer through :func:`worker_tracer`, which applies the rebase.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from contextlib import contextmanager

TRACE_SCHEMA = "repro.obs.trace/v1"

_run_counter = itertools.count(1)

#: Monotonic-vs-wall disagreement (seconds) past which a worker's
#: monotonic clock is declared unrelated to the parent's and the
#: wall-clock anchor is used instead.  Fork/same-boot clocks agree to
#: microseconds; an unrelated epoch is off by hours.
EPOCH_DRIFT_TOLERANCE = 5.0


def make_run_id() -> str:
    """A run id unique enough to correlate artifacts of one process
    tree: pid plus a per-process sequence number."""
    return f"r{os.getpid()}-{next(_run_counter)}"


def make_trace_id() -> str:
    """A globally unique trace id (128 random bits, hex) stamped on
    every event of one run's process tree."""
    return os.urandom(16).hex()


def rebase_epoch(epoch: float | None, epoch_wall: float | None,
                 clock=time.monotonic, wall=time.time,
                 tolerance: float = EPOCH_DRIFT_TOLERANCE,
                 ) -> float | None:
    """A local monotonic epoch equivalent to a parent's ``epoch``.

    ``epoch`` is the parent tracer's monotonic epoch and ``epoch_wall``
    the wall-clock time captured at that same instant (the anchor
    pair).  When this process's monotonic clock agrees with the
    parent's — elapsed-since-epoch matches elapsed-since-anchor within
    ``tolerance`` — the parent epoch is reused verbatim (fork, or any
    platform whose monotonic clock is system-wide).  Otherwise (spawn
    onto an unrelated clock) the local epoch is derived from the wall
    anchor: ``now_monotonic - (now_wall - epoch_wall)``, which puts
    local timestamps on the parent axis with wall-clock-read accuracy.

    ``None`` inputs degrade gracefully: no ``epoch`` means "fresh
    tracer"; no ``epoch_wall`` (a pre-context caller) assumes a shared
    monotonic clock, the historical behavior.
    """
    if epoch is None:
        return None
    if epoch_wall is None:
        return epoch
    drift = (clock() - epoch) - (wall() - epoch_wall)
    if abs(drift) <= tolerance:
        return epoch
    return clock() - (wall() - epoch_wall)


def worker_tracer(run_id: str | None = None,
                  epoch: float | None = None,
                  epoch_wall: float | None = None,
                  trace_id: str | None = None,
                  clock=time.monotonic, wall=time.time) -> "Tracer":
    """A tracer for a pool worker, stamped with the parent's run and
    trace ids and rebased onto the parent's time axis (see
    :func:`rebase_epoch`)."""
    return Tracer(run_id=run_id, clock=clock,
                  epoch=rebase_epoch(epoch, epoch_wall, clock, wall),
                  trace_id=trace_id)


class Tracer:
    """Buffers trace events; write them out with :meth:`write_jsonl`.

    The tracer is deliberately single-threaded (the verification
    drivers are); the parallel backend gives each worker its own
    buffer and replays it in the parent rather than sharing a tracer
    across processes.
    """

    def __init__(self, run_id: str | None = None,
                 clock=time.monotonic, epoch: float | None = None,
                 trace_id: str | None = None, wall=time.time):
        self.run_id = run_id if run_id is not None else make_run_id()
        self.trace_id = (trace_id if trace_id is not None
                         else make_trace_id())
        self._clock = clock
        # A shared epoch lets worker-side tracers stamp events on the
        # parent's time axis; workers rebase onto it via
        # :func:`worker_tracer` so this holds under spawn too.
        self.epoch = epoch if epoch is not None else clock()
        # Wall-clock anchor captured against the epoch: the second half
        # of the (epoch, epoch_wall) pair :func:`rebase_epoch` needs.
        self.epoch_wall = wall() - (clock() - self.epoch)
        self.events: list[dict] = []
        self._next_span = itertools.count(1)
        self._stack: list[int] = []

    def _ts(self) -> float:
        return self._clock() - self.epoch

    @property
    def current_span(self) -> int | None:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs):
        """Record a named interval; usable as a context manager."""
        span_id = next(self._next_span)
        parent = self.current_span
        begin_ts = self._ts()
        self.events.append({
            "ts": begin_ts, "run": self.run_id, "trace": self.trace_id,
            "type": "begin", "span": span_id, "parent": parent,
            "name": name, "attrs": dict(attrs)})
        self._stack.append(span_id)
        end_attrs: dict = {}
        try:
            yield end_attrs
        finally:
            self._stack.pop()
            end_ts = self._ts()
            self.events.append({
                "ts": end_ts, "run": self.run_id,
                "trace": self.trace_id, "type": "end",
                "span": span_id, "parent": parent, "name": name,
                "dur": end_ts - begin_ts, "attrs": dict(end_attrs)})

    def event(self, name: str, **attrs) -> None:
        """Record an instant event inside the current span."""
        self.events.append({
            "ts": self._ts(), "run": self.run_id,
            "trace": self.trace_id, "type": "event",
            "span": self.current_span, "parent": self.current_span,
            "name": name, "attrs": dict(attrs)})

    def replay(self, events: list[dict], **extra_attrs) -> None:
        """Adopt events recorded by another tracer (a pool worker).

        Span ids are re-numbered into this tracer's space so ids stay
        unique; ``extra_attrs`` (e.g. ``shard=(lo, hi)``) are folded
        into every replayed event's attrs.
        """
        remap: dict[int, int] = {}
        for event in events:
            copied = dict(event)
            copied["run"] = self.run_id
            copied["trace"] = self.trace_id
            for key in ("span", "parent"):
                old = copied.get(key)
                if old is not None:
                    if old not in remap:
                        remap[old] = next(self._next_span)
                    copied[key] = remap[old]
            if copied.get("parent") is None and copied.get(
                    "type") != "event":
                copied["parent"] = self.current_span
            copied["attrs"] = {**copied.get("attrs", {}), **extra_attrs}
            self.events.append(copied)

    def write_jsonl(self, path_or_file) -> None:
        """Serialize the buffered events, one JSON object per line.

        The first line is a header record (``type: "header"``) naming
        the schema and run id, so a trace file is self-describing.
        """
        header = {"ts": 0.0, "run": self.run_id,
                  "trace": self.trace_id, "type": "header",
                  "schema": TRACE_SCHEMA, "name": "trace",
                  "attrs": {}}
        lines = [json.dumps(header, sort_keys=True)]
        # Replayed worker spans land in completion order, which can
        # interleave their timestamps; serialize in time order (the
        # sort is stable, so a zero-length span's begin stays before
        # its end) to keep the log monotone for consumers.
        lines += [json.dumps(event, sort_keys=True)
                  for event in sorted(self.events,
                                      key=lambda event: event["ts"])]
        text = "\n".join(lines) + "\n"
        if hasattr(path_or_file, "write"):
            path_or_file.write(text)
        else:
            # Atomic like every artifact writer: a reader (or a run
            # interrupted mid-flush) never sees a truncated trace.
            from repro.obs.export import atomic_write_text

            atomic_write_text(path_or_file, text)


def read_jsonl(path_or_file) -> list[dict]:
    """Parse a JSONL trace file back into its event dicts (header
    included); the inverse of :meth:`Tracer.write_jsonl`."""
    if hasattr(path_or_file, "read"):
        text = path_or_file.read()
    else:
        with open(path_or_file, "r", encoding="utf-8") as handle:
            text = handle.read()
    return [json.loads(line) for line in text.splitlines() if line]
