"""Proof-shape analytics: the paper's Section-5 quantities per run.

Section 5 of the paper compares proof representations by *shape*:
conflict clause proofs are measured in literals, resolution-graph
proofs in nodes, and the local/global dichotomy decides which format a
clause prefers.  PR 2's :mod:`repro.proofs.stats` computes those
quantities from a *solver log* (which carries exact resolution
counts); this module computes them from the **verifier's own
evidence** — the dependency graph the provenance recorder captured —
so they are available for any proof, including proofs produced by
third-party solvers where no log exists.

The estimate: a checked clause whose conflict-analysis support has
``k`` antecedents is derivable by trivial resolution in ``k - 1``
steps (resolve the antecedents in reverse propagation order), so

* per-clause estimated resolutions ``r = max(k - 1, 1)`` (0 for a
  tautological clause, whose support is empty);
* estimated resolution-graph node count = sum of ``r`` over checked
  clauses;
* a clause is **local** when ``r <= 2 * max(literals, 1)`` — the same
  scale-free threshold :func:`repro.proofs.stats.analyze_log` uses —
  and **global** otherwise.

Everything here is a pure function of ``(proof, report, depgraph
records)``; nothing touches engines or clocks, so analytics are
deterministic whenever their inputs are.

Artifact (schema ``repro.obs.analytics/v1``): one JSON object
``{"schema": ..., "run": {...}, "analytics": {...}}``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

ANALYTICS_SCHEMA = "repro.obs.analytics/v1"

# Depth-histogram and props-histogram upper bounds (the terminal +inf
# bucket is implicit, matching the metrics registry convention).
DEPTH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass
class ProofShapeAnalytics:
    """Aggregate shape of one verified proof, per the paper's Section 5.

    ``checked``/``skipped``/``marked_fraction`` describe what the
    marking pass had to do; ``local_clauses``/``global_clauses`` split
    the checked clauses by estimated derivation effort;
    ``estimated_resolution_nodes`` vs ``proof_literals`` reproduces the
    Tables 2/3 comparison (``ratio_percent`` = 100 · literals / nodes);
    ``core_size``/``core_fraction`` come from verification2's marking
    (``None`` for verification1, which marks nothing);
    ``antecedent_chain_depths`` is a ``{depth: count}`` histogram of
    each checked clause's longest antecedent chain back to ``F``;
    ``check_props`` is a fixed-bucket histogram of per-check
    propagation cost (empty when the recorder saw no counters).
    """

    num_proof_clauses: int
    proof_literals: int
    checked: int
    skipped: int
    marked_fraction: float
    local_clauses: int
    global_clauses: int
    estimated_resolution_nodes: int
    max_antecedents: int
    mean_antecedents: float
    core_size: int | None = None
    core_fraction: float | None = None
    antecedent_chain_depths: dict[int, int] = field(default_factory=dict)
    max_chain_depth: int = 0
    check_props: dict = field(default_factory=dict)

    @property
    def ratio_percent(self) -> float:
        """Tables 2/3 last column: conflict / resolution size, in %."""
        if not self.estimated_resolution_nodes:
            return float("inf") if self.proof_literals else 0.0
        return 100.0 * self.proof_literals \
            / self.estimated_resolution_nodes

    def as_dict(self) -> dict:
        return {
            "num_proof_clauses": self.num_proof_clauses,
            "proof_literals": self.proof_literals,
            "checked": self.checked,
            "skipped": self.skipped,
            "marked_fraction": self.marked_fraction,
            "local_clauses": self.local_clauses,
            "global_clauses": self.global_clauses,
            "estimated_resolution_nodes":
                self.estimated_resolution_nodes,
            "ratio_percent": (None if self.estimated_resolution_nodes
                              == 0 and self.proof_literals
                              else round(self.ratio_percent, 2)),
            "max_antecedents": self.max_antecedents,
            "mean_antecedents": round(self.mean_antecedents, 3),
            "core_size": self.core_size,
            "core_fraction": self.core_fraction,
            "antecedent_chain_depths": {
                str(depth): count for depth, count
                in sorted(self.antecedent_chain_depths.items())},
            "max_chain_depth": self.max_chain_depth,
            "check_props": dict(self.check_props),
        }


def estimated_resolutions(num_antecedents: int) -> int:
    """Resolution steps to derive a clause from its conflict support."""
    if num_antecedents <= 0:
        return 0
    return max(num_antecedents - 1, 1)


def is_local(num_antecedents: int, num_literals: int) -> bool:
    """The paper's local/global split, on verifier evidence.

    Local clauses are "obtained by resolving a small number of
    clauses" relative to what storing them costs; the threshold is
    twice the clause's own length, matching
    :func:`repro.proofs.stats.analyze_log`.
    """
    return estimated_resolutions(num_antecedents) \
        <= 2 * max(num_literals, 1)


def analyze_proof_shape(proof, report, depgraph) -> ProofShapeAnalytics:
    """Compute the Section-5 analytics from a run's evidence.

    ``proof`` is the :class:`~repro.proofs.conflict_clause.
    ConflictClauseProof`, ``report`` the
    :class:`~repro.verify.report.VerificationReport`, ``depgraph`` a
    :class:`~repro.obs.insight.depgraph.DepGraphRecorder`, record
    list, or parsed artifact.  Pure function: no engine, no clock.
    """
    from repro.obs.insight.depgraph import depgraph_records
    from repro.obs.registry import DEFAULT_WORK_BUCKETS, Histogram

    records = depgraph_records(depgraph)
    # cid space: antecedents below num_input are clauses of F.  The
    # report does not carry num_input directly; recover it from the
    # cid of any record (cid = num_input + index).
    num_input = None
    for record in records:
        num_input = record["cid"] - record["index"]
        break

    local = global_count = 0
    est_nodes = 0
    max_ante = 0
    total_ante = 0
    depths: dict[int, int] = {}
    depth_by_index: dict[int, int] = {}
    props_hist = Histogram("check_props", buckets=DEFAULT_WORK_BUCKETS)
    for record in records:  # ascending index: antecedents precede
        antecedents = record["antecedents"]
        k = len(antecedents)
        total_ante += k
        max_ante = max(max_ante, k)
        est_nodes += estimated_resolutions(k)
        literals = len(proof[record["index"]])
        if is_local(k, literals):
            local += 1
        else:
            global_count += 1
        depth = 0
        for cid in antecedents:
            if num_input is not None and cid >= num_input:
                depth = max(depth,
                            depth_by_index.get(cid - num_input, 0))
        depth += 1
        depth_by_index[record["index"]] = depth
        depths[depth] = depths.get(depth, 0) + 1
        if record.get("props") is not None:
            props_hist.observe(record["props"])

    core = getattr(report, "core", None)
    return ProofShapeAnalytics(
        num_proof_clauses=len(proof),
        proof_literals=proof.literal_count(),
        checked=report.num_checked,
        skipped=report.num_skipped,
        marked_fraction=(report.num_checked / len(proof)
                         if len(proof) else 0.0),
        local_clauses=local,
        global_clauses=global_count,
        estimated_resolution_nodes=est_nodes,
        max_antecedents=max_ante,
        mean_antecedents=(total_ante / len(records) if records else 0.0),
        core_size=core.size if core is not None else None,
        core_fraction=(round(core.fraction, 6)
                       if core is not None else None),
        antecedent_chain_depths=depths,
        max_chain_depth=max(depths, default=0),
        check_props=(props_hist.snapshot() if props_hist.count else {}),
    )


def analytics_document(analytics: ProofShapeAnalytics,
                       run: dict) -> dict:
    return {"schema": ANALYTICS_SCHEMA, "run": dict(run),
            "analytics": analytics.as_dict()}


def write_analytics_json(path, analytics: ProofShapeAnalytics,
                         run: dict) -> dict:
    from repro.obs.export import atomic_write_text

    doc = analytics_document(analytics, run)
    atomic_write_text(path, json.dumps(doc, indent=2, sort_keys=True)
                      + "\n")
    return doc


def analytics_footer(analytics: ProofShapeAnalytics) -> list[str]:
    """Human ``c insight:`` lines for the CLI's ``--stats`` footer."""
    ratio = analytics.as_dict()["ratio_percent"]
    lines = [
        "c insight: local={} global={} est_resolution_nodes={} "
        "proof_literals={}{}".format(
            analytics.local_clauses, analytics.global_clauses,
            analytics.estimated_resolution_nodes,
            analytics.proof_literals,
            f" ratio={ratio}%" if ratio is not None else ""),
        f"c insight: checked={analytics.checked} "
        f"skipped={analytics.skipped} "
        f"marked={analytics.marked_fraction:.1%} "
        f"max_chain_depth={analytics.max_chain_depth}",
    ]
    if analytics.core_size is not None:
        lines.append(
            f"c insight: core={analytics.core_size} clauses "
            f"({analytics.core_fraction:.1%} of F)")
    return lines
