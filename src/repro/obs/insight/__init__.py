"""Proof insight: provenance graphs, shape analytics, run history.

The semantic layer on top of :mod:`repro.obs`'s counters and spans —
*why* each clause verified (:mod:`~repro.obs.insight.depgraph`), how
the proof's shape compares to the paper's Section-5 predictions
(:mod:`~repro.obs.insight.analytics`), whether this run regressed
against recorded history (:mod:`~repro.obs.insight.history`), and
where the time went (:mod:`~repro.obs.insight.profiling`).
"""

from repro.obs.insight.analytics import (
    ANALYTICS_SCHEMA,
    ProofShapeAnalytics,
    analytics_document,
    analytics_footer,
    analyze_proof_shape,
    estimated_resolutions,
    is_local,
    write_analytics_json,
)
from repro.obs.insight.depgraph import (
    DEPGRAPH_SCHEMA,
    DepGraphRecorder,
    depgraph_deterministic_view,
    depgraph_records,
    depgraph_to_dot,
    read_depgraph_jsonl,
    write_depgraph_dot,
    write_depgraph_jsonl,
)
from repro.obs.insight.history import (
    RUN_SCHEMA,
    HistoryStore,
    check_regression,
    compare_runs,
    fingerprint,
    format_compare_table,
    format_history,
    load_fingerprint,
)
from repro.obs.insight.profiling import profile_session, write_profile

__all__ = [
    "ANALYTICS_SCHEMA",
    "DEPGRAPH_SCHEMA",
    "RUN_SCHEMA",
    "DepGraphRecorder",
    "HistoryStore",
    "ProofShapeAnalytics",
    "analytics_document",
    "analytics_footer",
    "analyze_proof_shape",
    "check_regression",
    "compare_runs",
    "depgraph_deterministic_view",
    "depgraph_records",
    "depgraph_to_dot",
    "estimated_resolutions",
    "fingerprint",
    "format_compare_table",
    "format_history",
    "is_local",
    "load_fingerprint",
    "profile_session",
    "read_depgraph_jsonl",
    "write_analytics_json",
    "write_depgraph_dot",
    "write_depgraph_jsonl",
    "write_profile",
]
