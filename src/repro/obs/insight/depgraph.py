"""Proof dependency graphs: per-check antecedent provenance.

Where the metrics layer (PR 3) answers "how much work did verification
do", the dependency graph answers "*why* did each clause verify": for
every checked proof clause the recorder stores the set of clauses —
input clauses of ``F`` and earlier proof clauses of ``F*`` — that the
verifier's conflict-analysis walk found responsible for the conflict.
This is exactly the information DRAT-trim's ``-d`` dependency output
exposes, reconstructed here from the paper's own marking machinery.

Clause ids share the checker's cid space: ``cid < num_input`` is the
``cid``-th clause of ``F``; ``cid >= num_input`` is proof clause
``cid - num_input``.

The recorder is deliberately dumb — an append-only list of per-check
records — so that pool workers can keep their own buffer and ship it
back inside the shard result, exactly like metric snapshots: the
parent merges buffers in completion order and the exported artifact is
sorted by check index, making the merge order-independent.  (Whether
the *contents* are scheduling-independent depends on the engine and
mode: the verification drivers default to the counting engine while a
recorder is attached precisely because its ``rebuild`` checks are
history-free — one canonical conflict per clause regardless of check
order or worker count.  The watched engine permanently reorders its
watch lists as checks run, and ``incremental`` mode carries a root
trail between checks, so either may report a different — equally
valid — conflict depending on scheduling, the same caveat the metrics
layer documents for its scheduling-dependent counters.)

Artifact (schema ``repro.obs.depgraph/v1``): JSONL, a header line
followed by one record per checked clause, ascending check index::

    {"type": "header", "schema": "repro.obs.depgraph/v1", "run": ...,
     "meta": {"num_input": N, "num_proof": M, "procedure": ...,
              "mode": ..., "jobs": ...}}
    {"type": "check", "index": 3, "cid": 8, "antecedents": [0, 2, 5],
     "confl": 2, "props": 17}

``antecedents`` excludes the checked clause itself; ``confl`` is the
clause BCP falsified (``null`` for a tautological proof clause, whose
check conflicts with an empty support); ``props`` is the propagation
work the check cost (``null`` when counters were unavailable).
"""

from __future__ import annotations

import json

DEPGRAPH_SCHEMA = "repro.obs.depgraph/v1"


class DepGraphRecorder:
    """Collects per-check antecedent records during verification.

    Attach one to an :class:`~repro.obs.context.Obs` (the ``depgraph``
    facility); the verification drivers call :meth:`record_check` after
    every passing check and the parallel parent folds worker buffers in
    with :meth:`merge`.  ``checks`` is the raw record list, unsorted
    (sorting happens at export, keeping the merge order-free).
    """

    def __init__(self) -> None:
        self.checks: list[dict] = []

    def record_check(self, index: int, cid: int,
                     antecedents, confl: int | None = None,
                     props: int | None = None) -> None:
        self.checks.append({
            "type": "check", "index": index, "cid": cid,
            "antecedents": sorted(set(antecedents) - {cid}),
            "confl": confl, "props": props})

    def merge(self, records) -> None:
        """Fold another recorder's (or a shard's) record list in.

        Records are plain dicts, so the same buffers that cross the
        fork boundary inside shard results land here unchanged.
        """
        self.checks.extend(records)

    @property
    def num_checks(self) -> int:
        return len(self.checks)

    @property
    def num_edges(self) -> int:
        return sum(len(record["antecedents"]) for record in self.checks)

    def sorted_checks(self) -> list[dict]:
        return sorted(self.checks, key=lambda record: record["index"])


def depgraph_records(source) -> list[dict]:
    """Normalize a recorder / record list / parsed artifact to records."""
    if isinstance(source, DepGraphRecorder):
        return source.sorted_checks()
    records = [record for record in source
               if record.get("type") == "check"]
    return sorted(records, key=lambda record: record["index"])


def depgraph_header(run: dict, *, num_input: int, num_proof: int,
                    procedure: str, mode: str,
                    jobs: int = 1) -> dict:
    return {"type": "header", "schema": DEPGRAPH_SCHEMA,
            "run": dict(run),
            "meta": {"num_input": num_input, "num_proof": num_proof,
                     "procedure": procedure, "mode": mode,
                     "jobs": jobs}}


def write_depgraph_jsonl(path, source, run: dict, *, num_input: int,
                         num_proof: int, procedure: str, mode: str,
                         jobs: int = 1) -> list[dict]:
    """Write the dependency-graph artifact (header + sorted records).

    Returns the full line-record list (header first).  The write is
    atomic (``*.tmp`` + ``os.replace``) like every artifact writer.
    """
    from repro.obs.export import atomic_write_text

    lines = [depgraph_header(run, num_input=num_input,
                             num_proof=num_proof, procedure=procedure,
                             mode=mode, jobs=jobs)]
    lines.extend(depgraph_records(source))
    text = "\n".join(json.dumps(line, sort_keys=True)
                     for line in lines) + "\n"
    atomic_write_text(path, text)
    return lines


def read_depgraph_jsonl(path_or_file) -> list[dict]:
    """Parse a depgraph artifact back to its line records."""
    if hasattr(path_or_file, "read"):
        text = path_or_file.read()
    else:
        with open(path_or_file, "r", encoding="utf-8") as handle:
            text = handle.read()
    return [json.loads(line) for line in text.splitlines() if line]


def depgraph_deterministic_view(lines) -> dict:
    """The rerun-stable subset of a depgraph artifact.

    Strips the per-run header fields (run id, timings) and the
    ``props`` cost of each check (work is scheduling-dependent for
    incremental parallel runs) plus the ``jobs`` count itself; keeps
    the structural meta and the sorted antecedent records.  Two runs of
    the same (instance, procedure, mode, order) in ``rebuild`` mode
    produce identical views regardless of ``--jobs`` — the
    order-independent-merge guarantee the tests pin.
    """
    meta: dict = {}
    for line in lines:
        if line.get("type") == "header":
            meta = {key: value
                    for key, value in line.get("meta", {}).items()
                    if key != "jobs"}
            break
    records = [{key: value for key, value in record.items()
                if key != "props"}
               for record in depgraph_records(lines)]
    return {"schema": DEPGRAPH_SCHEMA, "meta": meta, "checks": records}


def depgraph_to_dot(lines, *, max_nodes: int = 2000) -> str:
    """Render the dependency graph in Graphviz DOT.

    Input clauses are boxes (``c<cid>``), proof clauses ellipses
    (``p<index>``); each edge points from an antecedent to the clause
    whose check it supported (derivation direction).  Graphs beyond
    ``max_nodes`` referenced clauses are truncated with a comment —
    DOT is for eyeballs, the JSONL artifact is the complete record.
    """
    records = depgraph_records(lines)
    num_input = None
    for line in lines:
        if line.get("type") == "header":
            num_input = line.get("meta", {}).get("num_input")
            break
    if num_input is None:
        raise ValueError("depgraph lines carry no header record "
                         "(write_depgraph_jsonl produces one)")

    def node(cid: int) -> str:
        if cid < num_input:
            return f"c{cid}"
        return f"p{cid - num_input}"

    referenced: set[int] = set()
    for record in records:
        referenced.add(record["cid"])
        referenced.update(record["antecedents"])
    truncated = len(referenced) > max_nodes
    if truncated:
        kept_records = []
        kept: set[int] = set()
        for record in records:
            new = {record["cid"], *record["antecedents"]} - kept
            if len(kept) + len(new) > max_nodes:
                break
            kept |= new
            kept_records.append(record)
        records = kept_records
        referenced = kept
    out = ["digraph depgraph {", "  rankdir=BT;"]
    if truncated:
        out.append(f"  // truncated to {len(referenced)} of the "
                   "referenced clauses; see the JSONL artifact for "
                   "the full graph")
    for cid in sorted(referenced):
        if cid < num_input:
            out.append(f'  {node(cid)} [shape=box, label="F[{cid}]"];')
        else:
            out.append(f'  {node(cid)} '
                       f'[shape=ellipse, label="F*[{cid - num_input}]"];')
    for record in records:
        for antecedent in record["antecedents"]:
            out.append(f"  {node(antecedent)} -> {node(record['cid'])};")
    out.append("}")
    return "\n".join(out) + "\n"


def write_depgraph_dot(path, lines, *, max_nodes: int = 2000) -> None:
    from repro.obs.export import atomic_write_text

    atomic_write_text(path, depgraph_to_dot(lines, max_nodes=max_nodes))
