"""Run history: append-only fingerprints with regression detection.

``BENCH_verification.json`` tracks the benchmark trajectory, but only
for benchmark runs and only by convention.  The history store makes
*every* run first-class: each CLI verification (and each benchmark
record) appends one **fingerprint** — a compact JSON object with the
run's verdict, wall time, propagation throughput, per-phase times and
proof-shape analytics — to ``.repro/history.jsonl``.  The store is
append-only JSONL, so concurrent runs interleave whole lines and a
crashed run leaves at most a truncated final line (which the reader
skips).

On top of the store sit three CLI verbs (``repro obs history``,
``repro obs compare A B``, ``repro obs check-regression``) backed by
the pure functions here: :func:`compare_runs` produces a per-metric
delta table and :func:`check_regression` evaluates configurable
thresholds, exiting the CLI with code 3 (the resource/limit exit code
family) when a run regressed past them.

Fingerprint schema (``repro.obs.run/v1``)::

    {"schema": "repro.obs.run/v1", "id": "r123-1", "utc": "...",
     "command": "verify", "instance": "php6.cnf",
     "outcome": "proof_is_correct", "procedure": "verification2",
     "mode": "incremental", "engine": "watched", "jobs": 1,
     "wall_time": 0.041,
     "checks": 120, "props": 5113, "props_per_sec": 124707.3,
     "checks_per_sec": 2926.8, "phase_times": {"setup": ..., ...},
     "analytics": {"local_clauses": ..., ...} | null,
     "memory": {"peak_rss_bytes": ..., "arena_peak_bytes": ...,
                "tracemalloc_top": [...]} | null}

Selectors: runs are addressed by integer position (``0`` first,
``-1`` latest) or by a unique run-id prefix.
"""

from __future__ import annotations

import json
import os
import time

RUN_SCHEMA = "repro.obs.run/v1"

DEFAULT_HISTORY_DIR = ".repro"
HISTORY_FILENAME = "history.jsonl"


def default_history_dir() -> str:
    """The store location: ``$REPRO_HISTORY_DIR`` or ``.repro``.

    The environment override keeps the store relocatable without
    per-command flags — CI jobs and test harnesses point it at a
    scratch directory so runs never write into the working tree.
    """
    return os.environ.get("REPRO_HISTORY_DIR") or DEFAULT_HISTORY_DIR

# Metrics compared/thresholded, with their direction: +1 means larger
# is worse (times), -1 means smaller is worse (throughput).
_COMPARED = (
    ("wall_time", +1),
    ("checks", 0),
    ("props", 0),
    ("props_per_sec", -1),
    ("checks_per_sec", -1),
)


def _engine_kernel(engine: str | None) -> str | None:
    """The hot-loop implementation ("python"/"numpy") of a named
    engine; ``None`` when the engine is unrecorded or unregistered
    (e.g. a vector-engine record read on a machine without numpy)."""
    if engine is None:
        return None
    from repro.bcp import ENGINES

    cls = ENGINES.get(engine)
    return cls.kernel if cls is not None else None


def fingerprint(report, *, run_id: str, command: str,
                instance: str | None = None,
                analytics=None,
                wall_time: float | None = None,
                attribution: dict | None = None,
                memory: dict | None = None) -> dict:
    """A run's history record, from its report (and optional analytics).

    ``wall_time`` defaults to the report's ``verification_time``;
    ``analytics`` is a :class:`~repro.obs.insight.analytics.
    ProofShapeAnalytics` (or ``None`` when insight capture was off);
    ``attribution`` is the compact parallel-run summary from
    :func:`repro.obs.timeline.attribution_summary` (``None`` for
    sequential runs or runs without tracing); ``memory`` is the
    measured-memory section (``peak_rss_bytes``, optional
    ``arena_peak_bytes``/``tracemalloc_top``) from the run's
    :class:`~repro.obs.mem.MemSampler`, ``None`` when sampling was
    off or never produced a reading.
    """
    wall = report.verification_time if wall_time is None else wall_time
    stats = report.stats
    bcp = getattr(report, "bcp_counters", None)
    props = stats.props if stats is not None else (
        sum(bcp.values()) if bcp else 0)
    # The forward DRUP report counts additions, not checks.
    checks = getattr(report, "num_checked",
                     getattr(report, "num_additions", 0))
    record = {
        "schema": RUN_SCHEMA,
        "id": run_id,
        "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "command": command,
        "instance": instance,
        "outcome": report.outcome,
        "procedure": getattr(report, "procedure", command),
        "mode": getattr(report, "mode", None),
        "engine": getattr(report, "engine", None),
        "kernel": _engine_kernel(getattr(report, "engine", None)),
        "jobs": getattr(report, "jobs", 1),
        "wall_time": round(wall, 6),
        "checks": checks,
        "props": props,
        "props_per_sec": round(props / wall, 1) if wall > 0 else 0.0,
        "checks_per_sec": round(checks / wall, 1) if wall > 0 else 0.0,
        "phase_times": ({name: round(seconds, 6) for name, seconds
                         in stats.phase_times.items()}
                        if stats is not None else {}),
        "analytics": None,
        "attribution": attribution,
        "memory": memory,
    }
    if analytics is not None:
        shape = analytics.as_dict()
        record["analytics"] = {
            key: shape[key] for key in (
                "local_clauses", "global_clauses",
                "estimated_resolution_nodes", "proof_literals",
                "marked_fraction", "core_size", "max_chain_depth")}
    return record


class HistoryStore:
    """The append-only ``history.jsonl`` under a ``.repro`` directory."""

    def __init__(self, directory: str | None = None):
        if directory is None:
            directory = default_history_dir()
        self.directory = directory
        self.path = os.path.join(directory, HISTORY_FILENAME)

    def append(self, record: dict) -> None:
        """Append one fingerprint line (creating the store on first use).

        One ``write`` call per line: concurrent appenders in append
        mode interleave whole records, never halves.
        """
        os.makedirs(self.directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def read(self) -> list[dict]:
        """All fingerprints, oldest first; lenient about torn tails."""
        if not os.path.exists(self.path):
            return []
        records: list[dict] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail of a crashed appender
                if isinstance(record, dict) \
                        and record.get("schema") == RUN_SCHEMA:
                    records.append(record)
        return records

    def prune(self, keep: int) -> int:
        """Drop all but the newest ``keep`` fingerprints; returns how
        many were removed.

        The store is append-only and otherwise grows without bound —
        one line per CLI run adds up on a box running benchmarks in a
        loop.  The rewrite is atomic (tmp + replace, like every
        artifact writer), so a concurrent reader sees either the old
        or the new store, never a torn one.  A concurrent *appender*
        racing the replace can lose its line — prune is an operator
        action, not something to run under live traffic.
        """
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        records = self.read()
        if len(records) <= keep:
            return 0
        kept = records[len(records) - keep:]
        from repro.obs.export import atomic_write_text

        text = "".join(json.dumps(record, sort_keys=True) + "\n"
                       for record in kept)
        atomic_write_text(self.path, text)
        return len(records) - keep

    def select(self, selector: str) -> dict:
        """Resolve an index (``-1``, ``2``) or run-id prefix to a run."""
        records = self.read()
        if not records:
            raise LookupError(f"history store {self.path} is empty")
        try:
            return records[int(selector)]
        except ValueError:
            pass
        except IndexError:
            raise LookupError(
                f"history index {selector} out of range "
                f"(store holds {len(records)} runs)") from None
        matches = [record for record in records
                   if record["id"].startswith(selector)]
        if not matches:
            raise LookupError(f"no run with id prefix {selector!r} "
                              f"in {self.path}")
        if len({record["id"] for record in matches}) > 1:
            raise LookupError(
                f"run id prefix {selector!r} is ambiguous: "
                + ", ".join(sorted({r['id'] for r in matches})[:5]))
        return matches[-1]


def load_fingerprint(path) -> dict:
    """Read a standalone fingerprint JSON file (a committed baseline)."""
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    if not isinstance(record, dict) \
            or record.get("schema") != RUN_SCHEMA:
        raise ValueError(
            f"{path} is not a {RUN_SCHEMA} fingerprint "
            f"(schema={record.get('schema') if isinstance(record, dict) else None!r})")
    return record


def _delta_pct(old, new) -> float | None:
    if not isinstance(old, (int, float)) \
            or not isinstance(new, (int, float)) or old == 0:
        return None
    return 100.0 * (new - old) / old


def compare_runs(a: dict, b: dict) -> list[dict]:
    """Per-metric delta rows between two fingerprints (a = baseline).

    Each row: ``{"metric", "a", "b", "delta", "delta_pct", "worse"}``
    where ``worse`` says whether the change is in the metric's bad
    direction (``None`` for direction-free metrics like check counts).
    """
    rows: list[dict] = []

    def row(metric: str, old, new, direction: int) -> dict:
        delta = (new - old if isinstance(old, (int, float))
                 and isinstance(new, (int, float)) else None)
        pct = _delta_pct(old, new)
        worse = None
        if direction and pct is not None:
            worse = pct * direction > 0
        return {"metric": metric, "a": old, "b": new,
                "delta": delta, "delta_pct": pct, "worse": worse}

    # Engine first: a delta table comparing different BCP engines reads
    # very differently (counters are engine-specific), so say so up top.
    rows.append(row("engine", a.get("engine"), b.get("engine"), 0))
    for metric, direction in _COMPARED:
        rows.append(row(metric, a.get(metric), b.get(metric), direction))
    phases = sorted(set(a.get("phase_times", {}))
                    | set(b.get("phase_times", {})))
    for phase in phases:
        rows.append(row(f"phase:{phase}",
                        a.get("phase_times", {}).get(phase),
                        b.get("phase_times", {}).get(phase), +1))
    shape_a, shape_b = a.get("analytics"), b.get("analytics")
    if shape_a and shape_b:
        for key in sorted(set(shape_a) | set(shape_b)):
            rows.append(row(f"analytics:{key}", shape_a.get(key),
                            shape_b.get(key), 0))
    attr_a, attr_b = a.get("attribution"), b.get("attribution")
    if attr_a and attr_b:
        rows.append(row("attribution:utilization",
                        attr_a.get("utilization"),
                        attr_b.get("utilization"), -1))
        rows.append(row("attribution:skew_ratio",
                        attr_a.get("skew_ratio"),
                        attr_b.get("skew_ratio"), +1))
        rows.append(row("attribution:workers",
                        attr_a.get("workers"),
                        attr_b.get("workers"), 0))
    mem_a, mem_b = a.get("memory"), b.get("memory")
    if mem_a and mem_b:
        # Lower is better on every memory axis.
        rows.append(row("memory:peak_rss_bytes",
                        mem_a.get("peak_rss_bytes"),
                        mem_b.get("peak_rss_bytes"), +1))
        if (mem_a.get("arena_peak_bytes") is not None
                or mem_b.get("arena_peak_bytes") is not None):
            rows.append(row("memory:arena_peak_bytes",
                            mem_a.get("arena_peak_bytes"),
                            mem_b.get("arena_peak_bytes"), +1))
    return rows


def format_compare_table(a: dict, b: dict,
                         rows: list[dict] | None = None) -> str:
    """The ``repro obs compare`` delta table, aligned and annotated."""
    if rows is None:
        rows = compare_runs(a, b)
    header = ["metric", a.get("id", "A"), b.get("id", "B"),
              "delta", "delta%"]
    table: list[list[str]] = [header]
    for row in rows:
        def cell(value):
            if value is None:
                return "-"
            if isinstance(value, float):
                return f"{value:.6g}"
            return str(value)

        pct = row["delta_pct"]
        pct_text = "-" if pct is None else f"{pct:+.1f}%"
        if row["worse"]:
            pct_text += " !"
        table.append([row["metric"], cell(row["a"]), cell(row["b"]),
                      cell(row["delta"]), pct_text])
    widths = [max(len(line[col]) for line in table)
              for col in range(len(header))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(
            cell.ljust(width) for cell, width in zip(line, widths))
            .rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def check_regression(baseline: dict, current: dict, *,
                     max_wall_pct: float | None = None,
                     max_props_drop_pct: float | None = None,
                     max_phase_pct: float | None = None,
                     min_utilization_pct: float | None = None,
                     max_peak_rss_growth_pct: float | None = None,
                     ) -> list[str]:
    """Threshold violations of ``current`` against ``baseline``.

    Each threshold is optional (``None`` skips that check):

    * ``max_wall_pct`` — wall time may grow at most this % over the
      baseline;
    * ``max_props_drop_pct`` — props/s throughput may drop at most
      this %;
    * ``max_phase_pct`` — every individual phase time may grow at most
      this %;
    * ``min_utilization_pct`` — an absolute floor on the current run's
      recorded worker utilization (parallel runs with an attribution
      section only; a run without one skips the check — utilization
      is undefined for sequential runs);
    * ``max_peak_rss_growth_pct`` — measured peak RSS may grow at most
      this % over the baseline (runs whose fingerprints carry a
      ``memory`` section only; either side missing skips the check —
      an unmeasured run cannot be gated).

    Returns human-readable violation lines (empty: no regression).
    A current run with a worse outcome than the baseline is always a
    violation — a slower-but-correct run is a regression, a wrong one
    is a failure.
    """
    violations: list[str] = []
    if baseline.get("outcome") != current.get("outcome"):
        violations.append(
            f"outcome changed: {baseline.get('outcome')} -> "
            f"{current.get('outcome')}")
    if max_wall_pct is not None:
        pct = _delta_pct(baseline.get("wall_time"),
                         current.get("wall_time"))
        if pct is not None and pct > max_wall_pct:
            violations.append(
                f"wall_time regressed {pct:+.1f}% "
                f"({baseline['wall_time']:.6g}s -> "
                f"{current['wall_time']:.6g}s; threshold "
                f"+{max_wall_pct:g}%)")
    if max_props_drop_pct is not None:
        pct = _delta_pct(baseline.get("props_per_sec"),
                         current.get("props_per_sec"))
        if pct is not None and -pct > max_props_drop_pct:
            violations.append(
                f"props_per_sec dropped {pct:+.1f}% "
                f"({baseline['props_per_sec']:.6g} -> "
                f"{current['props_per_sec']:.6g}; threshold "
                f"-{max_props_drop_pct:g}%)")
    if max_phase_pct is not None:
        base_phases = baseline.get("phase_times", {})
        for phase, seconds in sorted(
                current.get("phase_times", {}).items()):
            pct = _delta_pct(base_phases.get(phase), seconds)
            if pct is not None and pct > max_phase_pct:
                violations.append(
                    f"phase {phase} regressed {pct:+.1f}% "
                    f"({base_phases[phase]:.6g}s -> {seconds:.6g}s; "
                    f"threshold +{max_phase_pct:g}%)")
    if min_utilization_pct is not None:
        attribution = current.get("attribution") or {}
        utilization = attribution.get("utilization")
        if isinstance(utilization, (int, float)) \
                and utilization * 100.0 < min_utilization_pct:
            violations.append(
                f"worker utilization {utilization * 100:.1f}% below "
                f"floor {min_utilization_pct:g}%")
    if max_peak_rss_growth_pct is not None:
        mem_base = baseline.get("memory") or {}
        mem_cur = current.get("memory") or {}
        pct = _delta_pct(mem_base.get("peak_rss_bytes"),
                         mem_cur.get("peak_rss_bytes"))
        if pct is not None and pct > max_peak_rss_growth_pct:
            violations.append(
                f"peak RSS regressed {pct:+.1f}% "
                f"({mem_base['peak_rss_bytes']} -> "
                f"{mem_cur['peak_rss_bytes']} bytes; threshold "
                f"+{max_peak_rss_growth_pct:g}%)")
    return violations


def format_history(records: list[dict], limit: int = 20) -> str:
    """The ``repro obs history`` listing, newest last."""
    if not records:
        return "history is empty"
    shown = records[-limit:]
    offset = len(records) - len(shown)
    header = ["#", "id", "utc", "command", "instance", "outcome",
              "wall", "props/s"]
    table = [header]
    for position, record in enumerate(shown, start=offset):
        table.append([
            str(position), record.get("id", "-"),
            record.get("utc", "-"), record.get("command", "-"),
            str(record.get("instance") or "-"),
            record.get("outcome", "-"),
            f"{record.get('wall_time', 0.0):.3f}s",
            f"{record.get('props_per_sec', 0.0):.6g}",
        ])
    widths = [max(len(line[col]) for line in table)
              for col in range(len(header))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(
            cell.ljust(width)
            for cell, width in zip(line, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
