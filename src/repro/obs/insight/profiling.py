"""cProfile hooks: ``--profile out.prof`` and flamegraph export.

Wraps a verification run in the stdlib deterministic profiler and
writes three artifacts, all atomically:

* ``out.prof`` — the binary :mod:`pstats` dump, loadable with
  ``python -m pstats`` or snakeviz;
* ``out.prof.folded`` — collapsed stacks (``frame;frame;frame count``)
  ready for ``flamegraph.pl`` / speedscope, produced by
  :func:`repro.obs.export.collapsed_stack_text`;
* ``out.prof.phases.json`` — per-phase attribution: the report's
  phase wall times next to the profiler's total, so a flamegraph can
  be read against the phase breakdown.

Profiling is strictly opt-in (the disabled path never imports
cProfile at run time) and composes with every other obs facility: the
CLI enables the profiler around the same ``verify_proof`` call the
metrics and depgraph observe.

Caveat: cProfile only sees the *parent* process — with ``--jobs N``
the worker BCP time appears as pool-wait frames.  Profile sequential
runs when chasing engine hot spots.
"""

from __future__ import annotations

import cProfile
import json
import os
import tempfile
from contextlib import contextmanager


@contextmanager
def profile_session():
    """Context manager yielding an enabled :class:`cProfile.Profile`.

    The profiler is disabled on exit even when the body raises
    (KeyboardInterrupt included), so a partial profile survives an
    interrupted run.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()


def write_profile(path, profiler: cProfile.Profile,
                  phase_times: dict | None = None,
                  total_time: float | None = None) -> list[str]:
    """Write the profile artifact set; returns the paths written.

    The binary dump lands via a temp file + ``os.replace`` (pstats'
    own writer is not atomic); the folded and phase sidecars go
    through :func:`~repro.obs.export.atomic_write_text`.
    """
    from repro.obs.export import atomic_write_text, collapsed_stack_text

    path = os.fspath(path)
    written = []
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(prefix=os.path.basename(path),
                               suffix=".tmp", dir=directory)
    os.close(fd)
    try:
        profiler.dump_stats(tmp)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    written.append(path)

    folded = path + ".folded"
    atomic_write_text(folded, collapsed_stack_text(profiler))
    written.append(folded)

    if phase_times is not None:
        phases_path = path + ".phases.json"
        doc = {"phase_times": {name: round(seconds, 6)
                               for name, seconds
                               in sorted(phase_times.items())},
               "total_time": (round(total_time, 6)
                              if total_time is not None else None)}
        atomic_write_text(
            phases_path, json.dumps(doc, indent=2, sort_keys=True) + "\n")
        written.append(phases_path)
    return written
