"""``repro.obs`` — tracing, metrics, and progress instrumentation.

A zero-dependency observability layer for the verification pipeline:

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` and associative snapshot merging (worker
  aggregation);
* :class:`Tracer` spans emitting a structured JSONL event log with a
  cross-process trace context (``trace_id`` + monotonic/wall epoch
  anchors rebased into pool workers);
* the :mod:`repro.obs.timeline` reconstructor — one global timeline
  per trace with utilization, idle gaps, shard skew, critical path,
  and per-shard attribution;
* :class:`ProgressReporter` heartbeat lines, optionally mirrored to
  :mod:`repro.obs.live` status files for ``repro obs top``;
* the :mod:`repro.obs.mem` resource profiler — heartbeat-riding RSS
  sampling (:class:`MemSampler`), arena-native memory gauges,
  optional tracemalloc phase attribution (:class:`MemProfiler`), and
  the ``repro.obs.mem/v1`` artifact;
* exporters (JSON summary, Prometheus text, ``c stats:`` footer) and
  schema validators for every artifact kind;
* the :mod:`repro.obs.insight` subpackage — proof dependency graphs,
  Section-5 shape analytics, the run-history store with regression
  detection, and cProfile/flamegraph hooks.

Instrumentation is strictly opt-in: every entry point takes
``obs: Obs | None = None`` and the disabled path never touches this
package (see :mod:`repro.obs.context`).
"""

from repro.obs.context import Obs
from repro.obs.export import (
    METRICS_FORMATS,
    atomic_write_text,
    collapsed_stack_text,
    metrics_document,
    prometheus_text,
    stats_footer,
    write_metrics_json,
    write_metrics_prometheus,
)
from repro.obs.insight import (
    ANALYTICS_SCHEMA,
    DEPGRAPH_SCHEMA,
    RUN_SCHEMA,
    DepGraphRecorder,
    HistoryStore,
    ProofShapeAnalytics,
    analyze_proof_shape,
    check_regression,
    compare_runs,
    depgraph_deterministic_view,
    fingerprint,
    write_analytics_json,
    write_depgraph_dot,
    write_depgraph_jsonl,
)
from repro.obs.live import (
    LiveStatusWriter,
    format_bytes,
    format_top_table,
    read_live_statuses,
)
from repro.obs.mem import (
    MemProfiler,
    MemSampler,
    arena_mem_stats,
    mem_document,
    parse_proc_status,
    read_rss,
    record_arena_gauges,
    reset_peak_rss,
    write_mem_json,
)
from repro.obs.progress import ProgressReporter
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    DEFAULT_WORK_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.schema import (
    CHECKPOINT_SCHEMA,
    KNOWN_SCHEMAS,
    LIVE_SCHEMA,
    MEM_SCHEMA,
    METRICS_SCHEMA,
    TIMELINE_SCHEMA,
    TRACE_SCHEMA,
    deterministic_view,
    validate_analytics,
    validate_any,
    validate_checkpoint,
    validate_depgraph,
    validate_live,
    validate_mem,
    validate_metrics,
    validate_timeline,
    validate_trace,
)
from repro.obs.spans import (
    Tracer,
    make_run_id,
    make_trace_id,
    read_jsonl,
    rebase_epoch,
    worker_tracer,
)
from repro.obs.timeline import (
    attribution_summary,
    build_timeline,
    render_timeline_html,
    render_timeline_text,
    write_timeline_json,
)

__all__ = [
    "Obs",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "ProgressReporter",
    "metrics_document",
    "write_metrics_json",
    "write_metrics_prometheus",
    "prometheus_text",
    "stats_footer",
    "validate_metrics",
    "validate_trace",
    "validate_depgraph",
    "validate_analytics",
    "validate_any",
    "deterministic_view",
    "depgraph_deterministic_view",
    "read_jsonl",
    "make_run_id",
    "atomic_write_text",
    "collapsed_stack_text",
    "DepGraphRecorder",
    "HistoryStore",
    "ProofShapeAnalytics",
    "analyze_proof_shape",
    "check_regression",
    "compare_runs",
    "fingerprint",
    "write_analytics_json",
    "write_depgraph_dot",
    "write_depgraph_jsonl",
    "KNOWN_SCHEMAS",
    "METRICS_SCHEMA",
    "CHECKPOINT_SCHEMA",
    "validate_checkpoint",
    "TRACE_SCHEMA",
    "DEPGRAPH_SCHEMA",
    "ANALYTICS_SCHEMA",
    "RUN_SCHEMA",
    "METRICS_FORMATS",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_WORK_BUCKETS",
    "TIMELINE_SCHEMA",
    "LIVE_SCHEMA",
    "validate_timeline",
    "validate_live",
    "make_trace_id",
    "rebase_epoch",
    "worker_tracer",
    "build_timeline",
    "attribution_summary",
    "render_timeline_text",
    "render_timeline_html",
    "write_timeline_json",
    "LiveStatusWriter",
    "read_live_statuses",
    "format_top_table",
    "format_bytes",
    "MEM_SCHEMA",
    "validate_mem",
    "MemSampler",
    "MemProfiler",
    "read_rss",
    "reset_peak_rss",
    "parse_proc_status",
    "arena_mem_stats",
    "record_arena_gauges",
    "mem_document",
    "write_mem_json",
]
