"""``repro.obs`` — tracing, metrics, and progress instrumentation.

A zero-dependency observability layer for the verification pipeline:

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` and associative snapshot merging (worker
  aggregation);
* :class:`Tracer` spans emitting a structured JSONL event log;
* :class:`ProgressReporter` heartbeat lines;
* exporters (JSON summary, Prometheus text, ``c stats:`` footer) and
  schema validators for both artifact kinds.

Instrumentation is strictly opt-in: every entry point takes
``obs: Obs | None = None`` and the disabled path never touches this
package (see :mod:`repro.obs.context`).
"""

from repro.obs.context import Obs
from repro.obs.export import (
    METRICS_FORMATS,
    metrics_document,
    prometheus_text,
    stats_footer,
    write_metrics_json,
    write_metrics_prometheus,
)
from repro.obs.progress import ProgressReporter
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    DEFAULT_WORK_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.schema import (
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    deterministic_view,
    validate_metrics,
    validate_trace,
)
from repro.obs.spans import Tracer, make_run_id, read_jsonl

__all__ = [
    "Obs",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "ProgressReporter",
    "metrics_document",
    "write_metrics_json",
    "write_metrics_prometheus",
    "prometheus_text",
    "stats_footer",
    "validate_metrics",
    "validate_trace",
    "deterministic_view",
    "read_jsonl",
    "make_run_id",
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "METRICS_FORMATS",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_WORK_BUCKETS",
]
