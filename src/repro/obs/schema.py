"""Artifact schemas for the observability layer, plus validators.

Two artifact kinds leave a verification run:

* a **metrics document** (``repro.obs.metrics/v1``) — one JSON object
  holding the run header, the registry snapshot, and the report's
  per-phase stats breakdown;
* a **trace log** (``repro.obs.trace/v1``) — JSONL, one event per line
  (see :mod:`repro.obs.spans`).

The validators are hand-rolled structural checks (no jsonschema
dependency) returning a list of human-readable problems — empty means
valid.  CI runs them over freshly produced artifacts so the schema
cannot drift silently; tests run them over round-tripped files.

Determinism contract
--------------------
Benchmark trend tracking and the determinism tests need a *stable*
subset of the metrics document: :func:`deterministic_view` strips

* the ``run`` header (ids, timings, hostnames are per-run by nature),
* the ``stats`` breakdown (wall-clock phase times),
* every time-valued metric (``*_seconds*``),

and, for parallel runs (``repro_verify_jobs > 1``), additionally every
scheduling-dependent metric: BCP work totals and per-check work
histograms vary with which worker (and hence which persistent root
trail) served each shard, as does the observed shard queue depth.
What survives is the same for every rerun of the same verification.
"""

from __future__ import annotations

METRICS_SCHEMA = "repro.obs.metrics/v1"
TRACE_SCHEMA = "repro.obs.trace/v1"

_EVENT_TYPES = ("header", "begin", "end", "event")

# Metric-name prefixes whose values depend on pool scheduling when the
# run used more than one worker process (see module docstring).
_SCHEDULING_DEPENDENT_PREFIXES = (
    "repro_bcp_",
    "repro_check_work",
    "repro_parallel_queue_depth",
)


def validate_metrics(doc) -> list[str]:
    """Structural problems of a metrics document (empty list: valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"metrics document must be a JSON object, "
                f"got {type(doc).__name__}"]
    if doc.get("schema") != METRICS_SCHEMA:
        problems.append(f"schema must be {METRICS_SCHEMA!r}, "
                        f"got {doc.get('schema')!r}")
    run = doc.get("run")
    if not isinstance(run, dict):
        problems.append("missing 'run' header object")
    else:
        if not isinstance(run.get("id"), str) or not run["id"]:
            problems.append("run.id must be a non-empty string")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("missing 'metrics' object")
        return problems
    for name, entry in metrics.items():
        where = f"metrics[{name!r}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} must be an object")
            continue
        kind = entry.get("kind")
        value = entry.get("value")
        if kind == "counter":
            if not isinstance(value, int) or value < 0:
                problems.append(
                    f"{where}: counter value must be a non-negative "
                    f"int, got {value!r}")
        elif kind == "gauge":
            if (not isinstance(value, dict)
                    or not isinstance(value.get("value"), (int, float))
                    or not isinstance(value.get("max"), (int, float))):
                problems.append(
                    f"{where}: gauge value must be "
                    "{'value': number, 'max': number}")
        elif kind == "histogram":
            problems.extend(_validate_histogram(where, value))
        else:
            problems.append(f"{where}: unknown kind {kind!r}")
    stats = doc.get("stats")
    if stats is not None and not isinstance(stats, dict):
        problems.append("'stats', when present, must be an object")
    return problems


def _validate_histogram(where: str, value) -> list[str]:
    if not isinstance(value, dict):
        return [f"{where}: histogram value must be an object"]
    problems = []
    buckets = value.get("buckets")
    counts = value.get("counts")
    if not isinstance(buckets, list) \
            or sorted(buckets) != buckets \
            or len(set(buckets)) != len(buckets):
        problems.append(f"{where}: buckets must be a strictly "
                        "increasing list")
    if not isinstance(counts, list) \
            or not all(isinstance(c, int) and c >= 0 for c in counts):
        problems.append(f"{where}: counts must be non-negative ints")
    elif isinstance(buckets, list) and len(counts) != len(buckets) + 1:
        problems.append(f"{where}: need len(buckets)+1 counts "
                        "(terminal +inf bucket)")
    count = value.get("count")
    if not isinstance(count, int) or count < 0:
        problems.append(f"{where}: count must be a non-negative int")
    elif isinstance(counts, list) and sum(
            c for c in counts if isinstance(c, int)) != count:
        problems.append(f"{where}: counts must sum to count")
    if not isinstance(value.get("sum"), (int, float)):
        problems.append(f"{where}: sum must be a number")
    return problems


def validate_trace(events) -> list[str]:
    """Structural problems of a trace event list (empty list: valid).

    Checks the header record, per-event required fields, monotone
    timestamps, one run id throughout, and begin/end pairing with
    proper nesting.
    """
    problems: list[str] = []
    if not events:
        return ["trace is empty (expected at least a header record)"]
    header = events[0]
    if header.get("type") != "header":
        problems.append("first record must be the header")
    elif header.get("schema") != TRACE_SCHEMA:
        problems.append(f"header schema must be {TRACE_SCHEMA!r}, "
                        f"got {header.get('schema')!r}")
    run_ids = {event.get("run") for event in events}
    if len(run_ids) != 1:
        problems.append(f"all events must share one run id, "
                        f"saw {sorted(map(str, run_ids))}")
    last_ts = None
    open_spans: dict[int, str] = {}
    for position, event in enumerate(events):
        where = f"event #{position}"
        etype = event.get("type")
        if etype not in _EVENT_TYPES:
            problems.append(f"{where}: unknown type {etype!r}")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: ts must be a number")
            continue
        if etype == "header":
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"{where}: timestamps must be "
                            f"non-decreasing ({ts} < {last_ts})")
        last_ts = ts
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing name")
        if not isinstance(event.get("attrs"), dict):
            problems.append(f"{where}: attrs must be an object")
        span = event.get("span")
        if etype == "begin":
            if not isinstance(span, int):
                problems.append(f"{where}: begin needs an int span id")
            elif span in open_spans:
                problems.append(f"{where}: span {span} begun twice")
            else:
                open_spans[span] = event.get("name", "")
        elif etype == "end":
            if span not in open_spans:
                problems.append(f"{where}: end of unopened span {span}")
            else:
                open_spans.pop(span)
            if not isinstance(event.get("dur"), (int, float)):
                problems.append(f"{where}: end needs a numeric dur")
    for span, name in open_spans.items():
        problems.append(f"span {span} ({name!r}) never ended")
    return problems


def deterministic_view(doc: dict) -> dict:
    """The rerun-stable subset of a metrics document (see module doc)."""
    metrics = doc.get("metrics", {})
    jobs_entry = metrics.get("repro_verify_jobs")
    parallel = bool(jobs_entry
                    and jobs_entry["value"].get("value", 1) > 1)
    kept = {}
    for name, entry in metrics.items():
        if "seconds" in name:
            continue
        if parallel and name.startswith(_SCHEDULING_DEPENDENT_PREFIXES):
            continue
        kept[name] = entry
    return {"schema": doc.get("schema"), "metrics": kept}
