"""Artifact schemas for the observability layer, plus validators.

Four artifact kinds leave a verification run:

* a **metrics document** (``repro.obs.metrics/v1``) — one JSON object
  holding the run header, the registry snapshot, and the report's
  per-phase stats breakdown;
* a **trace log** (``repro.obs.trace/v1``) — JSONL, one event per line
  (see :mod:`repro.obs.spans`);
* a **dependency graph** (``repro.obs.depgraph/v1``) — JSONL, one
  antecedent record per checked proof clause (see
  :mod:`repro.obs.insight.depgraph`);
* an **analytics document** (``repro.obs.analytics/v1``) — one JSON
  object with the proof-shape quantities of the paper's Section 5
  (see :mod:`repro.obs.insight.analytics`);
* a **checkpoint / resume token** (``repro.obs.checkpoint/v1``) — one
  JSON object recording a streaming verification's trace position,
  live clause window, and budget spend (see
  :mod:`repro.verify.streaming`); written atomically mid-run, deleted
  once a verdict is reached;
* a **timeline document** (``repro.obs.timeline/v1``) — one JSON
  object reconstructed from a trace log by ``repro obs timeline``:
  lanes, utilization, shard skew, critical path, attribution (see
  :mod:`repro.obs.timeline`);
* a **live status file** (``repro.obs.live/v1``) — one JSON object
  per in-flight run, atomically replaced on every progress beat and
  read by ``repro obs top`` (see :mod:`repro.obs.live`);
* a **memory telemetry document** (``repro.obs.mem/v1``) — one JSON
  object with the run's sampled RSS trajectory, peak summary, arena
  gauges, and optional tracemalloc phase attribution (see
  :mod:`repro.obs.mem`), written by ``--mem-out``.

:data:`KNOWN_SCHEMAS` maps each schema id to its validator;
:func:`validate_any` dispatches on a document's declared schema and
rejects unknown ids with a clear message rather than a ``KeyError``.

The validators are hand-rolled structural checks (no jsonschema
dependency) returning a list of human-readable problems — empty means
valid.  CI runs them over freshly produced artifacts so the schema
cannot drift silently; tests run them over round-tripped files.

Determinism contract
--------------------
Benchmark trend tracking and the determinism tests need a *stable*
subset of the metrics document: :func:`deterministic_view` strips

* the ``run`` header (ids, timings, hostnames are per-run by nature),
* the ``stats`` breakdown (wall-clock phase times),
* every time-valued metric (``*_seconds*``),

and, for parallel runs (``repro_verify_jobs > 1``), additionally every
scheduling-dependent metric: BCP work totals and per-check work
histograms vary with which worker (and hence which persistent root
trail) served each shard, as does the observed shard queue depth.
What survives is the same for every rerun of the same verification.
"""

from __future__ import annotations

METRICS_SCHEMA = "repro.obs.metrics/v1"
TRACE_SCHEMA = "repro.obs.trace/v1"
DEPGRAPH_SCHEMA = "repro.obs.depgraph/v1"
ANALYTICS_SCHEMA = "repro.obs.analytics/v1"
CHECKPOINT_SCHEMA = "repro.obs.checkpoint/v1"
TIMELINE_SCHEMA = "repro.obs.timeline/v1"
LIVE_SCHEMA = "repro.obs.live/v1"
MEM_SCHEMA = "repro.obs.mem/v1"

_EVENT_TYPES = ("header", "begin", "end", "event")

# Metric-name prefixes whose values depend on pool scheduling when the
# run used more than one worker process (see module docstring).
_SCHEDULING_DEPENDENT_PREFIXES = (
    "repro_bcp_",
    "repro_check_work",
    "repro_parallel_queue_depth",
)

# Measured-resource metrics (RSS samples, arena footprints): like the
# time-valued metrics, they are measurements of *this* execution, not
# properties of the configuration — never rerun-stable.
_MEASURED_RESOURCE_PREFIX = "repro_mem_"


def validate_metrics(doc) -> list[str]:
    """Structural problems of a metrics document (empty list: valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"metrics document must be a JSON object, "
                f"got {type(doc).__name__}"]
    if doc.get("schema") != METRICS_SCHEMA:
        problems.append(f"schema must be {METRICS_SCHEMA!r}, "
                        f"got {doc.get('schema')!r}")
    run = doc.get("run")
    if not isinstance(run, dict):
        problems.append("missing 'run' header object")
    else:
        if not isinstance(run.get("id"), str) or not run["id"]:
            problems.append("run.id must be a non-empty string")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("missing 'metrics' object")
        return problems
    for name, entry in metrics.items():
        where = f"metrics[{name!r}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} must be an object")
            continue
        kind = entry.get("kind")
        value = entry.get("value")
        if kind == "counter":
            if not isinstance(value, int) or value < 0:
                problems.append(
                    f"{where}: counter value must be a non-negative "
                    f"int, got {value!r}")
        elif kind == "gauge":
            if (not isinstance(value, dict)
                    or not isinstance(value.get("value"), (int, float))
                    or not isinstance(value.get("max"), (int, float))):
                problems.append(
                    f"{where}: gauge value must be "
                    "{'value': number, 'max': number}")
        elif kind == "histogram":
            problems.extend(_validate_histogram(where, value))
        else:
            problems.append(f"{where}: unknown kind {kind!r}")
    stats = doc.get("stats")
    if stats is not None and not isinstance(stats, dict):
        problems.append("'stats', when present, must be an object")
    return problems


def _validate_histogram(where: str, value) -> list[str]:
    if not isinstance(value, dict):
        return [f"{where}: histogram value must be an object"]
    problems = []
    buckets = value.get("buckets")
    counts = value.get("counts")
    if not isinstance(buckets, list) \
            or sorted(buckets) != buckets \
            or len(set(buckets)) != len(buckets):
        problems.append(f"{where}: buckets must be a strictly "
                        "increasing list")
    if not isinstance(counts, list) \
            or not all(isinstance(c, int) and c >= 0 for c in counts):
        problems.append(f"{where}: counts must be non-negative ints")
    elif isinstance(buckets, list) and len(counts) != len(buckets) + 1:
        problems.append(f"{where}: need len(buckets)+1 counts "
                        "(terminal +inf bucket)")
    count = value.get("count")
    if not isinstance(count, int) or count < 0:
        problems.append(f"{where}: count must be a non-negative int")
    elif isinstance(counts, list) and sum(
            c for c in counts if isinstance(c, int)) != count:
        problems.append(f"{where}: counts must sum to count")
    if not isinstance(value.get("sum"), (int, float)):
        problems.append(f"{where}: sum must be a number")
    return problems


def validate_trace(events) -> list[str]:
    """Structural problems of a trace event list (empty list: valid).

    Checks the header record, per-event required fields, monotone
    timestamps, one run id throughout, and begin/end pairing with
    proper nesting.
    """
    problems: list[str] = []
    if not events:
        return ["trace is empty (expected at least a header record)"]
    header = events[0]
    if header.get("type") != "header":
        problems.append("first record must be the header")
    elif header.get("schema") != TRACE_SCHEMA:
        problems.append(f"header schema must be {TRACE_SCHEMA!r}, "
                        f"got {header.get('schema')!r}")
    run_ids = {event.get("run") for event in events}
    if len(run_ids) != 1:
        problems.append(f"all events must share one run id, "
                        f"saw {sorted(map(str, run_ids))}")
    # Trace-context consistency: every event carrying a trace id must
    # agree (one process tree = one trace).  Traces written before the
    # field existed carry none at all — that stays valid.
    trace_ids = {event["trace"] for event in events
                 if event.get("trace")}
    if len(trace_ids) > 1:
        problems.append(f"all events must share one trace id, "
                        f"saw {sorted(trace_ids)}")
    last_ts = None
    open_spans: dict[int, str] = {}
    for position, event in enumerate(events):
        where = f"event #{position}"
        etype = event.get("type")
        if etype not in _EVENT_TYPES:
            problems.append(f"{where}: unknown type {etype!r}")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: ts must be a number")
            continue
        if etype == "header":
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"{where}: timestamps must be "
                            f"non-decreasing ({ts} < {last_ts})")
        last_ts = ts
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing name")
        if not isinstance(event.get("attrs"), dict):
            problems.append(f"{where}: attrs must be an object")
        span = event.get("span")
        if etype == "begin":
            if not isinstance(span, int):
                problems.append(f"{where}: begin needs an int span id")
            elif span in open_spans:
                problems.append(f"{where}: span {span} begun twice")
            else:
                open_spans[span] = event.get("name", "")
        elif etype == "end":
            if span not in open_spans:
                problems.append(f"{where}: end of unopened span {span}")
            else:
                open_spans.pop(span)
            if not isinstance(event.get("dur"), (int, float)):
                problems.append(f"{where}: end needs a numeric dur")
    for span, name in open_spans.items():
        problems.append(f"span {span} ({name!r}) never ended")
    return problems


def validate_depgraph(lines) -> list[str]:
    """Structural problems of a depgraph line list (empty: valid).

    Checks the header (schema id, structural meta), then every check
    record: int fields, sorted self-free antecedent lists, the cid
    arithmetic (``cid == num_input + index``), antecedents within the
    cid space and strictly below the checked clause (the graph is a
    DAG ordered by derivation), and at most one record per index.
    """
    problems: list[str] = []
    if not lines:
        return ["depgraph is empty (expected at least a header line)"]
    header = lines[0]
    if not isinstance(header, dict) or header.get("type") != "header":
        problems.append("first line must be the header record")
        header = {}
    elif header.get("schema") != DEPGRAPH_SCHEMA:
        problems.append(f"header schema must be {DEPGRAPH_SCHEMA!r}, "
                        f"got {header.get('schema')!r}")
    meta = header.get("meta") if isinstance(header.get("meta"), dict) \
        else {}
    if header and not isinstance(header.get("meta"), dict):
        problems.append("header must carry a 'meta' object")
    num_input = meta.get("num_input")
    num_proof = meta.get("num_proof")
    for key in ("num_input", "num_proof", "jobs"):
        if meta and not isinstance(meta.get(key), int):
            problems.append(f"meta.{key} must be an int, "
                            f"got {meta.get(key)!r}")
    for key in ("procedure", "mode"):
        if meta and not isinstance(meta.get(key), str):
            problems.append(f"meta.{key} must be a string")
    seen_indices: set[int] = set()
    for position, record in enumerate(lines[1:], start=1):
        where = f"line #{position}"
        if not isinstance(record, dict):
            problems.append(f"{where}: must be a JSON object")
            continue
        if record.get("type") != "check":
            problems.append(f"{where}: unknown type "
                            f"{record.get('type')!r}")
            continue
        index = record.get("index")
        cid = record.get("cid")
        antecedents = record.get("antecedents")
        if not isinstance(index, int) or index < 0:
            problems.append(f"{where}: index must be a non-negative int")
            continue
        if index in seen_indices:
            problems.append(f"{where}: duplicate record for index "
                            f"{index}")
        seen_indices.add(index)
        if isinstance(num_proof, int) and index >= num_proof:
            problems.append(f"{where}: index {index} out of range "
                            f"(num_proof={num_proof})")
        if not isinstance(cid, int):
            problems.append(f"{where}: cid must be an int")
        elif isinstance(num_input, int) and cid != num_input + index:
            problems.append(f"{where}: cid {cid} != num_input + index "
                            f"({num_input} + {index})")
        if not isinstance(antecedents, list) \
                or not all(isinstance(a, int) for a in antecedents):
            problems.append(f"{where}: antecedents must be a list of "
                            "ints")
            continue
        if sorted(set(antecedents)) != antecedents:
            problems.append(f"{where}: antecedents must be sorted and "
                            "duplicate-free")
        if isinstance(cid, int):
            above = [a for a in antecedents if a >= cid]
            if above:
                problems.append(
                    f"{where}: antecedents {above} not strictly below "
                    f"the checked clause (cid {cid}) — the graph must "
                    "be a derivation-ordered DAG")
        props = record.get("props")
        if props is not None and (not isinstance(props, int)
                                  or props < 0):
            problems.append(f"{where}: props must be null or a "
                            "non-negative int")
    return problems


_ANALYTICS_INT_FIELDS = (
    "num_proof_clauses", "proof_literals", "checked", "skipped",
    "local_clauses", "global_clauses", "estimated_resolution_nodes",
    "max_antecedents", "max_chain_depth",
)


def validate_analytics(doc) -> list[str]:
    """Structural problems of an analytics document (empty: valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"analytics document must be a JSON object, "
                f"got {type(doc).__name__}"]
    if doc.get("schema") != ANALYTICS_SCHEMA:
        problems.append(f"schema must be {ANALYTICS_SCHEMA!r}, "
                        f"got {doc.get('schema')!r}")
    if not isinstance(doc.get("run"), dict):
        problems.append("missing 'run' header object")
    shape = doc.get("analytics")
    if not isinstance(shape, dict):
        problems.append("missing 'analytics' object")
        return problems
    for key in _ANALYTICS_INT_FIELDS:
        value = shape.get(key)
        if not isinstance(value, int) or value < 0:
            problems.append(f"analytics.{key} must be a non-negative "
                            f"int, got {value!r}")
    fraction = shape.get("marked_fraction")
    if not isinstance(fraction, (int, float)) \
            or not 0.0 <= fraction <= 1.0:
        problems.append("analytics.marked_fraction must be a number "
                        f"in [0, 1], got {fraction!r}")
    if isinstance(shape.get("local_clauses"), int) \
            and isinstance(shape.get("global_clauses"), int) \
            and isinstance(shape.get("checked"), int) \
            and shape["local_clauses"] + shape["global_clauses"] \
            != shape["checked"]:
        problems.append("local_clauses + global_clauses must equal "
                        "checked")
    depths = shape.get("antecedent_chain_depths")
    if not isinstance(depths, dict) \
            or not all(isinstance(count, int) and count >= 0
                       and key.isdigit()
                       for key, count in depths.items()):
        problems.append("analytics.antecedent_chain_depths must map "
                        "digit strings to non-negative ints")
    for key in ("core_size", "core_fraction"):
        value = shape.get(key)
        if value is not None and not isinstance(value, (int, float)):
            problems.append(f"analytics.{key} must be null or a number")
    return problems


def validate_checkpoint(doc) -> list[str]:
    """Structural problems of a streaming resume token (empty: valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"checkpoint must be a JSON object, "
                f"got {type(doc).__name__}"]
    if doc.get("schema") != CHECKPOINT_SCHEMA:
        problems.append(f"schema must be {CHECKPOINT_SCHEMA!r}, "
                        f"got {doc.get('schema')!r}")
    for key in ("offset", "next_line", "next_index", "additions",
                "deletions", "peak_live_clauses", "window_shifts"):
        value = doc.get(key)
        if not isinstance(value, int) or value < 0:
            problems.append(f"{key} must be a non-negative int, "
                            f"got {value!r}")
    for key in ("formula_sha256", "proof_sha256", "engine"):
        if not isinstance(doc.get(key), str) or not doc[key]:
            problems.append(f"{key} must be a non-empty string")
    deleted = doc.get("deleted_formula_indices")
    if not isinstance(deleted, list) \
            or not all(isinstance(i, int) and i >= 0 for i in deleted):
        problems.append("deleted_formula_indices must be a list of "
                        "non-negative ints")
    live = doc.get("live_additions")
    if not isinstance(live, list) \
            or not all(isinstance(lits, list)
                       and all(isinstance(lit, int) and lit != 0
                               for lit in lits)
                       for lits in live):
        problems.append("live_additions must be a list of clauses "
                        "(lists of non-zero int literals)")
    spent = doc.get("budget_spent")
    if not isinstance(spent, dict) \
            or not isinstance(spent.get("props"), int) \
            or not isinstance(spent.get("seconds"), (int, float)):
        problems.append("budget_spent must be "
                        "{'props': int, 'seconds': number}")
    return problems


def validate_timeline(doc) -> list[str]:
    """Structural problems of a timeline document (empty: valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"timeline document must be a JSON object, "
                f"got {type(doc).__name__}"]
    if doc.get("schema") != TIMELINE_SCHEMA:
        problems.append(f"schema must be {TIMELINE_SCHEMA!r}, "
                        f"got {doc.get('schema')!r}")
    window = doc.get("window")
    if (not isinstance(window, dict)
            or not all(isinstance(window.get(k), (int, float))
                       for k in ("begin", "end", "wall"))):
        problems.append("window must be {'begin','end','wall': number}")
    elif window["end"] < window["begin"]:
        problems.append("window.end must be >= window.begin")
    spans = doc.get("spans")
    if not isinstance(spans, list):
        problems.append("missing 'spans' list")
        spans = []
    keys = set()
    ids = set()
    for position, span in enumerate(spans):
        where = f"spans[{position}]"
        if not isinstance(span, dict):
            problems.append(f"{where} must be an object")
            continue
        for field in ("key", "name", "worker"):
            if not isinstance(span.get(field), str):
                problems.append(f"{where}.{field} must be a string")
        for field in ("begin", "end", "dur"):
            if not isinstance(span.get(field), (int, float)):
                problems.append(f"{where}.{field} must be a number")
        key = span.get("key")
        if key in keys:
            problems.append(f"{where}: duplicate span key {key!r}")
        keys.add(key)
        span_id = span.get("id")
        if span_id in ids:
            problems.append(f"{where}: duplicate span id {span_id!r}")
        ids.add(span_id)
    for position, span in enumerate(spans):
        if not isinstance(span, dict):
            continue
        parent = span.get("parent")
        if parent is not None and parent not in ids:
            problems.append(f"spans[{position}]: orphaned span "
                            f"(parent {parent!r} not in timeline)")
    workers = doc.get("workers")
    if not isinstance(workers, list):
        problems.append("missing 'workers' list")
        workers = []
    for position, row in enumerate(workers):
        where = f"workers[{position}]"
        if not isinstance(row, dict):
            problems.append(f"{where} must be an object")
            continue
        utilization = row.get("utilization")
        if (not isinstance(utilization, (int, float))
                or not 0.0 <= utilization <= 1.0 + 1e-9):
            problems.append(f"{where}.utilization must be a number "
                            f"in [0, 1], got {utilization!r}")
        if not isinstance(row.get("gaps"), list):
            problems.append(f"{where}.gaps must be a list")
    utilization = doc.get("utilization")
    if utilization is not None and (
            not isinstance(utilization, (int, float))
            or not 0.0 <= utilization <= 1.0 + 1e-9):
        problems.append("utilization must be null or a number in "
                        f"[0, 1], got {utilization!r}")
    path = doc.get("critical_path")
    if not isinstance(path, list):
        problems.append("missing 'critical_path' list")
        path = []
    for position, entry in enumerate(path):
        where = f"critical_path[{position}]"
        if not isinstance(entry, dict) \
                or not isinstance(entry.get("key"), str) \
                or not isinstance(entry.get("self"), (int, float)):
            problems.append(f"{where} must carry a string key and "
                            "numeric self time")
        elif entry["key"] not in keys:
            problems.append(f"{where}: key {entry['key']!r} not in "
                            "spans")
    if not isinstance(doc.get("critical_path_wall"), (int, float)):
        problems.append("critical_path_wall must be a number")
    attribution = doc.get("attribution")
    if attribution is not None:
        if not isinstance(attribution, dict) \
                or not isinstance(attribution.get("shards"), list) \
                or not isinstance(attribution.get("top_stragglers"),
                                  list):
            problems.append("attribution, when present, must carry "
                            "'shards' and 'top_stragglers' lists")
        else:
            for position, row in enumerate(attribution["shards"]):
                where = f"attribution.shards[{position}]"
                if not isinstance(row, dict) \
                        or not isinstance(row.get("wall"),
                                          (int, float)):
                    problems.append(f"{where} must carry a numeric "
                                    "wall time")
    dropped = doc.get("dropped")
    if (not isinstance(dropped, dict)
            or not all(isinstance(dropped.get(k), int)
                       for k in ("duplicates", "orphans", "open"))):
        problems.append("dropped must be {'duplicates','orphans',"
                        "'open': int}")
    return problems


def validate_live(doc) -> list[str]:
    """Structural problems of a live status file (empty: valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"live status must be a JSON object, "
                f"got {type(doc).__name__}"]
    if doc.get("schema") != LIVE_SCHEMA:
        problems.append(f"schema must be {LIVE_SCHEMA!r}, "
                        f"got {doc.get('schema')!r}")
    if not isinstance(doc.get("run"), str) or not doc.get("run"):
        problems.append("run must be a non-empty string")
    if doc.get("state") not in ("running", "done"):
        problems.append(f"state must be 'running' or 'done', "
                        f"got {doc.get('state')!r}")
    for key in ("done", "total", "pid"):
        value = doc.get(key)
        if not isinstance(value, int) or value < 0:
            problems.append(f"{key} must be a non-negative int, "
                            f"got {value!r}")
    for key in ("elapsed", "updated"):
        if not isinstance(doc.get(key), (int, float)):
            problems.append(f"{key} must be a number")
    for key in ("eta", "rate"):
        value = doc.get(key)
        if value is not None and not isinstance(value, (int, float)):
            problems.append(f"{key} must be null or a number")
    if not isinstance(doc.get("meta"), dict):
        problems.append("meta must be an object")
    mem = doc.get("mem")
    if mem is not None:
        if not isinstance(mem, dict):
            problems.append("mem, when present, must be null or an "
                            "object")
        else:
            for key in ("rss_bytes", "peak_rss_bytes"):
                value = mem.get(key)
                if not isinstance(value, int) or value < 0:
                    problems.append(f"mem.{key} must be a non-negative "
                                    f"int, got {value!r}")
            if not isinstance(mem.get("updated"), (int, float)):
                problems.append("mem.updated must be a number")
    return problems


_MEM_SOURCES = ("proc", "getrusage", None)


def validate_mem(doc) -> list[str]:
    """Structural problems of a memory telemetry document (empty:
    valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"mem document must be a JSON object, "
                f"got {type(doc).__name__}"]
    if doc.get("schema") != MEM_SCHEMA:
        problems.append(f"schema must be {MEM_SCHEMA!r}, "
                        f"got {doc.get('schema')!r}")
    if not isinstance(doc.get("run"), dict):
        problems.append("missing 'run' header object")
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        problems.append("missing 'summary' object")
        summary = {}
    else:
        for key in ("peak_rss_bytes", "rss_bytes"):
            value = summary.get(key)
            if value is not None \
                    and (not isinstance(value, int) or value < 0):
                problems.append(f"summary.{key} must be null or a "
                                f"non-negative int, got {value!r}")
        for key in ("num_samples", "sampler_failures"):
            value = summary.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(f"summary.{key} must be a non-negative "
                                f"int, got {value!r}")
        if summary.get("source") not in _MEM_SOURCES:
            problems.append(
                f"summary.source must be one of "
                f"{[s for s in _MEM_SOURCES if s]} or null, "
                f"got {summary.get('source')!r}")
        if not isinstance(summary.get("sampler_dead"), bool):
            problems.append("summary.sampler_dead must be a bool")
    samples = doc.get("samples")
    if not isinstance(samples, list):
        problems.append("missing 'samples' list")
        samples = []
    last_ts = None
    for position, sample in enumerate(samples):
        where = f"samples[{position}]"
        if not isinstance(sample, dict):
            problems.append(f"{where} must be an object")
            continue
        ts = sample.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}.ts must be a number")
        else:
            if last_ts is not None and ts < last_ts:
                problems.append(f"{where}: timestamps must be "
                                f"non-decreasing ({ts} < {last_ts})")
            last_ts = ts
        for key in ("rss_bytes", "peak_rss_bytes"):
            value = sample.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(f"{where}.{key} must be a non-negative "
                                f"int, got {value!r}")
    if isinstance(summary.get("num_samples"), int) \
            and summary["num_samples"] != len(samples):
        problems.append(f"summary.num_samples "
                        f"({summary['num_samples']}) must equal "
                        f"len(samples) ({len(samples)})")
    arena = doc.get("arena")
    if arena is not None:
        if not isinstance(arena, dict):
            problems.append("arena, when present, must be an object")
        else:
            for key in ("pool_bytes", "live_bytes", "watch_entries"):
                value = arena.get(key)
                if not isinstance(value, int) or value < 0:
                    problems.append(f"arena.{key} must be a "
                                    f"non-negative int, got {value!r}")
            frag = arena.get("fragmentation")
            if not isinstance(frag, (int, float)) \
                    or not 0.0 <= frag <= 1.0:
                problems.append("arena.fragmentation must be a number "
                                f"in [0, 1], got {frag!r}")
    profile = doc.get("tracemalloc")
    if profile is not None:
        if not isinstance(profile, dict) \
                or not isinstance(profile.get("phases"), dict) \
                or not isinstance(profile.get("top"), list):
            problems.append("tracemalloc, when present, must carry "
                            "'phases' and 'top'")
        else:
            for position, entry in enumerate(profile["top"]):
                where = f"tracemalloc.top[{position}]"
                if not isinstance(entry, dict) \
                        or not isinstance(entry.get("site"), str) \
                        or not isinstance(entry.get("size_bytes"), int):
                    problems.append(f"{where} must carry a string site "
                                    "and int size_bytes")
    return problems


# Schema id -> (artifact kind, validator).  JSONL kinds take the parsed
# line list; JSON kinds take the single document object.
KNOWN_SCHEMAS = {
    METRICS_SCHEMA: ("json", validate_metrics),
    TRACE_SCHEMA: ("jsonl", validate_trace),
    DEPGRAPH_SCHEMA: ("jsonl", validate_depgraph),
    ANALYTICS_SCHEMA: ("json", validate_analytics),
    CHECKPOINT_SCHEMA: ("json", validate_checkpoint),
    TIMELINE_SCHEMA: ("json", validate_timeline),
    LIVE_SCHEMA: ("json", validate_live),
    MEM_SCHEMA: ("json", validate_mem),
}


def declared_schema(artifact) -> str | None:
    """The schema id an artifact declares (header line for JSONL)."""
    if isinstance(artifact, dict):
        return artifact.get("schema")
    if isinstance(artifact, list) and artifact \
            and isinstance(artifact[0], dict):
        return artifact[0].get("schema")
    return None


def validate_any(artifact) -> list[str]:
    """Validate by the artifact's declared schema id.

    Unknown (or missing) schema ids are a validation problem with a
    message naming the known ids — never a ``KeyError``.
    """
    schema = declared_schema(artifact)
    if schema not in KNOWN_SCHEMAS:
        known = ", ".join(sorted(KNOWN_SCHEMAS))
        return [f"unknown schema id {schema!r}; known schemas: {known}"]
    kind, validator = KNOWN_SCHEMAS[schema]
    if kind == "json" and not isinstance(artifact, dict):
        return [f"{schema} artifacts are single JSON objects, "
                f"got {type(artifact).__name__}"]
    return validator(artifact)


def deterministic_view(doc: dict) -> dict:
    """The rerun-stable subset of a metrics document (see module doc)."""
    metrics = doc.get("metrics", {})
    jobs_entry = metrics.get("repro_verify_jobs")
    parallel = bool(jobs_entry
                    and jobs_entry["value"].get("value", 1) > 1)
    kept = {}
    for name, entry in metrics.items():
        if "seconds" in name:
            continue
        if name.startswith(_MEASURED_RESOURCE_PREFIX):
            continue
        if parallel and name.startswith(_SCHEDULING_DEPENDENT_PREFIXES):
            continue
        kept[name] = entry
    return {"schema": doc.get("schema"), "metrics": kept}
