"""Measured memory telemetry: RSS sampling, arena gauges, tracemalloc.

Everything else in ``repro.obs`` counts *work*; this module measures
what the work *costs in resident memory* — the quantity that actually
kills industrial proof checking (DRAT-trim-style checkers are
memory-bound long before they are CPU-bound).  Three layers:

* :func:`read_rss` — the process's current and peak resident set, from
  ``/proc/self/status`` (``VmRSS``/``VmHWM``) with a
  ``resource.getrusage`` fallback on platforms without procfs.  One
  read is a single small file open — cheap enough to ride the progress
  heartbeat.
* :class:`MemSampler` — accumulates samples into a bounded buffer,
  publishes ``repro_mem_*`` gauges, and stamps each sample as a
  ``mem_sample`` trace event (so samples carry the cross-process trace
  context and land on the ``repro obs timeline`` memory lane).  An
  optional background thread samples at a fixed period for runs whose
  heartbeat is too coarse.  **A sampler failure can never affect a
  verdict**: every read is guarded, and after a few consecutive
  failures the sampler declares itself dead and goes quiet.
* :func:`arena_mem_stats` — engine-native gauges from the clause
  arena (pool bytes, live vs tombstoned occupancy, fragmentation,
  watch-table entries), turning the streaming budget's *estimated*
  bytes into numbers that can be cross-checked against measured RSS.

The artifact (`repro.obs.mem/v1`, ``--mem-out``) is one JSON document:
``{schema, run, summary, samples, arena, tracemalloc}``; tracemalloc
phase attribution is opt-in (``--mem-profile``) because tracing
allocations is the one genuinely expensive facility here.
"""

from __future__ import annotations

import os
import threading
import time

MEM_SCHEMA = "repro.obs.mem/v1"

PROC_STATUS_PATH = "/proc/self/status"
CLEAR_REFS_PATH = "/proc/self/clear_refs"

#: Sample-buffer cap: past this the buffer is thinned by dropping
#: every other sample, so an arbitrarily long run keeps a bounded,
#: roughly uniform sample of its memory trajectory.
MAX_SAMPLES = 4096

#: Consecutive read failures after which the sampler declares itself
#: dead (stops trying, stops beating) instead of retrying forever.
MAX_CONSECUTIVE_FAILURES = 5


def parse_proc_status(text: str) -> dict:
    """Extract ``VmRSS``/``VmHWM`` (in bytes) from ``/proc/<pid>/status``
    text.  Missing fields are simply absent from the result — the
    caller decides whether that is fatal."""
    result: dict = {}
    fields = {"VmRSS": "rss_bytes", "VmHWM": "peak_rss_bytes"}
    for line in text.splitlines():
        name, _, rest = line.partition(":")
        key = fields.get(name.strip())
        if key is None:
            continue
        parts = rest.split()
        if not parts:
            continue
        try:
            value = int(parts[0])
        except ValueError:
            continue
        # The kernel always reports these in kB.
        result[key] = value * 1024
    return result


def read_rss(proc_status_path: str = PROC_STATUS_PATH,
             ) -> tuple[int, int, str] | None:
    """``(rss_bytes, peak_rss_bytes, source)`` for this process.

    Prefers ``/proc/self/status`` (current *and* peak); falls back to
    ``resource.getrusage`` (peak only — ``ru_maxrss`` is KiB on
    Linux — so current is reported equal to peak).  Returns ``None``
    when neither source works.
    """
    try:
        with open(proc_status_path, encoding="ascii",
                  errors="replace") as handle:
            parsed = parse_proc_status(handle.read())
        if "rss_bytes" in parsed:
            return (parsed["rss_bytes"],
                    parsed.get("peak_rss_bytes", parsed["rss_bytes"]),
                    "proc")
    except OSError:
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if peak > 0:
            # Linux reports KiB; macOS reports bytes.  Treat values
            # that are implausibly large for KiB (> 16 TiB) as bytes.
            peak_bytes = peak * 1024 if peak < 2 ** 44 else peak
            return (peak_bytes, peak_bytes, "getrusage")
    except (ImportError, OSError, ValueError):
        pass
    return None


def reset_peak_rss(clear_refs_path: str = CLEAR_REFS_PATH) -> bool:
    """Reset the kernel's peak-RSS watermark (``VmHWM``) for this
    process, so a subsequent :func:`read_rss` peak is attributable to
    the work since the reset — the trick the benchmark harness uses to
    get per-variant peaks out of one process.  Linux-only (writing
    ``5`` to ``/proc/self/clear_refs``); returns False where
    unsupported, in which case peaks are cumulative."""
    try:
        with open(clear_refs_path, "w") as handle:
            handle.write("5")
        return True
    except OSError:
        return False


class MemSampler:
    """Samples process RSS into metrics, trace events, and a buffer.

    ``metrics``/``tracer`` are the sinks (either may be None);
    ``reader`` is the RSS source (:func:`read_rss`, injectable for
    tests).  :meth:`sample` never raises: failures are counted and
    past :data:`MAX_CONSECUTIVE_FAILURES` the sampler marks itself
    ``dead`` — the run's verdict and exit code are unaffected, and
    ``repro obs top`` surfaces the silence as staleness.
    """

    def __init__(self, metrics=None, tracer=None, reader=read_rss,
                 wall=time.time):
        self.metrics = metrics
        self.tracer = tracer
        self._reader = reader
        self._wall = wall
        self.samples: list[dict] = []
        self.source: str | None = None
        self.failures = 0
        self._consecutive_failures = 0
        self.dead = False
        self.last_beat: float | None = None
        self._peak = 0
        self._last_rss = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    def bind(self, metrics, tracer) -> None:
        """Late-wire the sinks (the Obs bundle owns them)."""
        if self.metrics is None:
            self.metrics = metrics
        if self.tracer is None:
            self.tracer = tracer

    # -- sampling ----------------------------------------------------------

    def sample(self) -> dict | None:
        """Take one sample; swallow every failure."""
        if self.dead:
            return None
        try:
            reading = self._reader()
        except Exception:
            reading = None
        if reading is None:
            self.failures += 1
            self._consecutive_failures += 1
            if self._consecutive_failures >= MAX_CONSECUTIVE_FAILURES:
                self.dead = True
            return None
        self._consecutive_failures = 0
        rss, peak, source = reading
        now = self._wall()
        entry = {"ts": now, "rss_bytes": rss, "peak_rss_bytes": peak}
        with self._lock:
            self.source = source
            self.last_beat = now
            self._last_rss = rss
            if peak > self._peak:
                self._peak = peak
            self.samples.append(entry)
            if len(self.samples) > MAX_SAMPLES:
                self.samples = self.samples[::2]
        try:
            if self.metrics is not None:
                self.metrics.gauge(
                    "repro_mem_rss_bytes",
                    help="Sampled resident set size").set(rss)
                self.metrics.gauge(
                    "repro_mem_peak_rss_bytes",
                    help="OS-reported peak resident set size").set(peak)
            if self.tracer is not None:
                self.tracer.event("mem_sample", rss_bytes=rss,
                                  peak_rss_bytes=peak, source=source)
        except Exception:
            self.failures += 1
        return entry

    # -- background thread -------------------------------------------------

    def start(self, period: float) -> None:
        """Sample every ``period`` seconds on a daemon thread, for
        runs whose progress heartbeat is too coarse (or absent).  The
        thread swallows everything: its death is invisible to the
        verification outcome."""
        if self._thread is not None:
            return
        self._stop.clear()

        def _loop() -> None:
            try:
                while not self._stop.wait(period):
                    self.sample()
                    if self.dead:
                        break
            except Exception:
                self.dead = True

        self._thread = threading.Thread(
            target=_loop, name="repro-mem-sampler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None

    # -- views -------------------------------------------------------------

    @property
    def peak_rss_bytes(self) -> int | None:
        return self._peak or None

    @property
    def rss_bytes(self) -> int | None:
        return self._last_rss or None

    def live_view(self) -> dict | None:
        """The compact per-beat record the live status file embeds."""
        if self.last_beat is None:
            return None
        return {"rss_bytes": self._last_rss,
                "peak_rss_bytes": self._peak,
                "updated": self.last_beat}

    def summary(self) -> dict:
        return {"peak_rss_bytes": self.peak_rss_bytes,
                "rss_bytes": self.rss_bytes,
                "num_samples": len(self.samples),
                "source": self.source,
                "sampler_failures": self.failures,
                "sampler_dead": self.dead}


# -- arena-native gauges ---------------------------------------------------

def arena_mem_stats(engine) -> dict | None:
    """Engine-native memory accounting for arena-backed BCP engines.

    Duck-typed on the :class:`~repro.bcp.arena.ArenaPropagator`
    surface (the vector kernel shares it): the arena's flat pool plus
    the watch tables.  Returns ``None`` for engines without an arena
    (watched/counting keep per-clause Python lists — there is no flat
    pool to measure)."""
    arena = getattr(engine, "arena", None)
    if arena is None or not hasattr(arena, "live_words"):
        return None
    pool = arena.pool
    itemsize = getattr(pool, "itemsize", 4)
    pool_words = len(pool)
    watch_entries = 0
    for attr in ("watch_cids", "watch_blockers"):
        lists = getattr(engine, attr, None)
        if lists is not None:
            watch_entries += sum(len(entry) for entry in lists)
    return {
        "pool_bytes": pool_words * itemsize,
        "live_bytes": arena.live_bytes(),
        "live_clauses": arena.live_clauses,
        "num_clauses": arena.num_clauses,
        "dead_words": arena.dead_words,
        "fragmentation": (arena.dead_words / pool_words
                          if pool_words else 0.0),
        "watch_entries": watch_entries,
        "watch_bytes": watch_entries * itemsize,
    }


def record_arena_gauges(obs, engine) -> dict | None:
    """Publish :func:`arena_mem_stats` as ``repro_mem_arena_*`` gauges
    (max-merged across workers like every gauge)."""
    if obs is None or obs.metrics is None:
        return None
    stats = arena_mem_stats(engine)
    if stats is None:
        return None
    obs.gauge_set("repro_mem_arena_pool_bytes", stats["pool_bytes"],
                  help="Clause-arena pool footprint")
    obs.gauge_set("repro_mem_arena_live_bytes", stats["live_bytes"],
                  help="Live (non-tombstoned) arena bytes")
    obs.gauge_set("repro_mem_arena_fragmentation",
                  stats["fragmentation"],
                  help="Tombstoned fraction of the arena pool")
    obs.gauge_set("repro_mem_watch_entries", stats["watch_entries"],
                  help="Watch-table entries across all literals")
    return stats


# -- tracemalloc phase attribution ----------------------------------------

class MemProfiler:
    """Optional tracemalloc-backed phase attribution (``--mem-profile``).

    Allocation tracing is the one expensive facility in this module
    (every allocation takes a traceback), so it is off by default and
    gated behind an explicit flag; the measured overhead is recorded
    by the benchmark harness alongside the sampler's.  Phase marks
    record the traced current/peak at span boundaries and reset the
    traced peak, so each phase's peak is its own."""

    def __init__(self, top: int = 10):
        self.top = top
        self.phases: dict[str, dict] = {}
        self.top_allocations: list[dict] = []
        self.active = False

    def start(self) -> None:
        try:
            import tracemalloc

            tracemalloc.start()
            self.active = True
        except Exception:
            self.active = False

    def mark(self, phase: str) -> None:
        """Record the traced current/peak against ``phase`` and reset
        the peak for the next one."""
        if not self.active:
            return
        try:
            import tracemalloc

            current, peak = tracemalloc.get_traced_memory()
            entry = self.phases.setdefault(
                phase, {"current_bytes": 0, "peak_bytes": 0})
            entry["current_bytes"] = current
            entry["peak_bytes"] = max(entry["peak_bytes"], peak)
            tracemalloc.reset_peak()
        except Exception:
            pass

    def stop(self) -> None:
        if not self.active:
            return
        try:
            import tracemalloc

            snapshot = tracemalloc.take_snapshot()
            stats = snapshot.statistics("lineno")[:self.top]
            self.top_allocations = [
                {"site": f"{stat.traceback[0].filename}:"
                         f"{stat.traceback[0].lineno}",
                 "size_bytes": stat.size, "count": stat.count}
                for stat in stats]
            tracemalloc.stop()
        except Exception:
            pass
        self.active = False

    def document(self) -> dict | None:
        if not self.phases and not self.top_allocations:
            return None
        return {"phases": self.phases, "top": self.top_allocations}


# -- the artifact ----------------------------------------------------------

def mem_document(sampler: MemSampler, run: dict,
                 arena: dict | None = None,
                 profile: MemProfiler | None = None) -> dict:
    """The ``repro.obs.mem/v1`` document for ``--mem-out``."""
    return {
        "schema": MEM_SCHEMA,
        "run": dict(run),
        "summary": sampler.summary(),
        "samples": list(sampler.samples),
        "arena": arena,
        "tracemalloc": (profile.document()
                        if profile is not None else None),
    }


def write_mem_json(path, sampler: MemSampler, run: dict,
                   arena: dict | None = None,
                   profile: MemProfiler | None = None) -> dict:
    import json

    from repro.obs.export import atomic_write_text

    doc = mem_document(sampler, run, arena=arena, profile=profile)
    atomic_write_text(path, json.dumps(doc, indent=2, sort_keys=True)
                      + "\n")
    return doc
