"""Exporters: JSON summary, Prometheus text format, human footer.

Three consumers, three formats, one registry snapshot:

* :func:`metrics_document` / :func:`write_metrics_json` — the JSON
  summary the CLI writes for ``--metrics-out`` and the benchmarks embed
  in ``BENCH_verification.json`` (schema ``repro.obs.metrics/v1``);
* :func:`prometheus_text` — the Prometheus exposition text format, for
  scraping or pushing from a long-running verification service;
* :func:`stats_footer` — the human ``c stats:`` lines the CLI prints
  with ``--stats`` (DIMACS-style comment lines, like DRAT-trim's
  verbose statistics).

Every file-producing exporter goes through :func:`atomic_write_text`
(write ``path.tmp``, then ``os.replace``): a reader never observes a
truncated artifact, and an interrupted run (KeyboardInterrupt, budget
exhaustion) leaves either the previous artifact or a complete new one.

:func:`collapsed_stack_text` serves the ``--profile`` hook: it folds a
:class:`cProfile.Profile` into the ``frame;frame;frame weight`` lines
``flamegraph.pl`` and speedscope consume.
"""

from __future__ import annotations

import json
import os
import pstats

from repro.obs.registry import MetricsRegistry
from repro.obs.schema import METRICS_SCHEMA

METRICS_FORMATS = ("json", "prometheus")


def atomic_write_text(path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (``path.tmp`` + replace).

    The temp file lives next to the target so ``os.replace`` stays a
    same-filesystem rename; a failure mid-write leaves the target
    untouched and removes the temp file.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def metrics_document(registry: MetricsRegistry, run: dict,
                     stats: dict | None = None) -> dict:
    """Assemble the JSON metrics document from a registry snapshot.

    ``run`` is the per-run header (id, command, elapsed wall time...);
    ``stats`` is the report's per-phase breakdown, embedded verbatim so
    one artifact carries the whole picture.
    """
    doc = {"schema": METRICS_SCHEMA, "run": dict(run),
           "metrics": registry.snapshot()}
    if stats is not None:
        doc["stats"] = dict(stats)
    return doc


def write_metrics_json(path, registry: MetricsRegistry, run: dict,
                       stats: dict | None = None) -> dict:
    doc = metrics_document(registry, run, stats)
    atomic_write_text(path, json.dumps(doc, indent=2, sort_keys=True)
                      + "\n")
    return doc


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) \
            and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def sanitize_metric_name(name: str) -> str:
    """Coerce a name into the Prometheus charset
    ``[a-zA-Z_:][a-zA-Z0-9_:]*``.

    Invalid characters become ``_``; a leading digit gets a ``_``
    prefix; an empty name becomes ``_``.  The registry doesn't
    restrict names (library users put dots and dashes in theirs), so
    the exporter owns the coercion — scrapers reject a whole
    exposition over one bad name.
    """
    cleaned = "".join(
        ch if (ch.isascii() and (ch.isalnum() or ch in "_:"))
        else "_" for ch in name)
    if not cleaned:
        return "_"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def escape_help_text(text: str) -> str:
    """Escape a ``# HELP`` line per the exposition format: backslash
    and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash,
    double quote, newline."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus exposition text format.

    Histograms follow the convention: cumulative ``_bucket`` series
    with ``le`` labels (ending at ``le="+Inf"``), plus ``_sum`` and
    ``_count``.  Gauge maxima are exported as a sibling ``_max``
    gauge.  Names are sanitized into the Prometheus charset, counters
    get the conventional ``_total`` suffix if they lack one, and HELP
    text is escaped — one odd metric must not invalidate the whole
    exposition.
    """
    lines: list[str] = []
    for metric in registry:
        name = sanitize_metric_name(metric.name)
        if metric.kind == "counter" and not name.endswith("_total"):
            name += "_total"
        if metric.help:
            lines.append(
                f"# HELP {name} {escape_help_text(metric.help)}")
        if metric.kind == "counter":
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {metric.value}")
        elif metric.kind == "gauge":
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(metric.value)}")
            snap = metric.snapshot()
            lines.append(f"# TYPE {name}_max gauge")
            lines.append(f"{name}_max {_format_value(snap['max'])}")
        elif metric.kind == "histogram":
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(metric.buckets, metric.counts):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{_format_value(float(bound))}"}}'
                    f" {cumulative}")
            cumulative += metric.counts[-1]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {_format_value(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
    return "\n".join(lines) + "\n"


def write_metrics_prometheus(path, registry: MetricsRegistry) -> None:
    atomic_write_text(path, prometheus_text(registry))


def _frame_name(func: tuple) -> str:
    """A short human frame label for one pstats func triple."""
    filename, lineno, funcname = func
    if filename == "~":  # C builtins: ('~', 0, "<built-in ...>")
        return funcname
    return f"{os.path.basename(filename)}:{lineno}({funcname})"


def collapsed_stack_text(profile) -> str:
    """Fold a profile into flamegraph collapsed-stack lines.

    ``profile`` is a :class:`cProfile.Profile` or
    :class:`pstats.Stats`.  cProfile records a call *graph* (callers
    per function), not full stacks, so each function's self time is
    attributed to its **primary caller chain** — at every step the
    caller contributing the most cumulative time — which is the
    standard approximation ``gprof2dot``-style tools use.  Weights are
    self-time microseconds; zero-weight frames are dropped.
    """
    stats = (profile if isinstance(profile, pstats.Stats)
             else pstats.Stats(profile))
    table = stats.stats  # func -> (cc, nc, tt, ct, callers)

    def primary_chain(func: tuple) -> list[str]:
        chain = [_frame_name(func)]
        seen = {func}
        current = func
        while True:
            callers = table[current][4]
            candidates = [(entry[3], caller)
                          for caller, entry in callers.items()
                          if caller in table and caller not in seen]
            if not candidates:
                break
            _, current = max(candidates, key=lambda pair: pair[0])
            seen.add(current)
            chain.append(_frame_name(current))
        chain.reverse()
        return chain

    lines = []
    for func, (_cc, _nc, tt, _ct, _callers) in sorted(
            table.items(), key=lambda item: _frame_name(item[0])):
        weight = int(tt * 1_000_000)
        if weight <= 0:
            continue
        lines.append(";".join(primary_chain(func)) + f" {weight}")
    return "\n".join(lines) + ("\n" if lines else "")


def stats_footer(stats: dict | None,
                 bcp_counters: dict | None = None) -> list[str]:
    """Human-readable ``c stats:`` lines from a report's breakdown.

    ``stats`` is a :meth:`~repro.verify.report.VerificationStats.
    as_dict` mapping; ``bcp_counters`` the engine counter totals.
    Returns the lines without trailing newlines; empty input, empty
    output.
    """
    lines: list[str] = []
    if stats:
        phases = stats.get("phase_times") or {}
        phase_text = " ".join(f"{name}={seconds:.3f}s"
                              for name, seconds in phases.items())
        line = f"c stats: total={stats.get('total_time', 0.0):.3f}s"
        if phase_text:
            line += f" ({phase_text})"
        lines.append(line)
        checks = stats.get("checks", 0)
        props = stats.get("props", 0)
        detail = f"c stats: checks={checks} props={props}"
        total = stats.get("total_time") or 0.0
        if checks and total > 0:
            detail += f" checks_per_sec={checks / total:.0f}"
        lines.append(detail)
        slowest = stats.get("slowest_checks") or []
        if slowest:
            worst = " ".join(f"#{index}={seconds * 1000:.1f}ms"
                             for index, seconds in slowest)
            lines.append(f"c stats: slowest checks: {worst}")
    if bcp_counters:
        pairs = " ".join(f"{key}={value}"
                         for key, value in bcp_counters.items())
        lines.append(f"c stats: bcp {pairs}")
    return lines
