"""Opt-in progress heartbeat for long verification runs.

A parallel ``--jobs`` run — or a sequential pass over a nine-thousand
clause proof — is silent until it finishes.  The heartbeat prints a
throttled one-line status to stderr (stdout stays machine-parseable)::

    c progress: 1423/9000 checks, 2.1s elapsed, eta 11s

The ETA is the naive linear extrapolation from the observed rate; for
backward verification it is pessimistic early on (high-index checks
propagate over more clauses), which is the honest direction to err.
"""

from __future__ import annotations

import sys
import time


class ProgressReporter:
    """Throttled ``c progress:`` lines on a stream (stderr by default).

    ``interval`` is the minimum seconds between lines (0 prints every
    update — used by tests); the final :meth:`finish` line is never
    throttled, so every enabled run ends with a complete count.

    ``status_writer`` (optional, see
    :class:`~repro.obs.live.LiveStatusWriter`) receives every emitted
    beat as a structured update; ``console=False`` keeps the status
    writer fed without printing lines (a run watched only through
    ``repro obs top``).

    ``on_beat`` (optional) runs once per emitted beat *before* the
    status write — the memory sampler rides here, so each live status
    update carries a fresh RSS reading.  It is exception-guarded: a
    failing beat hook can never break the heartbeat, let alone the
    run.
    """

    def __init__(self, total: int, label: str = "checks",
                 stream=None, interval: float = 0.5,
                 clock=time.monotonic, status_writer=None,
                 console: bool = True, on_beat=None):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.status_writer = status_writer
        self.console = console
        self.on_beat = on_beat
        self._clock = clock
        self._start = clock()
        self._last_emit: float | None = None
        self.lines_emitted = 0

    def _emit(self, done: int, now: float, final: bool = False) -> None:
        if self.on_beat is not None:
            try:
                self.on_beat()
            except Exception:
                pass
        elapsed = now - self._start
        eta = None
        line = (f"c progress: {done}/{self.total} {self.label}, "
                f"{elapsed:.1f}s elapsed")
        if done and 0 < done < self.total and elapsed > 0:
            eta = elapsed * (self.total - done) / done
            line += f", eta {eta:.0f}s"
        if self.console:
            print(line, file=self.stream, flush=True)
        if self.status_writer is not None:
            self.status_writer.update(
                done, self.total, self.label, elapsed, eta,
                state="done" if final else "running")
        self._last_emit = now
        self.lines_emitted += 1

    def update(self, done: int) -> None:
        """Report progress; throttled to one line per ``interval``."""
        now = self._clock()
        if self._last_emit is not None \
                and now - self._last_emit < self.interval:
            return
        self._emit(done, now)

    def finish(self, done: int) -> None:
        """Emit the final line unconditionally."""
        self._emit(done, self._clock(), final=True)
