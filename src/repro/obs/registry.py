"""Metrics registry: counters, gauges, and fixed-bucket histograms.

A zero-dependency instrumentation core in the spirit of a Prometheus
client, shrunk to what a proof verifier needs:

* :class:`Counter` — a monotonically increasing integer (checks run,
  propagation work units, worker failures);
* :class:`Gauge` — a last-written value with a recorded maximum
  (worker count, shard queue depth);
* :class:`Histogram` — fixed upper-bound buckets plus sum/count/max
  (per-check wall time, per-check propagation work).

Design constraints, in priority order:

1. **Disabled means free.**  The hot BCP loops never talk to a registry
   — they maintain the plain-int
   :class:`~repro.bcp.engine.PropagationCounters` they always have, and
   the *drivers* publish those into a registry between checks, only
   when one was supplied.  ``obs=None`` (the default everywhere) keeps
   every hot path exactly as it was; a guard test asserts the registry
   is never entered on the disabled path.
2. **Merge is associative and commutative.**  The parallel backend
   aggregates per-shard registry snapshots in the parent in completion
   order, which is nondeterministic — so counters merge by sum,
   histograms bucket-wise by sum, and gauges by *max* (the documented
   semantics: a merged gauge answers "the largest value any shard
   saw"), all of which are order-insensitive.
3. **Snapshots are plain data.**  :meth:`MetricsRegistry.snapshot`
   returns dicts of ints/floats, safe to pickle across the fork
   boundary and to serialize as JSON.
"""

from __future__ import annotations

import math

# Upper bounds (seconds) for duration histograms: tuned to per-check
# BCP times, which span ~10us (trivial re-checks) to seconds (huge
# root rebuilds).  The terminal +inf bucket is implicit.
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# Upper bounds for work-unit histograms (assignments + clause visits
# per check) — the machine-independent sibling of the time buckets.
DEFAULT_WORK_BUCKETS = (
    10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000,
)


class Counter:
    """A monotonically increasing integer metric."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (inc({amount}))")
        self.value += amount

    def snapshot(self):
        return self.value

    def merge(self, other_value) -> None:
        if other_value < 0:
            raise ValueError(
                f"counter {self.name} cannot merge a negative value")
        self.value += other_value


class Gauge:
    """A last-written value; the maximum ever set is kept alongside.

    Merging takes the *max* of both the current value and the recorded
    maximum, which is associative/commutative — the right semantics for
    "peak queue depth across shards" style aggregation.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0.0
        self.max: float = -math.inf
        self._written = False

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value
        self._written = True

    def snapshot(self):
        return {"value": self.value,
                "max": self.max if self._written else 0.0}

    def merge(self, other_value) -> None:
        if not self._written:
            self.value = other_value["value"]
            self.max = other_value["max"]
            self._written = True
        else:
            self.value = max(self.value, other_value["value"])
            self.max = max(self.max, other_value["max"])


class Histogram:
    """Fixed-upper-bound buckets with sum, count, and max.

    ``buckets`` are *inclusive* upper bounds in increasing order; an
    implicit +inf bucket catches the rest.  Bucket layout is part of a
    metric's identity: merging histograms with different bounds is an
    error, not a silent misaggregation.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple = DEFAULT_TIME_BUCKETS):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(
                buckets):
            raise ValueError(
                f"histogram {name}: buckets must be strictly increasing")
        self.name = name
        self.help = help
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum: float = 0.0
        self.count = 0
        self.max: float = 0.0

    def observe(self, value: float) -> None:
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.sum += value
        self.count += 1
        if value > self.max:
            self.max = value

    def snapshot(self):
        return {"buckets": list(self.buckets), "counts": list(self.counts),
                "sum": self.sum, "count": self.count, "max": self.max}

    def merge(self, other_value) -> None:
        if list(other_value["buckets"]) != list(self.buckets):
            raise ValueError(
                f"histogram {self.name}: cannot merge mismatched bucket "
                f"layouts {other_value['buckets']} vs {list(self.buckets)}")
        for i, count in enumerate(other_value["counts"]):
            self.counts[i] += count
        self.sum += other_value["sum"]
        self.count += other_value["count"]
        self.max = max(self.max, other_value["max"])


class MetricsRegistry:
    """A named collection of metrics with mergeable snapshots.

    ``counter()``/``gauge()``/``histogram()`` are get-or-create: the
    first call fixes the metric's kind (and a histogram's buckets);
    later calls return the same object, so call sites need no shared
    setup.  Asking for an existing name with a different kind raises —
    that is a naming bug, not a use case.
    """

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, cls, name: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help=help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_TIME_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help=help,
                                   buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(sorted(self._metrics.values(),
                           key=lambda metric: metric.name))

    def snapshot(self) -> dict:
        """Plain-data view: ``{name: {"kind": ..., "value": ...}}``.

        Keys are emitted in sorted order so serialized snapshots are
        byte-stable for a given metric state.
        """
        return {name: {"kind": metric.kind, "help": metric.help,
                       "value": metric.snapshot()}
                for name, metric in sorted(self._metrics.items())}

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Merging is associative and commutative (sum for counters and
        histogram buckets, max for gauges), so the parent of a worker
        pool may fold shard snapshots in any completion order and
        reach the same totals.
        """
        for name, entry in snapshot.items():
            kind = entry["kind"]
            if kind == "counter":
                metric = self.counter(name, help=entry.get("help", ""))
            elif kind == "gauge":
                metric = self.gauge(name, help=entry.get("help", ""))
            elif kind == "histogram":
                metric = self.histogram(
                    name, help=entry.get("help", ""),
                    buckets=tuple(entry["value"]["buckets"]))
            else:
                raise ValueError(f"unknown metric kind {kind!r} "
                                 f"for {name!r}")
            metric.merge(entry["value"])
