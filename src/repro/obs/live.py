"""Live operational view: status files for in-flight runs.

A long ``verify``/``verify-stream`` already has a progress heartbeat
(:mod:`repro.obs.progress`), but it prints to the run's own stderr —
invisible to an operator on another terminal.  With ``--live-dir``
(or ``REPRO_LIVE_DIR``) the heartbeat *also* writes a small JSON
status file, atomically replaced on every beat::

    <live_dir>/<run_id>.json      # repro.obs.live/v1

``repro obs top`` reads every status file in the directory and
renders a ``top``-style table; ``--follow`` polls until all runs
finish or go stale.  The write is a single atomic replace per beat
(throttled by the heartbeat interval), far off any hot loop, and a
status file is rewritten with ``state: "done"`` at the end of the run
rather than deleted — the final state of a run is part of the view.
"""

from __future__ import annotations

import json
import os
import time

from repro.obs.export import atomic_write_text

LIVE_SCHEMA = "repro.obs.live/v1"

#: Seconds without an update after which ``obs top`` flags a run as
#: stale (likely killed without cleanup).
DEFAULT_STALE_AFTER = 30.0


class LiveStatusWriter:
    """Writes one run's heartbeat to ``<live_dir>/<run_id>.json``.

    Plugs into :class:`~repro.obs.progress.ProgressReporter` as its
    ``status_writer``; every emitted heartbeat becomes one atomic
    file replace.  Write failures are swallowed — a full disk must
    not fail a verification run over its status file.
    """

    def __init__(self, live_dir, run_id: str,
                 meta: dict | None = None, wall=time.time,
                 mem_provider=None):
        self.live_dir = str(live_dir)
        self.run_id = run_id
        self.path = os.path.join(self.live_dir, f"{run_id}.json")
        self.meta = dict(meta or {})
        self._wall = wall
        # Optional callable returning the memory sampler's compact
        # view ({rss_bytes, peak_rss_bytes, updated}) — embedded per
        # beat so `obs top` shows RSS and can flag a silent sampler.
        self.mem_provider = mem_provider

    def update(self, done: int, total: int, label: str,
               elapsed: float, eta: float | None,
               state: str = "running") -> None:
        rate = done / elapsed if elapsed > 0 else None
        doc = {
            "schema": LIVE_SCHEMA,
            "run": self.run_id,
            "pid": os.getpid(),
            "state": state,
            "done": done,
            "total": total,
            "label": label,
            "elapsed": elapsed,
            "eta": eta,
            "rate": rate,
            "updated": self._wall(),
            "meta": self.meta,
        }
        if self.mem_provider is not None:
            try:
                doc["mem"] = self.mem_provider()
            except Exception:
                doc["mem"] = None
        try:
            os.makedirs(self.live_dir, exist_ok=True)
            atomic_write_text(
                self.path,
                json.dumps(doc, sort_keys=True) + "\n")
        except OSError:
            pass


def read_live_statuses(live_dir) -> list[dict]:
    """Every parseable ``repro.obs.live/v1`` doc in ``live_dir``,
    sorted by run id.  Unparseable or foreign files are skipped — a
    half-written file can't exist (writes are atomic) but stray files
    can."""
    statuses = []
    try:
        names = sorted(os.listdir(live_dir))
    except OSError:
        return []
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(live_dir, name),
                      encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(doc, dict) and doc.get("schema") == LIVE_SCHEMA:
            statuses.append(doc)
    statuses.sort(key=lambda d: d.get("run", ""))
    return statuses


def format_bytes(value) -> str:
    """``62.1M``-style human bytes (``-`` when unknown) — shared by
    the top table and the timeline memory lane."""
    if not isinstance(value, (int, float)) or value <= 0:
        return "-"
    for unit in ("B", "K", "M", "G", "T"):
        if value < 1024 or unit == "T":
            return (f"{value:.0f}{unit}" if unit == "B"
                    else f"{value:.1f}{unit}")
        value /= 1024
    return "-"


def format_top_table(statuses: list[dict], now: float | None = None,
                     stale_after: float = DEFAULT_STALE_AFTER) -> str:
    """A ``top``-style table over live status docs."""
    if now is None:
        now = time.time()
    if not statuses:
        return "no live runs\n"
    header = (f"{'RUN':<16} {'PID':>7} {'STATE':<8} "
              f"{'PROGRESS':>14} {'%':>6} {'RATE':>9} "
              f"{'ELAPSED':>8} {'ETA':>6} {'RSS':>7} {'PEAK':>7}"
              "  COMMAND")
    lines = [header]
    for doc in statuses:
        state = doc.get("state", "?")
        updated = doc.get("updated")
        if (state == "running" and updated is not None
                and now - updated > stale_after):
            state = "stale"
        mem = doc.get("mem")
        if (state == "running" and isinstance(mem, dict)
                and isinstance(mem.get("updated"), (int, float))
                and now - mem["updated"] > stale_after):
            # The progress heartbeat still beats but the memory
            # sampler went silent (dead sampler thread, unreadable
            # procfs): surface the partial outage as staleness.
            state = "stale"
        done = doc.get("done", 0)
        total = doc.get("total", 0)
        pct = f"{done / total * 100:.1f}" if total else "?"
        rate = doc.get("rate")
        rate_s = f"{rate:.0f}/s" if rate else "-"
        eta = doc.get("eta")
        eta_s = f"{eta:.0f}s" if eta is not None else "-"
        elapsed = doc.get("elapsed")
        elapsed_s = f"{elapsed:.1f}s" if elapsed is not None else "-"
        meta = doc.get("meta") or {}
        command = meta.get("command", "")
        instance = meta.get("instance", "")
        label = f"{command} {instance}".strip()
        mem = doc.get("mem") if isinstance(doc.get("mem"), dict) else {}
        rss_s = format_bytes(mem.get("rss_bytes"))
        peak_s = format_bytes(mem.get("peak_rss_bytes"))
        lines.append(
            f"{doc.get('run', '?'):<16} {doc.get('pid', '?'):>7} "
            f"{state:<8} {f'{done}/{total}':>14} {pct:>6} "
            f"{rate_s:>9} {elapsed_s:>8} {eta_s:>6} {rss_s:>7} "
            f"{peak_s:>7}  {label}")
    return "\n".join(lines) + "\n"


def all_settled(statuses: list[dict], now: float | None = None,
                stale_after: float = DEFAULT_STALE_AFTER) -> bool:
    """True when no run is still actively reporting (everything is
    done, failed, or stale) — the ``obs top --follow`` exit test."""
    if now is None:
        now = time.time()
    for doc in statuses:
        if doc.get("state") != "running":
            continue
        updated = doc.get("updated")
        if updated is None or now - updated <= stale_after:
            return False
    return True
