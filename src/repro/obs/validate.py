"""Schema validation as a command: ``python -m repro.obs.validate``.

CI (and anyone debugging an artifact) validates observability outputs
without writing throwaway Python::

    python -m repro.obs.validate --metrics m.json --trace t.jsonl \\
        --depgraph d.jsonl --analytics a.json

Typed flags check the artifact against the named schema; bare
positional files are dispatched on the schema id the artifact itself
declares, and an unknown id is reported with the list of known
schemas (never a traceback).

Exit code 0 when every given artifact is schema-valid; 1 with one
``invalid:`` line per problem otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.schema import (
    ANALYTICS_SCHEMA,
    DEPGRAPH_SCHEMA,
    KNOWN_SCHEMAS,
    MEM_SCHEMA,
    METRICS_SCHEMA,
    TIMELINE_SCHEMA,
    TRACE_SCHEMA,
    declared_schema,
    validate_any,
)
from repro.obs.spans import read_jsonl


def _load(path: str):
    """Parse an artifact: one JSON document (possibly pretty-printed
    over many lines), falling back to JSONL line records."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        return json.loads(text)
    except ValueError:
        return [json.loads(line) for line in text.splitlines()
                if line.strip()]


def _check(path: str, artifact, expected: str | None) -> list[str]:
    """Problems for one artifact, optionally pinning the schema id."""
    schema = declared_schema(artifact)
    if expected is not None and schema != expected:
        return [f"expected schema {expected!r}, "
                f"artifact declares {schema!r}"]
    return validate_any(artifact)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate repro.obs artifacts "
                    f"({', '.join(sorted(KNOWN_SCHEMAS))}).")
    parser.add_argument("--metrics", action="append", default=[],
                        metavar="FILE",
                        help="a metrics JSON document to validate "
                             "(repeatable)")
    parser.add_argument("--trace", action="append", default=[],
                        metavar="FILE",
                        help="a JSONL trace log to validate (repeatable)")
    parser.add_argument("--depgraph", action="append", default=[],
                        metavar="FILE",
                        help="a JSONL proof dependency graph to "
                             "validate (repeatable)")
    parser.add_argument("--analytics", action="append", default=[],
                        metavar="FILE",
                        help="a proof-shape analytics JSON document to "
                             "validate (repeatable)")
    parser.add_argument("--timeline", action="append", default=[],
                        metavar="FILE",
                        help="a reconstructed timeline JSON document "
                             "to validate (repeatable)")
    parser.add_argument("--mem", action="append", default=[],
                        metavar="FILE",
                        help="a memory telemetry JSON document to "
                             "validate (repeatable)")
    parser.add_argument("files", nargs="*", metavar="FILE",
                        help="artifacts validated against whatever "
                             "schema id they declare")
    args = parser.parse_args(argv)
    jobs: list[tuple[str, str | None]] = (
        [(path, METRICS_SCHEMA) for path in args.metrics]
        + [(path, TRACE_SCHEMA) for path in args.trace]
        + [(path, DEPGRAPH_SCHEMA) for path in args.depgraph]
        + [(path, ANALYTICS_SCHEMA) for path in args.analytics]
        + [(path, TIMELINE_SCHEMA) for path in args.timeline]
        + [(path, MEM_SCHEMA) for path in args.mem]
        + [(path, None) for path in args.files])
    if not jobs:
        parser.error("nothing to validate: give --metrics, --trace, "
                     "--depgraph, --analytics, --timeline, --mem "
                     "and/or positional files")

    problems = 0
    for path, expected in jobs:
        if expected == TRACE_SCHEMA:
            artifact = read_jsonl(path)
        else:
            artifact = _load(path)
        found = _check(path, artifact, expected)
        for problem in found:
            print(f"invalid: {path}: {problem}")
            problems += 1
        if not found:
            detail = ""
            if isinstance(artifact, dict) and "metrics" in artifact:
                detail = f" ({len(artifact['metrics'])} metrics)"
            elif isinstance(artifact, list):
                detail = f" ({len(artifact)} records)"
            print(f"ok: {path}{detail}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
