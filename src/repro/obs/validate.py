"""Schema validation as a command: ``python -m repro.obs.validate``.

CI (and anyone debugging an artifact) validates observability outputs
without writing throwaway Python::

    python -m repro.obs.validate --metrics m.json --trace t.jsonl

Exit code 0 when every given artifact is schema-valid; 1 with one
``invalid:`` line per problem otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.schema import validate_metrics, validate_trace
from repro.obs.spans import read_jsonl


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate repro.obs metrics/trace artifacts.")
    parser.add_argument("--metrics", action="append", default=[],
                        metavar="FILE",
                        help="a metrics JSON document to validate "
                             "(repeatable)")
    parser.add_argument("--trace", action="append", default=[],
                        metavar="FILE",
                        help="a JSONL trace log to validate (repeatable)")
    args = parser.parse_args(argv)
    if not args.metrics and not args.trace:
        parser.error("nothing to validate: give --metrics and/or --trace")

    problems = 0
    for path in args.metrics:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        metric_problems = validate_metrics(doc)
        for problem in metric_problems:
            print(f"invalid: {path}: {problem}")
            problems += 1
        if not metric_problems:
            print(f"ok: {path} ({len(doc.get('metrics', {}))} metrics)")
    for path in args.trace:
        events = read_jsonl(path)
        trace_problems = validate_trace(events)
        for problem in trace_problems:
            print(f"invalid: {path}: {problem}")
            problems += 1
        if not trace_problems:
            print(f"ok: {path} ({len(events)} events)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
