"""Solver result and statistics containers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.proofs.log import ProofLog

SAT = "SAT"
UNSAT = "UNSAT"
UNKNOWN = "UNKNOWN"


@dataclass
class SolverStats:
    """Search statistics of one solver run."""

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    max_decision_level: int = 0
    reductions: int = 0
    solve_time: float = 0.0


@dataclass
class SolveResult:
    """Outcome of a solver run.

    * ``status == SAT`` — ``model`` maps every variable to a value that
      satisfies the formula.
    * ``status == UNSAT`` — ``log`` (when proof logging was enabled)
      contains the full derivation; export the paper's conflict clause
      proof with ``ConflictClauseProof.from_log(result.log)``.
    * ``status == UNKNOWN`` — the conflict budget was exhausted.
    """

    status: str
    model: dict[int, bool] | None = None
    log: ProofLog | None = None
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT
