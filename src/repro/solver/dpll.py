"""Reference DPLL solver (Davis–Putnam–Logemann–Loveland [5]).

A deliberately simple, obviously-correct decision procedure used as the
differential-testing oracle for the CDCL solver on small formulas.  It
performs unit propagation and pure-literal elimination over plain literal
sets — no watched literals, no learning — so its verdict depends on
nothing shared with the production code paths.
"""

from __future__ import annotations

from repro.core.formula import CnfFormula
from repro.solver.result import SAT, UNSAT, SolveResult, SolverStats


def dpll_solve(formula: CnfFormula) -> SolveResult:
    """Decide satisfiability by classic DPLL; returns a model when SAT.

    Exponential and recursion-bound — intended for formulas with at most
    a few dozen variables.
    """
    clauses = [frozenset(clause.literals) for clause in formula]
    stats = SolverStats()
    model = _search(clauses, {}, stats)
    if model is None:
        return SolveResult(UNSAT, stats=stats)
    full_model = {var: model.get(var, False)
                  for var in range(1, formula.num_vars + 1)}
    return SolveResult(SAT, model=full_model, stats=stats)


def _search(clauses: list[frozenset[int]], assignment: dict[int, bool],
            stats: SolverStats) -> dict[int, bool] | None:
    if any(not clause for clause in clauses):
        return None  # an input empty clause: immediately unsatisfiable
    clauses = _propagate(clauses, assignment, stats)
    if clauses is None:
        return None
    if not clauses:
        return dict(assignment)
    # Pure literal elimination.
    polarity: dict[int, int] = {}
    for clause in clauses:
        for lit in clause:
            var = abs(lit)
            polarity[var] = polarity.get(var, 0) | (1 if lit > 0 else 2)
    pure = [var if bits == 1 else -var
            for var, bits in polarity.items() if bits in (1, 2)]
    if pure:
        for lit in pure:
            assignment[abs(lit)] = lit > 0
        reduced = [clause for clause in clauses
                   if not any(lit in clause for lit in pure)]
        return _search(reduced, assignment, stats)
    # Branch on the first literal of the first shortest clause.
    branch_clause = min(clauses, key=len)
    lit = next(iter(branch_clause))
    for value in (lit > 0, lit < 0):
        stats.decisions += 1
        trial = dict(assignment)
        trial[abs(lit)] = value
        result = _search(_assign(clauses, abs(lit), value), trial, stats)
        if result is not None:
            return result
    return None


def _propagate(clauses: list[frozenset[int]] | None,
               assignment: dict[int, bool],
               stats: SolverStats) -> list[frozenset[int]] | None:
    while clauses is not None:
        unit = next((clause for clause in clauses if len(clause) == 1), None)
        if unit is None:
            return clauses
        (lit,) = unit
        stats.propagations += 1
        assignment[abs(lit)] = lit > 0
        clauses = _assign(clauses, abs(lit), lit > 0)
    return None


def _assign(clauses: list[frozenset[int]], var: int,
            value: bool) -> list[frozenset[int]] | None:
    """Apply the paper's ``simplify`` step; None signals a conflict."""
    true_lit = var if value else -var
    result = []
    for clause in clauses:
        if true_lit in clause:
            continue
        if -true_lit in clause:
            clause = clause - {-true_lit}
            if not clause:
                return None
        result.append(clause)
    return result
