"""Branching heuristics: VSIDS and the BerkMin clause-stack heuristic.

The paper's proofs were produced by BerkMin [9], whose decision heuristic
prefers variables of the most recently deduced clause that is not yet
satisfied, falling back to activity order.  We provide both that heuristic
and plain VSIDS (Chaff-style exponential activities with lazy-heap
selection) so the solver can be run in either configuration.
"""

from __future__ import annotations

import heapq

from repro.bcp.engine import TRUE, UNDEF, PropagatorBase

_RESCALE_LIMIT = 1e100
_RESCALE_FACTOR = 1e-100


class VsidsOrder:
    """Exponential VSIDS with a lazy max-heap over variable activities."""

    def __init__(self, num_vars: int = 0, decay: float = 0.95):
        if not 0 < decay <= 1:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.decay = decay
        self.inc = 1.0
        self.activity: list[float] = [0.0]
        self.heap: list[tuple[float, int]] = []
        self.ensure_vars(num_vars)

    def ensure_vars(self, num_vars: int) -> None:
        while len(self.activity) <= num_vars:
            var = len(self.activity)
            self.activity.append(0.0)
            heapq.heappush(self.heap, (-0.0, var))

    def bump(self, var: int) -> None:
        """Increase a variable's activity (called on conflict analysis)."""
        activity = self.activity[var] + self.inc
        self.activity[var] = activity
        if activity > _RESCALE_LIMIT:
            self._rescale()
        else:
            heapq.heappush(self.heap, (-activity, var))

    def _rescale(self) -> None:
        self.activity = [a * _RESCALE_FACTOR for a in self.activity]
        self.inc *= _RESCALE_FACTOR
        self.heap = [(-self.activity[var], var)
                     for var in range(1, len(self.activity))]
        heapq.heapify(self.heap)

    def decay_step(self) -> None:
        """Geometrically inflate future bumps (equivalent to decaying)."""
        self.inc /= self.decay

    def push(self, var: int) -> None:
        """Re-offer a variable after it became unassigned."""
        heapq.heappush(self.heap, (-self.activity[var], var))

    def pick(self, engine: PropagatorBase) -> int | None:
        """Highest-activity unassigned variable, or None if all assigned."""
        values = engine.values
        heap = self.heap
        while heap:
            neg_activity, var = heap[0]
            if values[var << 1] != UNDEF:
                heapq.heappop(heap)
                continue
            if -neg_activity != self.activity[var]:
                heapq.heappop(heap)  # stale entry; a fresher one exists
                continue
            return var
        return None


class BerkMinOrder(VsidsOrder):
    """BerkMin's heuristic: branch inside the newest unsatisfied
    deduced clause, by activity; fall back to VSIDS when the recent
    deduced clauses are all satisfied."""

    def __init__(self, num_vars: int = 0, decay: float = 0.95,
                 max_scan: int = 256):
        super().__init__(num_vars, decay)
        self.max_scan = max_scan
        self.learned_stack: list[int] = []

    def on_learn(self, cid: int) -> None:
        self.learned_stack.append(cid)

    def pick(self, engine: PropagatorBase) -> int | None:
        values = engine.values
        clauses = engine.clauses
        activity = self.activity
        scanned = 0
        for cid in reversed(self.learned_stack):
            if scanned >= self.max_scan:
                break
            clause = clauses[cid]
            if not clause:
                continue  # deleted clause, skip without charging the scan
            scanned += 1
            best_var = None
            best_activity = -1.0
            satisfied = False
            for enc in clause:
                value = values[enc]
                if value == TRUE:
                    satisfied = True
                    break
                if value == UNDEF:
                    var = enc >> 1
                    if activity[var] > best_activity:
                        best_activity = activity[var]
                        best_var = var
            if satisfied:
                continue
            if best_var is not None:
                return best_var
        return super().pick(engine)


def make_order(name: str, num_vars: int, decay: float) -> VsidsOrder:
    """Factory for branching heuristics by name."""
    if name == "vsids":
        return VsidsOrder(num_vars, decay)
    if name == "berkmin":
        return BerkMinOrder(num_vars, decay)
    raise ValueError(f"unknown heuristic {name!r}")
