"""The proof-logging CDCL SAT solver and its reference DPLL oracle."""

from repro.solver.cdcl import CdclSolver, SolverOptions, solve
from repro.solver.dpll import dpll_solve
from repro.solver.heuristics import BerkMinOrder, VsidsOrder
from repro.solver.learning import (
    Analysis,
    FinalAnalysis,
    analyze_1uip,
    analyze_decision,
    analyze_final,
)
from repro.solver.restarts import (
    GeometricRestarts,
    LubyRestarts,
    NoRestarts,
    luby,
)
from repro.solver.result import (
    SAT,
    UNKNOWN,
    UNSAT,
    SolveResult,
    SolverStats,
)

__all__ = [
    "CdclSolver",
    "SolverOptions",
    "solve",
    "dpll_solve",
    "SolveResult",
    "SolverStats",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "VsidsOrder",
    "BerkMinOrder",
    "Analysis",
    "FinalAnalysis",
    "analyze_1uip",
    "analyze_decision",
    "analyze_final",
    "luby",
    "LubyRestarts",
    "GeometricRestarts",
    "NoRestarts",
]
