"""The CDCL SAT solver with conflict clause proof logging.

A from-scratch conflict-driven clause-learning solver in the tradition of
GRASP/Chaff/BerkMin — the class of solvers the paper's verification
procedure applies to ("all state-of-the-art SAT-solvers based on conflict
clause recording", Section 1).  Features:

* two-watched-literal or counting BCP (pluggable engine);
* 1UIP, decision-variable, BerkMin-style hybrid or adaptive learning
  (Section 5's local/global clause dichotomy), with optional
  chain-exact learned-clause minimization;
* VSIDS or BerkMin branching, phase saving;
* Luby/geometric restarts;
* activity-driven deletion of learned clauses ("once in a while, some
  clauses are removed from the current formula", Section 2) — the proof
  log nevertheless records *every* deduced clause, exactly as the paper's
  ``F* ⊇ F'`` discussion requires, while deletion events are also logged
  for the DRUP export;
* a :class:`repro.proofs.ProofLog` with complete derivation chains,
  terminated by a unit step and the empty-clause step from which the
  final conflicting pair is recovered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bcp.counting import CountingPropagator
from repro.bcp.engine import UNDEF, PropagatorBase
from repro.bcp.watched import WatchedPropagator
from repro.core.formula import CnfFormula
from repro.core.literals import encode
from repro.proofs.log import ProofLog
from repro.solver.heuristics import BerkMinOrder, make_order
from repro.solver.learning import (
    Analysis,
    analyze_1uip,
    analyze_decision,
    analyze_final,
)
from repro.solver.restarts import make_restart_policy
from repro.solver.result import (
    SAT,
    UNKNOWN,
    UNSAT,
    SolveResult,
    SolverStats,
)

_CLAUSE_ACT_LIMIT = 1e20
_CLAUSE_ACT_FACTOR = 1e-20


@dataclass
class SolverOptions:
    """Configuration of the CDCL solver.

    ``learning`` selects the conflict analysis scheme: ``"1uip"`` (local
    clauses), ``"decision"`` (global clauses), ``"hybrid"`` — 1UIP with
    every ``hybrid_period``-th conflict analyzed down to decision
    variables — or ``"adaptive"`` — 1UIP unless the 1UIP clause exceeds
    ``adaptive_threshold`` literals, in which case the (usually much
    shorter) decision clause is learned instead.  The adaptive policy is
    our reconstruction of BerkMin's unpublished mixing rule (Section 6:
    "once in a while BerkMin deduces clauses in terms of decision
    variables ... combining the deduction of local and global clauses
    gives a noticeable speed-up"): deduce a global clause exactly when
    the local one is expensive to store.
    """

    learning: str = "1uip"
    hybrid_period: int = 10
    adaptive_threshold: int = 15
    minimize_clauses: bool = False
    heuristic: str = "berkmin"
    restart: str = "luby"
    restart_base: int = 100
    var_decay: float = 0.95
    clause_decay: float = 0.999
    enable_deletion: bool = True
    reduce_base: int = 2000
    reduce_growth: int = 500
    engine: str = "watched"
    log_proof: bool = True
    max_conflicts: int | None = None

    def __post_init__(self) -> None:
        if self.learning not in ("1uip", "decision", "hybrid", "adaptive"):
            raise ValueError(f"unknown learning scheme {self.learning!r}")
        if self.engine not in ("watched", "counting"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.hybrid_period < 1:
            raise ValueError("hybrid_period must be >= 1")
        if self.adaptive_threshold < 1:
            raise ValueError("adaptive_threshold must be >= 1")


class CdclSolver:
    """Conflict-driven clause-learning solver over a CNF formula."""

    def __init__(self, formula: CnfFormula,
                 options: SolverOptions | None = None):
        self.options = options or SolverOptions()
        self.formula = formula
        engine_cls = (WatchedPropagator if self.options.engine == "watched"
                      else CountingPropagator)
        self.engine: PropagatorBase = engine_cls(formula.num_vars)
        self.order = make_order(self.options.heuristic, formula.num_vars,
                                self.options.var_decay)
        self.restart_policy = make_restart_policy(
            self.options.restart, self.options.restart_base)
        self.stats = SolverStats()
        self.log: ProofLog | None = (
            ProofLog() if self.options.log_proof else None)
        self.saved_phase: list[bool] = [False] * (formula.num_vars + 1)
        self.clause_activity: dict[int, float] = {}
        self.clause_act_inc = 1.0
        self.learned_cids: list[int] = []
        self.num_input = formula.num_clauses
        # deletion is incompatible with the counting engine (no detach)
        self.deletion_enabled = (self.options.enable_deletion
                                 and self.options.engine == "watched")
        self.next_reduce = self.options.reduce_base

        for clause in formula:
            self.engine.add_clause([encode(lit) for lit in clause])
            if self.log is not None:
                self.log.input_clauses.append(clause.literals)

    # -- proof logging -----------------------------------------------------

    def _log_step(self, literals: tuple[int, ...],
                  antecedents: tuple[int, ...],
                  pivots: tuple[int, ...]) -> None:
        if self.log is not None:
            self.log.add_step(literals, antecedents, pivots)

    def _finalize_unsat(self, confl_cid: int) -> SolveResult:
        """Terminal level-0 conflict: log the final pair and conclude."""
        if self.log is not None:
            final = analyze_final(self.engine, confl_cid)
            if final.unit_step is None:
                self._log_step((), final.empty_antecedents,
                               final.empty_pivots)
            else:
                literals, antecedents, pivots = final.unit_step
                unit_ref = self.log.add_step(literals, antecedents, pivots)
                self._log_step((), (unit_ref,) + final.empty_antecedents,
                               final.empty_pivots)
            self.log.ending = "empty"
        return SolveResult(UNSAT, log=self.log, stats=self.stats)

    # -- heuristic helpers ---------------------------------------------------

    def _bump_clause(self, cid: int) -> None:
        if cid >= self.num_input:
            activity = self.clause_activity.get(cid, 0.0) \
                + self.clause_act_inc
            if activity > _CLAUSE_ACT_LIMIT:
                for key in self.clause_activity:
                    self.clause_activity[key] *= _CLAUSE_ACT_FACTOR
                self.clause_act_inc *= _CLAUSE_ACT_FACTOR
                activity = self.clause_activity.get(cid, 0.0) \
                    + self.clause_act_inc
            self.clause_activity[cid] = activity

    def _backtrack(self, level: int) -> None:
        """Backtrack, re-offering unassigned variables to the heuristic
        and remembering their phases."""
        engine = self.engine
        if level >= engine.decision_level:
            return
        limit = engine.trail_lim[level]
        order = self.order
        saved = self.saved_phase
        for enc in engine.trail[limit:]:
            var = enc >> 1
            saved[var] = not enc & 1
            order.push(var)
        engine.backtrack(level)

    def _pick_branch(self) -> int | None:
        var = self.order.pick(self.engine)
        if var is None:
            return None
        enc = var << 1
        if not self.saved_phase[var]:
            enc |= 1
        return enc

    # -- learned clause management -------------------------------------------

    def _attach_learnt(self, analysis: Analysis) -> None:
        engine = self.engine
        learnt = analysis.learnt_enc
        cid = engine.add_clause(learnt, propagate_units=False)
        self.learned_cids.append(cid)
        self.clause_activity[cid] = self.clause_act_inc
        if isinstance(self.order, BerkMinOrder):
            self.order.on_learn(cid)
        self.stats.learned_clauses += 1
        if not engine.enqueue(learnt[0], cid):
            raise AssertionError(
                "asserting literal of learned clause was already false")

    def _reduce_learned(self) -> None:
        """Delete the less active half of the long learned clauses.

        Called only at decision level 0, so the set of locked clauses
        (reasons of current assignments) is exactly the level-0 reasons.
        """
        engine = self.engine
        locked = {engine.reasons[enc >> 1] for enc in engine.trail}
        candidates = [
            cid for cid in self.learned_cids
            if engine.clauses[cid] and len(engine.clauses[cid]) > 2
            and cid not in locked
        ]
        if len(candidates) < 2:
            return
        candidates.sort(key=lambda cid: self.clause_activity.get(cid, 0.0))
        for cid in candidates[:len(candidates) // 2]:
            engine.remove_clause(cid)
            self.clause_activity.pop(cid, None)
            self.stats.deleted_clauses += 1
            if self.log is not None:
                step_index = cid - self.num_input
                self.log.deletion_events.append(
                    (len(self.log.steps),
                     self.log.steps[step_index].literals))
        self.stats.reductions += 1

    # -- main loop -------------------------------------------------------------

    def solve(self) -> SolveResult:
        """Run the CDCL search to completion (or to the conflict budget)."""
        start = time.perf_counter()
        try:
            return self._search()
        finally:
            self.stats.solve_time = time.perf_counter() - start

    def _search(self) -> SolveResult:
        engine = self.engine
        options = self.options
        stats = self.stats
        conflicts_since_restart = 0
        conflict_count = 0

        while True:
            trail_before = len(engine.trail)
            confl = engine.propagate()
            stats.propagations += len(engine.trail) - trail_before

            if confl is not None:
                stats.conflicts += 1
                conflict_count += 1
                conflicts_since_restart += 1
                if engine.decision_level == 0:
                    return self._finalize_unsat(confl)
                analysis = self._analyze(confl, conflict_count)
                self._log_step(analysis.literals,
                               tuple(analysis.antecedents),
                               tuple(analysis.pivots))
                self._backtrack(analysis.backjump_level)
                self._attach_learnt(analysis)
                self.order.decay_step()
                self.clause_act_inc /= options.clause_decay
                if (options.max_conflicts is not None
                        and stats.conflicts >= options.max_conflicts):
                    return SolveResult(UNKNOWN, log=self.log, stats=stats)
                continue

            if self.restart_policy.should_restart(conflicts_since_restart):
                self.restart_policy.on_restart()
                stats.restarts += 1
                conflicts_since_restart = 0
                self._backtrack(0)
                if (self.deletion_enabled
                        and stats.conflicts >= self.next_reduce):
                    self._reduce_learned()
                    self.next_reduce += (options.reduce_base
                                         + options.reduce_growth
                                         * stats.reductions)
                continue

            branch = self._pick_branch()
            if branch is None:
                return SolveResult(SAT, model=self._model(), log=self.log,
                                   stats=stats)
            stats.decisions += 1
            engine.assume(branch)
            if engine.decision_level > stats.max_decision_level:
                stats.max_decision_level = engine.decision_level

        raise AssertionError("unreachable")

    def _analyze(self, confl: int, conflict_count: int) -> Analysis:
        scheme = self.options.learning
        if scheme == "hybrid":
            scheme = ("decision"
                      if conflict_count % self.options.hybrid_period == 0
                      else "1uip")
        elif scheme == "adaptive":
            analysis = analyze_1uip(self.engine, confl,
                                    bump_var=self.order.bump,
                                    bump_clause=self._bump_clause,
                                    minimize=self.options.minimize_clauses)
            if len(analysis.literals) <= self.options.adaptive_threshold:
                return analysis
            # The local clause is long — deduce the global one instead
            # (activity bumps of the discarded analysis are harmless).
            return analyze_decision(self.engine, confl)
        if scheme == "decision":
            return analyze_decision(self.engine, confl,
                                    bump_var=self.order.bump,
                                    bump_clause=self._bump_clause)
        return analyze_1uip(self.engine, confl, bump_var=self.order.bump,
                            bump_clause=self._bump_clause,
                            minimize=self.options.minimize_clauses)

    def _model(self) -> dict[int, bool]:
        """Total assignment: engine values, defaulting free variables."""
        model = {}
        values = self.engine.values
        for var in range(1, self.formula.num_vars + 1):
            value = values[var << 1]
            model[var] = (value == 1) if value != UNDEF \
                else self.saved_phase[var]
        return model


def solve(formula: CnfFormula,
          options: SolverOptions | None = None, **kwargs) -> SolveResult:
    """Solve a CNF formula; keyword arguments build :class:`SolverOptions`.

    >>> from repro.core import CnfFormula
    >>> result = solve(CnfFormula([[1, 2], [-1], [-2]]))
    >>> result.status
    'UNSAT'
    """
    if options is not None and kwargs:
        raise ValueError("pass either options or keyword arguments, not both")
    if options is None:
        options = SolverOptions(**kwargs)
    return CdclSolver(formula, options).solve()
