"""Conflict analysis: the learning schemes the paper contrasts.

Section 5 of the paper distinguishes **local** conflict clauses (obtained
by few resolutions — the 1UIP scheme of Chaff [13]) from **global** ones
(obtained by resolving down to decision variables — the scheme of
Relsat [1]); BerkMin [9] mixes both, which is what makes its conflict
clause proofs so much smaller than the corresponding resolution graphs.

Each analysis returns, besides the learned clause, its *derivation chain*:
the input-resolution sequence of antecedent clause ids and pivot
variables.  The chain is what the resolution-graph proof is built from,
and its length is the exact number of resolution-graph nodes the learned
clause contributes (the paper's Table 2 could only lower-bound this for
some BerkMin clauses; we record it exactly).

Literals falsified at decision level 0 are fully resolved away using their
reason chains, so the recorded derivation is a complete resolution
derivation of the learned clause (not merely of a superset).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.bcp.engine import PropagatorBase
from repro.core.literals import decode

BumpVar = Callable[[int], None] | None
BumpClause = Callable[[int], None] | None


@dataclass
class Analysis:
    """Result of conflict analysis at a decision level > 0."""

    learnt_enc: list[int]
    """Encoded learned clause; position 0 is the asserting literal and
    position 1 (if any) a literal of the backjump level (watch order)."""

    backjump_level: int
    antecedents: list[int]
    pivots: list[int]
    literals: tuple[int, ...]
    """Learned clause in normalized DIMACS form."""


@dataclass
class FinalAnalysis:
    """Result of the terminal analysis of a decision-level-0 conflict.

    ``unit_step`` (absent only when the conflicting clause is itself the
    empty clause) derives a unit clause ``(l)``; ``empty_antecedents`` and
    ``empty_pivots`` then continue the chain — starting from the unit
    clause — down to the empty clause.  Together they realize the paper's
    final conflicting pair: ``(l)`` and the ``(¬l)`` certified by the
    empty-clause step.
    """

    unit_step: tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]] | None
    empty_antecedents: tuple[int, ...]
    empty_pivots: tuple[int, ...]


def _normalized(enc_lits: list[int]) -> tuple[int, ...]:
    lits = [decode(enc) for enc in enc_lits]
    return tuple(sorted(lits, key=lambda lit: (abs(lit), lit < 0)))


def analyze_1uip(engine: PropagatorBase, confl_cid: int,
                 bump_var: BumpVar = None,
                 bump_clause: BumpClause = None,
                 minimize: bool = False) -> Analysis:
    """First-UIP conflict analysis (Chaff's scheme — "local" clauses).

    With ``minimize=True``, redundant literals (those implied by the
    rest of the clause through reason chains) are removed à la
    Sörensson/Biere — a post-2003 refinement, so it is off by default;
    the extra resolutions it performs are appended to the derivation
    chain, keeping the logged derivation exact.
    """
    clauses = engine.clauses
    levels = engine.levels
    reasons = engine.reasons
    trail = engine.trail
    current_level = engine.decision_level
    if current_level == 0:
        raise ValueError("analyze_1uip requires a conflict above level 0")

    seen: set[int] = set()
    learnt: list[int] = [0]  # slot 0 reserved for the asserting literal
    counter = 0
    index = len(trail)
    antecedents = [confl_cid]
    pivots: list[int] = []
    has_level0 = False

    cid = confl_cid
    p_enc = 0
    while True:
        if bump_clause is not None:
            bump_clause(cid)
        for q in clauses[cid]:
            var = q >> 1
            if var in seen:
                continue
            seen.add(var)
            level = levels[var]
            if level == current_level:
                counter += 1
                if bump_var is not None:
                    bump_var(var)
            elif level > 0:
                learnt.append(q)
                if bump_var is not None:
                    bump_var(var)
            else:
                has_level0 = True
        while True:
            index -= 1
            p_enc = trail[index]
            if p_enc >> 1 in seen:
                break
        counter -= 1
        if counter == 0:
            break  # p_enc is the first UIP
        var = p_enc >> 1
        cid = reasons[var]
        antecedents.append(cid)
        pivots.append(var)

    learnt[0] = p_enc ^ 1

    if minimize and len(learnt) > 1:
        if _minimize_learnt(engine, learnt, seen, antecedents, pivots,
                            bump_clause):
            has_level0 = True  # minimization may surface level-0 deps

    if has_level0:
        _clear_level0(engine, seen, antecedents, pivots, bump_clause)

    backjump = 0
    if len(learnt) > 1:
        max_index = 1
        for i in range(2, len(learnt)):
            if levels[learnt[i] >> 1] > levels[learnt[max_index] >> 1]:
                max_index = i
        learnt[1], learnt[max_index] = learnt[max_index], learnt[1]
        backjump = levels[learnt[1] >> 1]

    return Analysis(learnt, backjump, antecedents, pivots,
                    _normalized(learnt))


def analyze_decision(engine: PropagatorBase, confl_cid: int,
                     bump_var: BumpVar = None,
                     bump_clause: BumpClause = None) -> Analysis:
    """Decision-variable conflict analysis (Relsat's scheme — "global"
    clauses): resolve every deduced literal away so the learned clause
    mentions only decision variables."""
    clauses = engine.clauses
    levels = engine.levels
    reasons = engine.reasons
    trail = engine.trail
    if engine.decision_level == 0:
        raise ValueError("analyze_decision requires a conflict above level 0")

    seen: set[int] = set()
    antecedents = [confl_cid]
    pivots: list[int] = []
    learnt: list[int] = []  # built in descending decision-level order

    if bump_clause is not None:
        bump_clause(confl_cid)
    for q in clauses[confl_cid]:
        var = q >> 1
        seen.add(var)
        if bump_var is not None and levels[var] > 0:
            bump_var(var)

    for pos in range(len(trail) - 1, -1, -1):
        enc = trail[pos]
        var = enc >> 1
        if var not in seen:
            continue
        cid = reasons[var]
        if cid is None:
            learnt.append(enc ^ 1)
            continue
        antecedents.append(cid)
        pivots.append(var)
        if bump_clause is not None:
            bump_clause(cid)
        for q in clauses[cid]:
            u = q >> 1
            if u not in seen:
                seen.add(u)
                if bump_var is not None and levels[u] > 0:
                    bump_var(u)

    # Reverse-trail order means learnt[0] negates the current decision and
    # learnt[1] a literal of the backjump level — the watch order.
    backjump = levels[learnt[1] >> 1] if len(learnt) > 1 else 0
    return Analysis(learnt, backjump, antecedents, pivots,
                    _normalized(learnt))


def analyze_final(engine: PropagatorBase, confl_cid: int) -> FinalAnalysis:
    """Terminal analysis of a conflict at decision level 0.

    Resolves the conflicting clause backwards along the level-0 trail down
    to the empty clause.  Because every resolution step shrinks the
    resolvent by at most one literal, the derivation passes through a unit
    resolvent ``(l)`` (unless it starts empty); we split the chain there
    so the proof log ends with a unit step followed by the empty step —
    the source of the paper's final conflicting pair.
    """
    clauses = engine.clauses
    reasons = engine.reasons
    trail = engine.trail

    seen: set[int] = set()
    for q in clauses[confl_cid]:
        seen.add(q >> 1)
    size = len(seen)
    antecedents = [confl_cid]
    pivots: list[int] = []

    if size == 0:
        return FinalAnalysis(unit_step=None,
                             empty_antecedents=(confl_cid,),
                             empty_pivots=())

    unit_chain_len = 1 if size == 1 else None
    unit_literal_enc: int | None = None

    for pos in range(len(trail) - 1, -1, -1):
        enc = trail[pos]
        var = enc >> 1
        if var not in seen:
            continue
        cid = reasons[var]
        if cid is None:
            raise ValueError(
                "level-0 assignment without a reason during final analysis")
        if unit_chain_len is not None and unit_literal_enc is None:
            unit_literal_enc = enc ^ 1
        antecedents.append(cid)
        pivots.append(var)
        size -= 1
        for q in clauses[cid]:
            u = q >> 1
            if u not in seen:
                seen.add(u)
                size += 1
        if size == 1 and unit_chain_len is None:
            unit_chain_len = len(antecedents)
        if size == 0:
            break

    if size != 0 or unit_literal_enc is None or unit_chain_len is None:
        raise ValueError("final analysis failed to reach the empty clause")

    unit_step = ((decode(unit_literal_enc),),
                 tuple(antecedents[:unit_chain_len]),
                 tuple(pivots[:unit_chain_len - 1]))
    return FinalAnalysis(
        unit_step=unit_step,
        empty_antecedents=tuple(antecedents[unit_chain_len:]),
        empty_pivots=tuple(pivots[unit_chain_len - 1:]))


def _minimize_learnt(engine: PropagatorBase, learnt: list[int],
                     seen: set[int], antecedents: list[int],
                     pivots: list[int],
                     bump_clause: BumpClause) -> bool:
    """Remove redundant literals from a freshly derived 1UIP clause.

    A literal is redundant when its variable's reason chain bottoms out
    entirely in other clause literals (or level-0 assignments).  Every
    reason used this way is appended to the derivation chain, in reverse
    trail order, so the logged chain still derives exactly the
    (minimized) clause.  Returns True if anything was removed.
    """
    clauses = engine.clauses
    reasons = engine.reasons
    levels = engine.levels
    trail = engine.trail
    cache: dict[int, bool] = {}
    committed_set: set[int] = set()

    def probe(root: int) -> bool:
        if root in committed_set:
            return True
        cached = cache.get(root)
        if cached is not None:
            return cached
        tentative: list[int] = []
        tentative_set: set[int] = set()
        tentative_level0: set[int] = set()
        stack = [root]
        ok = True
        while stack:
            var = stack.pop()
            if var in tentative_set or var in committed_set:
                continue
            if cache.get(var) is True:
                continue
            reason_cid = reasons[var]
            if reason_cid is None or cache.get(var) is False:
                ok = False
                break
            tentative_set.add(var)
            tentative.append(var)
            for q in clauses[reason_cid]:
                u = q >> 1
                if u == var:
                    continue
                if levels[u] == 0:
                    tentative_level0.add(u)
                    continue
                if (u in seen or u in tentative_set
                        or u in committed_set):
                    continue
                if cache.get(u) is False:
                    ok = False
                    break
                stack.append(u)
            if not ok:
                break
        if not ok:
            cache[root] = False
            return False
        for var in tentative:
            cache[var] = True
            committed_set.add(var)
        seen.update(tentative_level0)
        return True

    kept = [learnt[0]]
    removed_any = False
    for enc in learnt[1:]:
        if probe(enc >> 1):
            removed_any = True
        else:
            kept.append(enc)
    if not removed_any:
        return False
    learnt[:] = kept

    # Extend the derivation: resolve each used reason, newest first.
    # All committed vars sit below the current decision level, i.e.
    # after every resolution of the 1UIP loop — the global reverse
    # trail order of the chain is preserved.
    limit = engine.trail_lim[0] if engine.trail_lim else 0
    for pos in range(len(trail) - 1, limit - 1, -1):
        var = trail[pos] >> 1
        if var not in committed_set:
            continue
        reason_cid = reasons[var]
        antecedents.append(reason_cid)
        pivots.append(var)
        if bump_clause is not None:
            bump_clause(reason_cid)
    return True


def _clear_level0(engine: PropagatorBase, seen: set[int],
                  antecedents: list[int], pivots: list[int],
                  bump_clause: BumpClause) -> None:
    """Resolve away literals falsified at decision level 0.

    Extends the derivation chain in reverse trail order over the level-0
    segment, so the recorded chain derives exactly the learned clause.
    """
    clauses = engine.clauses
    reasons = engine.reasons
    trail = engine.trail
    limit = engine.trail_lim[0] if engine.trail_lim else len(trail)
    for pos in range(limit - 1, -1, -1):
        enc = trail[pos]
        var = enc >> 1
        if var not in seen:
            continue
        cid = reasons[var]
        if cid is None:
            raise ValueError("level-0 assignment without a reason")
        antecedents.append(cid)
        pivots.append(var)
        if bump_clause is not None:
            bump_clause(cid)
        for q in clauses[cid]:
            seen.add(q >> 1)
