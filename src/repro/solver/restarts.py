"""Restart policies for the CDCL solver."""

from __future__ import annotations


def luby(index: int) -> int:
    """The ``index``-th term (0-based) of the Luby sequence.

    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...

    >>> [luby(i) for i in range(8)]
    [1, 1, 2, 1, 1, 2, 4, 1]
    """
    if index < 0:
        raise ValueError("index must be nonnegative")
    size = 1
    level = 0
    while size < index + 1:
        level += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        level -= 1
        index %= size
    return 1 << level


class RestartPolicy:
    """Decides, per conflict, whether to restart the search."""

    def should_restart(self, conflicts_since_restart: int) -> bool:
        raise NotImplementedError

    def on_restart(self) -> None:
        """Advance to the next restart interval."""


class NoRestarts(RestartPolicy):
    """Never restart."""

    def should_restart(self, conflicts_since_restart: int) -> bool:
        return False


class LubyRestarts(RestartPolicy):
    """Restart after ``base * luby(k)`` conflicts, k = restarts so far."""

    def __init__(self, base: int = 100):
        if base <= 0:
            raise ValueError("base must be positive")
        self.base = base
        self._count = 0

    @property
    def current_limit(self) -> int:
        return self.base * luby(self._count)

    def should_restart(self, conflicts_since_restart: int) -> bool:
        return conflicts_since_restart >= self.current_limit

    def on_restart(self) -> None:
        self._count += 1


class GeometricRestarts(RestartPolicy):
    """Restart after a geometrically growing number of conflicts."""

    def __init__(self, first: int = 100, factor: float = 1.5):
        if first <= 0 or factor < 1.0:
            raise ValueError("need first > 0 and factor >= 1.0")
        self.limit = float(first)
        self.factor = factor

    def should_restart(self, conflicts_since_restart: int) -> bool:
        return conflicts_since_restart >= self.limit

    def on_restart(self) -> None:
        self.limit *= self.factor


def make_restart_policy(name: str, base: int) -> RestartPolicy:
    """Factory for restart policies by name."""
    if name == "luby":
        return LubyRestarts(base)
    if name == "geometric":
        return GeometricRestarts(base)
    if name == "none":
        return NoRestarts()
    raise ValueError(f"unknown restart policy {name!r}")
