"""Command-line interface: solve, verify, and extract cores from files.

The paper's workflow is inherently two-process — a solver writes the
proof to disk, an *independent* checker validates it — so the library
ships a CLI making that workflow literal::

    python -m repro solve formula.cnf --proof formula.ccp
    python -m repro verify formula.cnf formula.ccp
    python -m repro core formula.cnf formula.ccp --output core.cnf

Exit codes: ``solve`` exits 10 for SAT and 20 for UNSAT (the SAT
competition convention); ``verify`` exits 0 when the proof is correct
and 1 when it is not.  A run that exhausts its ``--timeout``/
``--max-props`` budget exits 3 (no verdict either way); malformed
input files exit 65 (``EX_DATAERR``) and every other operational
error exits 2 — always as a one-line ``c error:`` diagnostic, never a
traceback.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.dimacs import read_dimacs, write_dimacs
from repro.core.exceptions import (
    DimacsParseError,
    ProofFormatError,
    ReproError,
)
from repro.obs import (
    METRICS_FORMATS,
    Obs,
    stats_footer,
    write_metrics_json,
    write_metrics_prometheus,
)
from repro.obs.insight.history import (
    DEFAULT_HISTORY_DIR,
    default_history_dir,
)
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.proofs.sizes import compare_proof_sizes
from repro.proofs.trace_format import read_proof, write_proof
from repro.solver.cdcl import SolverOptions, solve
from repro.verify.budget import CheckBudget
from repro.verify.verification import verify_proof

EXIT_SAT = 10
EXIT_UNSAT = 20
EXIT_UNKNOWN = 30
EXIT_PROOF_BAD = 1
EXIT_ERROR = 2
EXIT_RESOURCE_LIMIT = 3
EXIT_PARSE_ERROR = 65   # sysexits.h EX_DATAERR: malformed input file
EXIT_INTERRUPT = 130    # 128 + SIGINT


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Conflict clause proofs of unsatisfiability "
                    "(Goldberg & Novikov, DATE 2003).")
    sub = parser.add_subparsers(dest="command", required=True)

    solve_cmd = sub.add_parser(
        "solve", help="solve a DIMACS CNF, optionally logging a proof")
    solve_cmd.add_argument("cnf", help="input DIMACS CNF file")
    solve_cmd.add_argument("--proof", metavar="FILE",
                           help="write the conflict clause proof here "
                                "when UNSAT")
    solve_cmd.add_argument("--drup", metavar="FILE",
                           help="write a DRUP trace (with deletion "
                                "lines) here when UNSAT")
    solve_cmd.add_argument("--learning", default="adaptive",
                           choices=["1uip", "decision", "hybrid",
                                    "adaptive"])
    solve_cmd.add_argument("--heuristic", default="berkmin",
                           choices=["vsids", "berkmin"])
    solve_cmd.add_argument("--max-conflicts", type=int, default=None)
    solve_cmd.add_argument("--minimize", action="store_true",
                           help="minimize learned clauses")
    solve_cmd.add_argument("--preprocess", action="store_true",
                           help="simplify first (units, probing, "
                                "subsumption, variable elimination); "
                                "the proof is lifted back to the "
                                "original formula")
    solve_cmd.add_argument("--stats", action="store_true",
                           help="print solver statistics")

    verify_cmd = sub.add_parser(
        "verify", help="verify a conflict clause proof")
    verify_cmd.add_argument("cnf", help="the original DIMACS CNF file")
    verify_cmd.add_argument("proof", help="the proof trace file")
    verify_cmd.add_argument("--procedure", default="verification2",
                            choices=["verification1", "verification2"])
    verify_cmd.add_argument("--order", default="backward",
                            choices=["backward", "forward"],
                            help="check order (verification1 only; the "
                                 "verdict is order-independent)")
    verify_cmd.add_argument("--mode", default="incremental",
                            choices=["rebuild", "incremental"],
                            help="checker state management: keep a "
                                 "persistent root trail (incremental, "
                                 "default) or re-assert units per check")
    verify_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="worker processes for verification1 "
                                 "(default 1: sequential)")
    verify_cmd.add_argument("--engine", default=None,
                            choices=["watched", "counting", "arena",
                                     "vector", "vector-inc", "auto"],
                            help="BCP engine (default: watched, or "
                                 "counting when --depgraph-out needs "
                                 "deterministic reasons); arena is the "
                                 "flat-pool kernel the shared-memory "
                                 "parallel backend uses, vector its "
                                 "numpy-vectorized twin and vector-inc "
                                 "the incremental-backward specialist "
                                 "(both need the repro[fast] extra); "
                                 "auto picks per workload: vector-inc "
                                 "for incremental mode, vector "
                                 "otherwise, arena without numpy")
    strictness = verify_cmd.add_mutually_exclusive_group()
    strictness.add_argument("--strict", action="store_true",
                            help="require a DIMACS header whose counts "
                                 "match the body exactly")
    strictness.add_argument("--lenient", action="store_false",
                            dest="strict",
                            help="accept header-less or miscounted "
                                 "DIMACS (default)")
    _add_budget_arguments(verify_cmd)
    _add_obs_arguments(verify_cmd, insight=True)

    core_cmd = sub.add_parser(
        "core", help="extract an unsat core from a verified proof")
    core_cmd.add_argument("cnf")
    core_cmd.add_argument("proof")
    core_cmd.add_argument("--output", metavar="FILE",
                          help="write the core as DIMACS here")

    drup_cmd = sub.add_parser(
        "verify-drup", help="forward-check a DRUP trace (with "
                            "deletions)")
    drup_cmd.add_argument("cnf")
    drup_cmd.add_argument("drup")
    drup_cmd.add_argument("--engine", default=None,
                          choices=["watched", "arena", "vector",
                                   "vector-inc", "auto"],
                          help="BCP engine (counting is rejected: it "
                               "cannot honor deletions; auto picks "
                               "vector when numpy is importable, else "
                               "arena)")
    _add_budget_arguments(drup_cmd)
    _add_obs_arguments(drup_cmd)

    stream_cmd = sub.add_parser(
        "verify-stream",
        help="forward-check a DRUP trace in one bounded-memory "
             "streaming pass (chunked parse, deletion-aware "
             "eviction, checkpoint/resume)")
    stream_cmd.add_argument("cnf")
    stream_cmd.add_argument("drup")
    stream_cmd.add_argument("--engine", default=None,
                            choices=["watched", "arena", "vector",
                                     "vector-inc", "auto"],
                            help="BCP engine (counting is rejected: "
                                 "streaming lives on deletion events)")
    _add_budget_arguments(stream_cmd)
    stream_cmd.add_argument("--max-live-clauses", type=int,
                            default=None, metavar="N",
                            help="abort with exit code 3 (and a resume "
                                 "token, with --checkpoint) when the "
                                 "live proof-added clause set would "
                                 "exceed N")
    stream_cmd.add_argument("--max-bytes", type=int, default=None,
                            metavar="BYTES",
                            help="same, for the live set's estimated "
                                 "resident footprint in bytes")
    stream_cmd.add_argument("--checkpoint", metavar="FILE",
                            default=None,
                            help="flush a resume token here (schema "
                                 "repro.obs.checkpoint/v1) every "
                                 "--checkpoint-every events and on "
                                 "interrupt/budget exhaustion; "
                                 "deleted once a verdict is reached")
    stream_cmd.add_argument("--checkpoint-every", type=int,
                            default=None, metavar="N",
                            help="checkpoint cadence in trace events "
                                 "(default 5000)")
    stream_cmd.add_argument("--resume", action="store_true",
                            help="continue from the --checkpoint "
                                 "token instead of starting over")
    stream_cmd.add_argument("--lenient-deletions", action="store_true",
                            help="skip (with a warning) deletions of "
                                 "unknown clauses instead of failing "
                                 "with exit code 65")
    stream_cmd.add_argument("--chunk-bytes", type=int, default=None,
                            metavar="BYTES",
                            help="trace read granularity (default "
                                 "65536)")
    _add_obs_arguments(stream_cmd)

    obs_cmd = sub.add_parser(
        "obs", help="inspect run history, timelines, and live runs; "
                    "detect regressions")
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)

    history_cmd = obs_sub.add_parser(
        "history", help="list recorded run fingerprints")
    history_cmd.add_argument("--history-dir", metavar="DIR",
                             default=default_history_dir())
    history_cmd.add_argument("--limit", type=int, default=20,
                             metavar="N",
                             help="show at most the N newest runs "
                                  "(default 20)")
    history_sub = history_cmd.add_subparsers(dest="history_command",
                                             required=False)
    prune_cmd = history_sub.add_parser(
        "prune", help="drop all but the newest N fingerprints "
                      "(atomic rewrite)")
    prune_cmd.add_argument("--keep", type=int, required=True,
                           metavar="N",
                           help="fingerprints to keep (newest first)")
    # SUPPRESS so a --history-dir given before 'prune' survives the
    # subparser's defaults pass.
    prune_cmd.add_argument("--history-dir", metavar="DIR",
                           default=argparse.SUPPRESS)

    timeline_cmd = obs_sub.add_parser(
        "timeline",
        help="reconstruct a trace into a global timeline: lanes, "
             "utilization, shard skew, critical path, attribution")
    timeline_cmd.add_argument("trace", metavar="TRACE.jsonl",
                              help="a repro.obs.trace/v1 file "
                                   "(--trace-out of a run)")
    timeline_cmd.add_argument("--out", metavar="PATH", default=None,
                              help="write the repro.obs.timeline/v1 "
                                   "JSON document here")
    timeline_cmd.add_argument("--html", metavar="PATH", default=None,
                              help="write a self-contained Gantt+"
                                   "critical-path HTML rendering here")
    timeline_cmd.add_argument("--top", type=int, default=5, metavar="N",
                              help="straggler rows in the attribution "
                                   "section (default 5)")
    timeline_cmd.add_argument("--quiet", action="store_true",
                              help="suppress the text rendering on "
                                   "stdout")

    top_cmd = obs_sub.add_parser(
        "top", help="show in-flight runs from their live status files")
    top_cmd.add_argument("--live-dir", metavar="DIR",
                         default=None,
                         help="live status directory (default: "
                              "$REPRO_LIVE_DIR or .repro/live)")
    top_cmd.add_argument("--follow", action="store_true",
                         help="keep refreshing until every run is "
                              "done or stale (Ctrl-C to stop)")
    top_cmd.add_argument("--interval", type=float, default=2.0,
                         metavar="SECONDS",
                         help="refresh interval with --follow "
                              "(default 2.0)")
    top_cmd.add_argument("--stale-after", type=float, default=30.0,
                         metavar="SECONDS",
                         help="mark a run stale after this long "
                              "without a heartbeat (default 30)")

    compare_cmd = obs_sub.add_parser(
        "compare", help="per-metric delta table between two runs")
    compare_cmd.add_argument("a", help="baseline run: history index "
                                       "(e.g. -2) or run-id prefix")
    compare_cmd.add_argument("b", help="candidate run: history index "
                                       "(e.g. -1) or run-id prefix")
    compare_cmd.add_argument("--history-dir", metavar="DIR",
                             default=default_history_dir())

    regress_cmd = obs_sub.add_parser(
        "check-regression",
        help="compare a run against a baseline; exit 3 past thresholds")
    regress_cmd.add_argument("--baseline", required=True,
                             metavar="FILE|SELECTOR",
                             help="baseline fingerprint: a JSON file "
                                  "(committed baseline) or a history "
                                  "selector")
    regress_cmd.add_argument("--current", default="-1",
                             metavar="SELECTOR",
                             help="run under test (default: the newest "
                                  "history entry)")
    regress_cmd.add_argument("--history-dir", metavar="DIR",
                             default=default_history_dir())
    regress_cmd.add_argument("--max-wall-pct", type=float, default=None,
                             metavar="PCT",
                             help="fail when wall time grew more than "
                                  "PCT%% over the baseline")
    regress_cmd.add_argument("--max-props-drop-pct", type=float,
                             default=None, metavar="PCT",
                             help="fail when props/s throughput dropped "
                                  "more than PCT%%")
    regress_cmd.add_argument("--max-phase-pct", type=float, default=None,
                             metavar="PCT",
                             help="fail when any phase time grew more "
                                  "than PCT%%")
    regress_cmd.add_argument("--min-utilization", type=float,
                             default=None, metavar="PCT",
                             help="fail when the current run's "
                                  "recorded worker utilization is "
                                  "below PCT%% (parallel runs with an "
                                  "attribution section)")
    regress_cmd.add_argument("--max-peak-rss-growth", type=float,
                             default=None, metavar="PCT",
                             help="fail when measured peak RSS grew "
                                  "more than PCT%% over the baseline "
                                  "(runs whose fingerprints carry a "
                                  "memory section)")
    return parser


def _add_budget_arguments(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="abort with exit code 3 (no verdict) once "
                          "this much wall-clock time has elapsed")
    cmd.add_argument("--max-props", type=int, default=None, metavar="N",
                     help="abort with exit code 3 (no verdict) once "
                          "the engines have performed N propagation "
                          "work units")


def _budget_from(args: argparse.Namespace) -> CheckBudget | None:
    max_live = getattr(args, "max_live_clauses", None)
    max_bytes = getattr(args, "max_bytes", None)
    if args.timeout is None and args.max_props is None \
            and max_live is None and max_bytes is None:
        return None
    return CheckBudget(timeout=args.timeout, max_props=args.max_props,
                       max_live_clauses=max_live, max_bytes=max_bytes)


def _add_obs_arguments(cmd: argparse.ArgumentParser,
                       insight: bool = False) -> None:
    group = cmd.add_argument_group("observability")
    group.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write a metrics artifact here after the "
                            "run (see --metrics-format)")
    group.add_argument("--metrics-format", default="json",
                       choices=list(METRICS_FORMATS),
                       help="metrics artifact format (default: json, "
                            "schema repro.obs.metrics/v1)")
    group.add_argument("--trace-out", metavar="PATH", default=None,
                       help="write a JSONL span/event trace here "
                            "(schema repro.obs.trace/v1)")
    group.add_argument("--progress", action="store_true",
                       help="heartbeat 'c progress:' lines on stderr")
    group.add_argument("--stats", action="store_true",
                       help="print a 'c stats:' footer with per-phase "
                            "times, props, and slowest checks")
    group.add_argument("--profile", metavar="PATH", default=None,
                       help="wrap the run in cProfile; writes PATH "
                            "(pstats), PATH.folded (flamegraph "
                            "collapsed stacks) and PATH.phases.json")
    group.add_argument("--history-dir", metavar="DIR",
                       default=default_history_dir(),
                       help="run-history store directory (default: "
                            f"$REPRO_HISTORY_DIR or "
                            f"{DEFAULT_HISTORY_DIR}; see 'repro obs "
                            "history')")
    group.add_argument("--no-history", action="store_true",
                       help="do not append this run's fingerprint to "
                            "the history store")
    group.add_argument("--live-dir", metavar="DIR",
                       default=os.environ.get("REPRO_LIVE_DIR"),
                       help="write a live status file here on every "
                            "progress beat, for 'repro obs top' "
                            "(default: $REPRO_LIVE_DIR)")
    group.add_argument("--mem-out", metavar="PATH", default=None,
                       help="write the measured-memory artifact here "
                            "(schema repro.obs.mem/v1: RSS samples, "
                            "peaks, arena gauges)")
    group.add_argument("--mem-sample-period", type=float, default=None,
                       metavar="SECONDS",
                       help="also sample RSS on a background thread "
                            "every SECONDS (default: one sample per "
                            "progress heartbeat only)")
    group.add_argument("--mem-profile", action="store_true",
                       help="attribute allocation peaks to phases "
                            "with tracemalloc (expensive — adds a "
                            "tracemalloc section to --mem-out and "
                            "the history fingerprint)")
    if insight:
        group.add_argument("--depgraph-out", metavar="PATH",
                           default=None,
                           help="write the proof dependency graph here "
                                "as JSONL (schema repro.obs.depgraph/v1)")
        group.add_argument("--depgraph-dot", metavar="PATH",
                           default=None,
                           help="write the proof dependency graph here "
                                "in Graphviz DOT")
        group.add_argument("--analytics-out", metavar="PATH",
                           default=None,
                           help="write proof-shape analytics here "
                                "(schema repro.obs.analytics/v1)")


def _wants_insight(args: argparse.Namespace) -> bool:
    return (getattr(args, "depgraph_out", None) is not None
            or getattr(args, "depgraph_dot", None) is not None
            or getattr(args, "analytics_out", None) is not None)


def _obs_from(args: argparse.Namespace) -> Obs | None:
    """Build the instrumentation bundle the flags ask for (or None).

    ``--stats`` alone still enables metrics: the footer's props and
    slowest-check lines come from the instrumented per-check path.
    Any insight output flag attaches a dependency-graph recorder (the
    analytics are computed from its records).
    """
    from repro.obs import DepGraphRecorder, MetricsRegistry, Tracer

    wants_metrics = (args.metrics_out is not None or args.stats)
    # Parallel runs that will record history also get a tracer: its
    # shard-granularity spans are what the history ``attribution``
    # section (utilization / skew gating) is computed from, at a cost
    # of a few events per shard — nothing on the per-check hot path.
    wants_trace = (args.trace_out is not None
                   or ((getattr(args, "jobs", 1) or 1) > 1
                       and not getattr(args, "no_history", True)))
    wants_depgraph = _wants_insight(args)
    live_dir = getattr(args, "live_dir", None)
    wants_mem_doc = getattr(args, "mem_out", None) is not None
    mem_profile = getattr(args, "mem_profile", False)
    mem_period = getattr(args, "mem_sample_period", None)
    # The mem artifact's gauges (RSS peaks, arena accounting) live in
    # the metrics registry, so asking for memory telemetry implies one
    # even without --metrics-out/--stats.
    wants_metrics = (wants_metrics or wants_mem_doc or mem_profile
                     or mem_period is not None)
    if not (wants_metrics or wants_trace or args.progress
            or wants_depgraph or live_dir is not None):
        return None
    # Any instrumented run gets the RSS sampler: it only fires on
    # progress beats (or its own --mem-sample-period thread), so it
    # costs nothing on runs without a heartbeat, and it is what feeds
    # the live view's RSS columns, the timeline memory lane, and the
    # fingerprint's memory section.
    from repro.obs.mem import MemProfiler, MemSampler

    return Obs(
        metrics=MetricsRegistry() if wants_metrics else None,
        tracer=Tracer() if wants_trace else None,
        progress_stream=sys.stderr if args.progress else None,
        depgraph=DepGraphRecorder() if wants_depgraph else None,
        live_dir=live_dir,
        live_meta={"command": args.command,
                   "instance": getattr(args, "cnf", None)},
        mem=MemSampler(),
        mem_profiler=MemProfiler() if mem_profile else None)


def _write_obs_artifacts(obs: Obs | None, args: argparse.Namespace,
                         report) -> None:
    """Write --metrics-out / --trace-out artifacts.

    ``report`` may be None (interrupted run): whatever the registries
    and tracer collected so far is still flushed — atomically, so the
    artifact on disk is always complete and schema-valid.
    """
    if obs is None:
        return
    stats = (report.stats.as_dict()
             if report is not None and report.stats is not None
             else None)
    if args.metrics_out is not None and obs.metrics is not None:
        if args.metrics_format == "prometheus":
            write_metrics_prometheus(args.metrics_out, obs.metrics)
        else:
            run = {"id": obs.run_id, "command": args.command,
                   "elapsed": (report.verification_time
                               if report is not None else None),
                   "interrupted": report is None}
            write_metrics_json(args.metrics_out, obs.metrics, run,
                               stats)
        print(f"c metrics written to {args.metrics_out}")
    if args.trace_out is not None and obs.tracer is not None:
        obs.tracer.write_jsonl(args.trace_out)
        print(f"c trace written to {args.trace_out}")
    mem_out = getattr(args, "mem_out", None)
    if mem_out is not None and obs.mem is not None:
        from repro.obs.mem import write_mem_json

        run = {"id": obs.run_id, "command": args.command,
               "interrupted": report is None}
        write_mem_json(mem_out, obs.mem, run,
                       arena=_mem_arena_section(obs),
                       profile=obs.mem_profiler)
        print(f"c memory telemetry written to {mem_out}")


def _mem_arena_section(obs: Obs | None) -> dict | None:
    """The mem artifact's ``arena`` section, recovered from the
    ``repro_mem_arena_*`` gauges (their max-merge already folded
    worker peaks in); None when no arena-backed engine reported."""
    if obs is None or obs.metrics is None:
        return None
    snapshot = obs.metrics.snapshot()

    def peak(name):
        entry = snapshot.get(name)
        if entry is None or entry.get("kind") != "gauge":
            return None
        return entry["value"]["max"]

    pool = peak("repro_mem_arena_pool_bytes")
    if pool is None:
        return None
    return {"pool_bytes": int(pool),
            "live_bytes": int(peak("repro_mem_arena_live_bytes") or 0),
            "watch_entries": int(peak("repro_mem_watch_entries") or 0),
            "fragmentation": float(
                peak("repro_mem_arena_fragmentation") or 0.0)}


def _write_insight_artifacts(obs: Obs | None, args: argparse.Namespace,
                             report, formula, proof):
    """Write --depgraph-out/--depgraph-dot/--analytics-out artifacts.

    Returns the computed :class:`ProofShapeAnalytics` (or None), so
    the stats footer and the history fingerprint reuse it.  Tolerates
    ``report=None`` (interrupted run): the partial dependency graph is
    still flushed; analytics need a report and are skipped.
    """
    if obs is None or obs.depgraph is None:
        return None
    from repro.obs import write_depgraph_dot, write_depgraph_jsonl
    from repro.obs.insight import analyze_proof_shape, \
        write_analytics_json

    run = {"id": obs.run_id, "command": args.command,
           "cnf": args.cnf, "interrupted": report is None}
    meta = dict(
        num_input=formula.num_clauses, num_proof=len(proof),
        procedure=(report.procedure if report is not None
                   else args.procedure),
        mode=report.mode if report is not None else args.mode,
        jobs=report.jobs if report is not None
        else getattr(args, "jobs", 1))
    lines = None
    if args.depgraph_out is not None:
        lines = write_depgraph_jsonl(args.depgraph_out, obs.depgraph,
                                     run, **meta)
        print(f"c depgraph written to {args.depgraph_out} "
              f"({obs.depgraph.num_checks} checks, "
              f"{obs.depgraph.num_edges} edges)")
    if args.depgraph_dot is not None:
        if lines is None:
            from repro.obs.insight.depgraph import depgraph_header
            lines = [depgraph_header(run, **meta)] \
                + obs.depgraph.sorted_checks()
        write_depgraph_dot(args.depgraph_dot, lines)
        print(f"c depgraph DOT written to {args.depgraph_dot}")
    if report is None:
        return None
    analytics = analyze_proof_shape(proof, report, obs.depgraph)
    if args.analytics_out is not None:
        write_analytics_json(args.analytics_out, analytics, run)
        print(f"c analytics written to {args.analytics_out}")
    return analytics


def _record_history(obs: Obs | None, args: argparse.Namespace, report,
                    analytics=None) -> None:
    """Append this run's fingerprint to the history store.

    Parallel runs that traced their shards also get an ``attribution``
    section (utilization, skew, per-shard cost, top stragglers), so
    ``obs compare``/``check-regression`` can gate on pool efficiency,
    not just wall time.
    """
    if report is None or getattr(args, "no_history", True):
        return
    from repro.obs import HistoryStore, fingerprint, make_run_id

    attribution = None
    if obs is not None and obs.tracer is not None:
        from repro.obs.timeline import attribution_summary

        attribution = attribution_summary(obs.tracer.events)
    record = fingerprint(
        report,
        run_id=obs.run_id if obs is not None else make_run_id(),
        command=args.command, instance=args.cnf, analytics=analytics,
        attribution=attribution, memory=_mem_history_section(obs))
    HistoryStore(args.history_dir).append(record)


def _mem_history_section(obs: Obs | None) -> dict | None:
    """The fingerprint's ``memory`` section: measured peak RSS (the
    ``--max-peak-rss-growth`` gate input), arena peak, and the top
    tracemalloc sites when ``--mem-profile`` captured them.  None when
    the run had no sampler or it never produced a reading — an
    unmeasured run must not gate."""
    if obs is None or obs.mem is None:
        return None
    summary = obs.mem.summary()
    if summary["peak_rss_bytes"] is None:
        return None
    memory = {"peak_rss_bytes": summary["peak_rss_bytes"],
              "rss_bytes": summary["rss_bytes"],
              "source": summary["source"],
              "num_samples": summary["num_samples"]}
    arena = _mem_arena_section(obs)
    if arena is not None:
        memory["arena_peak_bytes"] = arena["pool_bytes"]
    if obs.mem_profiler is not None:
        profile = obs.mem_profiler.document()
        if profile is not None:
            memory["tracemalloc_top"] = profile["top"][:5]
    return memory


def _run_instrumented(args: argparse.Namespace, obs: Obs | None, run,
                      formula=None, proof=None):
    """Run a verification thunk with ``--profile`` wrapping and
    interrupt-safe artifact flushing.

    Returns the report, or None when the run was interrupted — in
    which case every requested artifact (metrics, trace, partial
    depgraph, profile) has already been flushed atomically, so a ^C
    never leaves a truncated or missing artifact behind.
    """
    profiler = None
    if getattr(args, "profile", None) is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    _start_mem(args, obs)
    try:
        report = run()
    except KeyboardInterrupt:
        if profiler is not None:
            profiler.disable()
        _finish_mem(obs)
        print("c error: interrupted", file=sys.stderr)
        if formula is not None and proof is not None:
            _write_insight_artifacts(obs, args, None, formula, proof)
        _write_obs_artifacts(obs, args, None)
        if profiler is not None:
            _write_profile(args, profiler, None)
        return None
    _finish_mem(obs)
    if profiler is not None:
        profiler.disable()
        _write_profile(args, profiler, report)
    return report


def _start_mem(args: argparse.Namespace, obs: Obs | None) -> None:
    """Arm the memory facilities for one run: a first sample (so even
    a heartbeat-less run records a baseline), the optional background
    sampling thread, and the optional tracemalloc profiler."""
    if obs is None:
        return
    if obs.mem_profiler is not None:
        obs.mem_profiler.start()
    if obs.mem is not None:
        obs.mem.sample()
        period = getattr(args, "mem_sample_period", None)
        if period is not None and period > 0:
            obs.mem.start(period)


def _finish_mem(obs: Obs | None) -> None:
    """Disarm them: stop the thread, take a final sample (the peak a
    short run would otherwise miss), stop tracemalloc."""
    if obs is None:
        return
    if obs.mem is not None:
        obs.mem.stop()
        obs.mem.sample()
    if obs.mem_profiler is not None:
        obs.mem_profiler.stop()


def _write_profile(args: argparse.Namespace, profiler, report) -> None:
    from repro.obs.insight import write_profile

    written = write_profile(
        args.profile, profiler,
        phase_times=(report.stats.phase_times
                     if report is not None and report.stats is not None
                     else None),
        total_time=(report.verification_time
                    if report is not None else None))
    print(f"c profile written to {written[0]} "
          f"(+{len(written) - 1} sidecar(s))")


def _print_stats_footer(args: argparse.Namespace, report,
                        bcp_counters: dict | None,
                        analytics=None) -> None:
    if not args.stats:
        return
    stats = report.stats.as_dict() if report.stats is not None else None
    for line in stats_footer(stats, bcp_counters):
        print(line)
    if analytics is not None:
        from repro.obs.insight import analytics_footer

        for line in analytics_footer(analytics):
            print(line)


def _cmd_solve(args: argparse.Namespace) -> int:
    formula = read_dimacs(args.cnf)
    options = SolverOptions(
        learning=args.learning, heuristic=args.heuristic,
        max_conflicts=args.max_conflicts,
        minimize_clauses=args.minimize,
        log_proof=args.proof is not None or args.drup is not None)
    lifted_proof = None
    if args.preprocess:
        from repro.preprocess.lifting import solve_with_preprocessing

        result, pre, lifted_proof = solve_with_preprocessing(
            formula, options, eliminate=True)
        print(f"c preprocess: {len(pre.derived_units)} units, "
              f"{len(pre.removed_clause_indices)} clauses removed, "
              f"{len(pre.eliminations)} vars eliminated")
    else:
        result = solve(formula, options)
    print(f"s {result.status}")
    if args.stats:
        stats = result.stats
        print(f"c conflicts={stats.conflicts} decisions={stats.decisions}"
              f" propagations={stats.propagations}"
              f" restarts={stats.restarts} time={stats.solve_time:.3f}s")
    if result.is_sat:
        literals = [var if value else -var
                    for var, value in sorted(result.model.items())]
        print("v " + " ".join(map(str, literals)) + " 0")
        return EXIT_SAT
    if result.is_unsat:
        if args.proof:
            if lifted_proof is not None:
                proof = lifted_proof
                extra = " (lifted across preprocessing)"
            else:
                proof = ConflictClauseProof.from_log(result.log)
                sizes = compare_proof_sizes(result.log)
                extra = (f" (resolution graph: "
                         f"{sizes.resolution_graph_nodes} nodes)")
            write_proof(proof, args.proof,
                        comment=f"refutation of {args.cnf}")
            print(f"c proof written to {args.proof}: {len(proof)} "
                  f"clauses, {proof.literal_count()} literals{extra}")
        if args.drup and lifted_proof is not None:
            print("c --drup is not supported together with "
                  "--preprocess (deletion lines would reference the "
                  "simplified formula); skipping")
        elif args.drup:
            from repro.proofs.drup import DrupProof, write_drup
            trace = DrupProof.from_log(result.log)
            write_drup(trace, args.drup,
                       comment=f"refutation of {args.cnf}")
            print(f"c DRUP trace written to {args.drup}: "
                  f"{trace.num_additions} additions, "
                  f"{trace.num_deletions} deletions")
        return EXIT_UNSAT
    return EXIT_UNKNOWN


def _cmd_verify(args: argparse.Namespace) -> int:
    formula = read_dimacs(args.cnf, strict=args.strict)
    proof = read_proof(args.proof)
    if args.jobs < 1:
        print("c error: --jobs must be >= 1", file=sys.stderr)
        return EXIT_ERROR
    if args.procedure == "verification2" and (args.order != "backward"
                                              or args.jobs != 1):
        print("c error: --order/--jobs require --procedure "
              "verification1", file=sys.stderr)
        return EXIT_ERROR
    obs = _obs_from(args)
    report = _run_instrumented(
        args, obs, lambda: verify_proof(
            formula, proof, procedure=args.procedure,
            engine_cls=args.engine,
            order=args.order, mode=args.mode, jobs=args.jobs,
            budget=_budget_from(args), obs=obs, instance=args.cnf),
        formula, proof)
    if report is None:
        return EXIT_INTERRUPT
    print(f"s {report.outcome.upper()}")
    print(f"c checked={report.num_checked} skipped={report.num_skipped}"
          f" time={report.verification_time:.3f}s"
          f" mode={report.mode} engine={report.engine}"
          f" jobs={report.jobs}")
    for warning in report.warnings:
        print(f"c warning: {warning}")
    if report.worker_failures:
        print(f"c warning: {report.worker_failures} worker failure(s) "
              "were recovered")
    if report.bcp_counters is not None:
        pairs = " ".join(f"{key}={value}"
                         for key, value in report.bcp_counters.items())
        print(f"c bcp: {pairs}")
    analytics = _write_insight_artifacts(obs, args, report, formula,
                                         proof)
    _print_stats_footer(args, report, report.bcp_counters, analytics)
    _write_obs_artifacts(obs, args, report)
    _record_history(obs, args, report, analytics)
    if report.exhausted:
        print(f"c budget exhausted: {report.failure_reason}")
        return EXIT_RESOURCE_LIMIT
    if not report.ok:
        print(f"c questionable clause at chronological index "
              f"{report.failed_clause_index}: "
              f"{proof[report.failed_clause_index]}")
        return EXIT_PROOF_BAD
    if report.core is not None:
        print(f"c unsat core: {report.core.size}/"
              f"{formula.num_clauses} clauses "
              f"({report.core.fraction:.1%})")
    return 0


def _cmd_core(args: argparse.Namespace) -> int:
    formula = read_dimacs(args.cnf)
    proof = read_proof(args.proof)
    report = verify_proof(formula, proof)
    if not report.ok:
        print(f"s {report.outcome.upper()}")
        return 1
    core = report.core
    print(f"c core: {core.size}/{formula.num_clauses} clauses "
          f"({core.fraction:.1%})")
    print("c indices: " + " ".join(map(str, core.clause_indices)))
    if args.output:
        write_dimacs(core.as_formula(), args.output,
                     comment=f"unsat core of {args.cnf}")
        print(f"c written to {args.output}")
    return 0


def _cmd_verify_drup(args: argparse.Namespace) -> int:
    from repro.proofs.drup import read_drup
    from repro.verify.forward import check_drup

    formula = read_dimacs(args.cnf)
    trace = read_drup(args.drup)
    obs = _obs_from(args)
    report = _run_instrumented(
        args, obs, lambda: check_drup(formula, trace,
                                      budget=_budget_from(args),
                                      obs=obs,
                                      engine_cls=args.engine))
    if report is None:
        return EXIT_INTERRUPT
    print(f"s {report.outcome.upper()}")
    print(f"c additions={report.num_additions} "
          f"deletions={report.num_deletions} "
          f"peak_active={report.peak_active_clauses} "
          f"time={report.verification_time:.3f}s")
    _print_stats_footer(args, report, None)
    _write_obs_artifacts(obs, args, report)
    _record_history(obs, args, report)
    if report.exhausted:
        print(f"c budget exhausted: {report.failure_reason}")
        return EXIT_RESOURCE_LIMIT
    if not report.ok:
        print(f"c failed at event {report.failed_event_index}: "
              f"{report.failure_reason}")
        return EXIT_PROOF_BAD
    return 0


def _cmd_verify_stream(args: argparse.Namespace) -> int:
    import os
    import signal

    from repro.verify.streaming import (
        DEFAULT_CHECKPOINT_EVERY,
        verify_stream,
    )
    from repro.proofs.stream import DEFAULT_CHUNK_BYTES

    if args.resume and args.checkpoint is None:
        print("c error: --resume requires --checkpoint",
              file=sys.stderr)
        return EXIT_ERROR
    formula = read_dimacs(args.cnf)
    obs = _obs_from(args)

    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    # SIGTERM gets the same treatment as ^C: the streaming driver
    # flushes a resume token before unwinding, so a supervisor kill
    # is just a pause.  Only install from the main thread (signal
    # raises ValueError elsewhere, e.g. under embedded use).
    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:
        pass
    try:
        report = _run_instrumented(
            args, obs,
            lambda: verify_stream(
                formula, args.drup,
                budget=_budget_from(args),
                obs=obs,
                engine_cls=args.engine,
                checkpoint_path=args.checkpoint,
                checkpoint_every=(args.checkpoint_every
                                  if args.checkpoint_every is not None
                                  else DEFAULT_CHECKPOINT_EVERY),
                resume=args.resume,
                lenient_deletions=args.lenient_deletions,
                chunk_bytes=(args.chunk_bytes
                             if args.chunk_bytes is not None
                             else DEFAULT_CHUNK_BYTES)))
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
    if report is None:
        if args.checkpoint is not None \
                and os.path.exists(args.checkpoint):
            print(f"c resume token at {args.checkpoint} "
                  f"(rerun with --resume)")
        return EXIT_INTERRUPT
    print(f"s {report.outcome.upper()}")
    print(f"c additions={report.num_additions} "
          f"deletions={report.num_deletions} "
          f"peak_live={report.peak_live_clauses} "
          f"window_shifts={report.window_shifts} "
          f"checkpoints={report.checkpoints_written} "
          f"time={report.verification_time:.3f}s")
    if report.resumed_from_event is not None:
        print(f"c resumed from event {report.resumed_from_event}")
    for warning in report.warnings:
        print(f"c warning: {warning}")
    _print_stats_footer(args, report, report.bcp_counters)
    _write_obs_artifacts(obs, args, report)
    _record_history(obs, args, report)
    if report.exhausted:
        print(f"c budget exhausted: {report.failure_reason}")
        if report.checkpoint_path is not None:
            print(f"c resume token at {report.checkpoint_path} "
                  f"(rerun with --resume)")
        return EXIT_RESOURCE_LIMIT
    if not report.ok:
        print(f"c failed at event {report.failed_event_index}: "
              f"{report.failure_reason}")
        return EXIT_PROOF_BAD
    return 0


def _cmd_obs_timeline(args: argparse.Namespace) -> int:
    from repro.obs import read_jsonl
    from repro.obs.timeline import (
        build_timeline,
        render_timeline_html,
        render_timeline_text,
        write_timeline_json,
    )

    events = read_jsonl(args.trace)
    doc = build_timeline(events, top=args.top)
    if args.out is not None:
        write_timeline_json(doc, args.out)
        print(f"c timeline written to {args.out}")
    if args.html is not None:
        from repro.obs import atomic_write_text

        atomic_write_text(args.html, render_timeline_html(doc))
        print(f"c timeline HTML written to {args.html}")
    if not args.quiet:
        print(render_timeline_text(doc), end="")
    return 0


def _cmd_obs_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs.live import (
        all_settled,
        format_top_table,
        read_live_statuses,
    )

    live_dir = (args.live_dir or os.environ.get("REPRO_LIVE_DIR")
                or os.path.join(DEFAULT_HISTORY_DIR, "live"))
    while True:
        statuses = read_live_statuses(live_dir)
        now = _time.time()
        print(format_top_table(statuses, now=now,
                               stale_after=args.stale_after), end="")
        if not args.follow:
            return 0
        if statuses and all_settled(statuses, now=now,
                                    stale_after=args.stale_after):
            return 0
        _time.sleep(args.interval)


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import HistoryStore, check_regression, compare_runs
    from repro.obs.insight import (
        format_compare_table,
        format_history,
        load_fingerprint,
    )

    if args.obs_command == "timeline":
        return _cmd_obs_timeline(args)
    if args.obs_command == "top":
        return _cmd_obs_top(args)
    store = HistoryStore(args.history_dir)
    if args.obs_command == "history":
        if getattr(args, "history_command", None) == "prune":
            removed = store.prune(args.keep)
            print(f"c history pruned: {removed} fingerprint(s) "
                  f"removed, {min(args.keep, len(store.read()))} kept")
            return 0
        print(format_history(store.read(), limit=args.limit))
        return 0

    def resolve(selector: str) -> dict:
        if os.path.isfile(selector):
            return load_fingerprint(selector)
        return store.select(selector)

    try:
        if args.obs_command == "compare":
            a, b = resolve(args.a), resolve(args.b)
            print(format_compare_table(a, b, compare_runs(a, b)))
            return 0
        baseline = resolve(args.baseline)
        current = resolve(args.current)
        violations = check_regression(
            baseline, current,
            max_wall_pct=args.max_wall_pct,
            max_props_drop_pct=args.max_props_drop_pct,
            max_phase_pct=args.max_phase_pct,
            min_utilization_pct=args.min_utilization,
            max_peak_rss_growth_pct=args.max_peak_rss_growth)
    except LookupError as exc:
        print(f"c error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    print(f"c baseline {baseline.get('id')} vs current "
          f"{current.get('id')}")
    if violations:
        for violation in violations:
            print(f"c regression: {violation}")
        return EXIT_RESOURCE_LIMIT
    print("c no regression past thresholds")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Run a CLI command; operational failures become one-line
    ``c error:`` diagnostics and typed exit codes, never tracebacks."""
    args = _build_parser().parse_args(argv)
    handlers = {"solve": _cmd_solve, "verify": _cmd_verify,
                "core": _cmd_core, "verify-drup": _cmd_verify_drup,
                "verify-stream": _cmd_verify_stream, "obs": _cmd_obs}
    try:
        return handlers[args.command](args)
    except (DimacsParseError, ProofFormatError) as exc:
        print(f"c error: {exc}", file=sys.stderr)
        return EXIT_PARSE_ERROR
    except (ReproError, OSError, ValueError) as exc:
        print(f"c error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except KeyboardInterrupt:
        print("c error: interrupted", file=sys.stderr)
        return EXIT_INTERRUPT


if __name__ == "__main__":
    sys.exit(main())
