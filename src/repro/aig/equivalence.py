"""AIG-based equivalence checking (structural-hashing miters).

Encoding both implementations into one hashed AIG shares identical
sub-logic before the SAT solver ever runs; equivalent outputs often
collapse to the *same literal*, proving equivalence with zero search.
Whatever does not collapse becomes a much smaller miter CNF than the
plain Tseitin construction of :mod:`repro.circuits.miter` — the bench
suite compares the two.
"""

from __future__ import annotations

from repro.aig.aig import FALSE_LIT, Aig
from repro.aig.cnf import AigCnf
from repro.aig.convert import encode_circuit_into
from repro.circuits.netlist import Circuit
from repro.core.exceptions import CircuitError
from repro.core.formula import CnfFormula


def build_aig_miter(left: Circuit, right: Circuit) -> tuple[Aig, int]:
    """One shared AIG containing both circuits; returns (aig, miter_lit).

    ``miter_lit == FALSE_LIT`` means structural hashing alone proved
    equivalence.
    """
    if set(left.inputs) != set(right.inputs):
        raise CircuitError("miter requires identical input names")
    if len(left.outputs) != len(right.outputs):
        raise CircuitError("output count mismatch")
    aig = Aig(f"aigmiter({left.name},{right.name})")
    binding = {net: aig.add_input(net) for net in left.inputs}
    left_map = encode_circuit_into(aig, left, binding)
    right_map = encode_circuit_into(aig, right, binding)
    diffs = [
        aig.XOR(left_map[lo], right_map[ro])
        for lo, ro in zip(left.outputs, right.outputs)
    ]
    miter_lit = aig.or_many(diffs)
    aig.set_output("miter", miter_lit)
    return aig, miter_lit


def aig_equivalence_formula(left: Circuit, right: Circuit) -> CnfFormula:
    """CNF that is UNSAT iff the circuits are equivalent (AIG route).

    When hashing already proves equivalence the formula consists of a
    single empty clause — trivially UNSAT, no search needed.
    """
    aig, miter_lit = build_aig_miter(left, right)
    encoding = AigCnf(aig, roots=[miter_lit])
    encoding.assert_true(miter_lit)
    return encoding.formula


def structurally_equivalent(left: Circuit, right: Circuit) -> bool:
    """True when hashing alone collapses the miter to constant false."""
    _, miter_lit = build_aig_miter(left, right)
    return miter_lit == FALSE_LIT
