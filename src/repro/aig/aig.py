"""And-Inverter Graphs with structural hashing.

The workhorse representation of combinational equivalence checking
(Kuehlmann et al., and the basis of the later resolution-proof work on
CEC [Chatterjee et al.]): every function is a DAG of two-input AND
nodes with optional inverters on edges.  Building two circuits into
*one* AIG makes shared logic literally shared — which is why miters
built this way are much easier to refute than plain Tseitin miters, an
effect the bench suite measures.

Conventions follow AIGER: node 0 is constant false; literal = 2*node
(+1 for inversion), so ``lit ^ 1`` negates.  Inputs are declared before
AND nodes are created.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.exceptions import CircuitError

FALSE_LIT = 0
TRUE_LIT = 1


class Aig:
    """A structurally hashed And-Inverter Graph."""

    def __init__(self, name: str = ""):
        self.name = name
        self.inputs: list[str] = []
        self._input_lit: dict[str, int] = {}
        # AND node k (node id = 1 + num_inputs + k) has operands
        # ands[k] = (lit0, lit1) with lit0 <= lit1.
        self.ands: list[tuple[int, int]] = []
        self._hash: dict[tuple[int, int], int] = {}
        self.outputs: dict[str, int] = {}
        self._frozen_inputs = False

    # -- construction ------------------------------------------------------

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def num_ands(self) -> int:
        return len(self.ands)

    @property
    def num_nodes(self) -> int:
        return 1 + self.num_inputs + self.num_ands

    def add_input(self, name: str) -> int:
        """Declare an input; returns its (positive) literal."""
        if self._frozen_inputs:
            raise CircuitError(
                "inputs must be declared before AND nodes")
        if name in self._input_lit:
            raise CircuitError(f"duplicate input {name!r}")
        node = 1 + len(self.inputs)
        self.inputs.append(name)
        self._input_lit[name] = node << 1
        return node << 1

    def input_literal(self, name: str) -> int:
        return self._input_lit[name]

    def const(self, value: bool) -> int:
        return TRUE_LIT if value else FALSE_LIT

    def NOT(self, lit: int) -> int:
        return lit ^ 1

    def AND(self, a: int, b: int) -> int:
        """Hashed, folding AND of two literals."""
        self._frozen_inputs = True
        if a > b:
            a, b = b, a
        # Constant and trivial folds.
        if a == FALSE_LIT:
            return FALSE_LIT
        if a == TRUE_LIT:
            return b
        if a == b:
            return a
        if a == (b ^ 1):
            return FALSE_LIT
        key = (a, b)
        existing = self._hash.get(key)
        if existing is not None:
            return existing
        node = 1 + self.num_inputs + len(self.ands)
        self.ands.append(key)
        lit = node << 1
        self._hash[key] = lit
        return lit

    def OR(self, a: int, b: int) -> int:
        return self.AND(a ^ 1, b ^ 1) ^ 1

    def XOR(self, a: int, b: int) -> int:
        return self.OR(self.AND(a, b ^ 1), self.AND(a ^ 1, b))

    def XNOR(self, a: int, b: int) -> int:
        return self.XOR(a, b) ^ 1

    def MUX(self, sel: int, if0: int, if1: int) -> int:
        """``if1`` when ``sel`` else ``if0``."""
        return self.OR(self.AND(sel, if1), self.AND(sel ^ 1, if0))

    def and_many(self, lits: list[int]) -> int:
        result = TRUE_LIT
        for lit in lits:
            result = self.AND(result, lit)
        return result

    def or_many(self, lits: list[int]) -> int:
        result = FALSE_LIT
        for lit in lits:
            result = self.OR(result, lit)
        return result

    def set_output(self, name: str, lit: int) -> None:
        if name in self.outputs:
            raise CircuitError(f"duplicate output {name!r}")
        self.outputs[name] = lit

    # -- evaluation --------------------------------------------------------

    def simulate(self, assignment: Mapping[str, bool]) -> dict[str, bool]:
        """Evaluate all outputs under a complete input assignment."""
        values = [False] * self.num_nodes
        for index, name in enumerate(self.inputs):
            if name not in assignment:
                raise CircuitError(f"missing value for input {name!r}")
            values[1 + index] = bool(assignment[name])

        def lit_value(lit: int) -> bool:
            value = values[lit >> 1]
            return not value if lit & 1 else value

        base = 1 + self.num_inputs
        for k, (a, b) in enumerate(self.ands):
            values[base + k] = lit_value(a) and lit_value(b)
        return {name: lit_value(lit)
                for name, lit in self.outputs.items()}

    def cone(self, lits: list[int]) -> set[int]:
        """Node ids in the transitive fanin of the given literals."""
        base = 1 + self.num_inputs
        reachable: set[int] = set()
        stack = [lit >> 1 for lit in lits]
        while stack:
            node = stack.pop()
            if node in reachable:
                continue
            reachable.add(node)
            if node >= base:
                a, b = self.ands[node - base]
                stack.append(a >> 1)
                stack.append(b >> 1)
        return reachable

    def __repr__(self) -> str:
        return (f"Aig({self.name!r}, inputs={self.num_inputs}, "
                f"ands={self.num_ands}, outputs={len(self.outputs)})")
