"""And-Inverter Graphs: structural hashing, CNF encoding, miters."""

from repro.aig.aig import FALSE_LIT, TRUE_LIT, Aig
from repro.aig.aiger import (
    format_aiger,
    parse_aiger,
    read_aiger,
    write_aiger,
)
from repro.aig.cnf import AigCnf, aig_to_cnf
from repro.aig.convert import circuit_to_aig, encode_circuit_into
from repro.aig.equivalence import (
    aig_equivalence_formula,
    build_aig_miter,
    structurally_equivalent,
)

__all__ = [
    "Aig",
    "FALSE_LIT",
    "TRUE_LIT",
    "circuit_to_aig",
    "encode_circuit_into",
    "AigCnf",
    "aig_to_cnf",
    "build_aig_miter",
    "aig_equivalence_formula",
    "structurally_equivalent",
    "format_aiger",
    "parse_aiger",
    "read_aiger",
    "write_aiger",
]
