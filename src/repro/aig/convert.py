"""Conversions between gate-level netlists and AIGs."""

from __future__ import annotations

from repro.aig.aig import Aig
from repro.circuits.netlist import Circuit
from repro.core.exceptions import CircuitError


def encode_circuit_into(aig: Aig, circuit: Circuit,
                        binding: dict[str, int]) -> dict[str, int]:
    """Instantiate a circuit's gates inside an existing AIG.

    ``binding`` maps every input net of the circuit to an AIG literal
    (typically shared primary inputs).  Returns the net → literal map.
    Structural hashing applies across instantiations: identical logic
    collapses to the same nodes.
    """
    literal = dict(binding)
    missing = [net for net in circuit.inputs if net not in literal]
    if missing:
        raise CircuitError(f"unbound inputs: {missing}")
    for gate in circuit.gates:
        ins = [literal[net] for net in gate.inputs]
        literal[gate.output] = _encode_gate(aig, gate.op, ins)
    return literal


def _encode_gate(aig: Aig, op: str, ins: list[int]) -> int:
    if op == "CONST0":
        return aig.const(False)
    if op == "CONST1":
        return aig.const(True)
    if op == "BUF":
        return ins[0]
    if op == "NOT":
        return ins[0] ^ 1
    if op == "AND":
        return aig.and_many(ins)
    if op == "NAND":
        return aig.and_many(ins) ^ 1
    if op == "OR":
        return aig.or_many(ins)
    if op == "NOR":
        return aig.or_many(ins) ^ 1
    if op == "XOR":
        return aig.XOR(ins[0], ins[1])
    if op == "XNOR":
        return aig.XNOR(ins[0], ins[1])
    if op == "MUX":
        return aig.MUX(ins[0], ins[1], ins[2])
    raise CircuitError(f"cannot encode gate op {op!r}")


def circuit_to_aig(circuit: Circuit) -> Aig:
    """Convert a netlist to a fresh AIG (inputs keep their names)."""
    aig = Aig(circuit.name)
    binding = {net: aig.add_input(net) for net in circuit.inputs}
    literal = encode_circuit_into(aig, circuit, binding)
    for net in circuit.outputs:
        aig.set_output(net, literal[net])
    return aig
