"""Tseitin encoding of AIGs into CNF (cone-of-influence aware)."""

from __future__ import annotations

from repro.aig.aig import FALSE_LIT, TRUE_LIT, Aig
from repro.core.formula import CnfFormula


class AigCnf:
    """CNF of (the relevant cone of) an AIG.

    ``literal_of(aig_lit)`` maps AIG literals to DIMACS literals; nodes
    outside the encoded cone have no variable.
    """

    def __init__(self, aig: Aig, roots: list[int] | None = None):
        self.aig = aig
        self.formula = CnfFormula()
        self._node_var: dict[int, int] = {}
        self._next_var = 0
        self._true_var: int | None = None
        if roots is None:
            roots = list(aig.outputs.values())
        self._encode(roots)

    def _fresh(self) -> int:
        self._next_var += 1
        self.formula.declare_vars(self._next_var)
        return self._next_var

    def _constant_var(self) -> int:
        if self._true_var is None:
            self._true_var = self._fresh()
            self.formula.add_clause([self._true_var])
        return self._true_var

    def _encode(self, roots: list[int]) -> None:
        aig = self.aig
        base = 1 + aig.num_inputs
        cone = sorted(aig.cone(roots))
        for node in cone:
            if node == 0:
                self._node_var[0] = self._constant_var()
                # node 0 is constant FALSE: its literal is the negation.
            elif node < base:
                self._node_var[node] = self._fresh()
        for node in cone:
            if node < base:
                continue
            a, b = aig.ands[node - base]
            out = self._fresh()
            self._node_var[node] = out
            lit_a = self.literal_of(a)
            lit_b = self.literal_of(b)
            self.formula.add_clause([-out, lit_a])
            self.formula.add_clause([-out, lit_b])
            self.formula.add_clause([out, -lit_a, -lit_b])

    def literal_of(self, aig_lit: int) -> int:
        """DIMACS literal for an AIG literal inside the encoded cone."""
        if aig_lit in (FALSE_LIT, TRUE_LIT):
            var = self._node_var.get(0)
            if var is None:
                var = self._constant_var()
                self._node_var[0] = var
            # node 0 is FALSE: literal 0 -> -var, literal 1 -> var,
            # where var is constrained true... invert accordingly.
            return -var if aig_lit == FALSE_LIT else var
        var = self._node_var[aig_lit >> 1]
        return -var if aig_lit & 1 else var

    def input_literal(self, name: str) -> int:
        return self.literal_of(self.aig.input_literal(name))

    def assert_true(self, aig_lit: int) -> None:
        """Constrain an AIG literal to 1.

        Asserting constant false adds the empty clause (immediately
        unsatisfiable), which is the honest encoding.
        """
        if aig_lit == FALSE_LIT:
            self.formula.add_clause([])
        elif aig_lit == TRUE_LIT:
            pass
        else:
            self.formula.add_clause([self.literal_of(aig_lit)])


def aig_to_cnf(aig: Aig) -> tuple[CnfFormula, AigCnf]:
    """Encode the cone of all outputs; returns (formula, mapping)."""
    encoding = AigCnf(aig)
    return encoding.formula, encoding
