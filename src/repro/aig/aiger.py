"""ASCII AIGER (.aag) reading and writing.

AIGER is the interchange format of the hardware model checking
community; the ASCII variant is::

    aag M I L O A
    <input literal>          (I lines)
    <output literal>         (O lines)
    <lhs> <rhs0> <rhs1>      (A lines, lhs = 2 * and-node id)
    i0 name / o0 name ...    (optional symbol table)
    c comment ...

Latches (L > 0) are rejected — sequential designs go through
:mod:`repro.bmc`.  Our :class:`~repro.aig.aig.Aig` literals follow AIGER
numbering exactly, so conversion is direct; the only wrinkle is that
AIGER permits arbitrary input numbering while ``Aig`` requires inputs to
be nodes ``1..I`` — the reader remaps when needed.
"""

from __future__ import annotations

import io
from os import PathLike

from repro.aig.aig import Aig
from repro.core.exceptions import CircuitError


def format_aiger(aig: Aig, comment: str | None = None) -> str:
    """Render an AIG as ASCII AIGER with a symbol table."""
    out = io.StringIO()
    num_nodes = aig.num_nodes - 1  # AIGER's M excludes the constant
    out.write(f"aag {num_nodes} {aig.num_inputs} 0 "
              f"{len(aig.outputs)} {aig.num_ands}\n")
    for index in range(aig.num_inputs):
        out.write(f"{(1 + index) << 1}\n")
    for literal in aig.outputs.values():
        out.write(f"{literal}\n")
    base = 1 + aig.num_inputs
    for offset, (rhs0, rhs1) in enumerate(aig.ands):
        lhs = (base + offset) << 1
        # AIGER convention: rhs0 >= rhs1.
        high, low = max(rhs0, rhs1), min(rhs0, rhs1)
        out.write(f"{lhs} {high} {low}\n")
    for index, name in enumerate(aig.inputs):
        out.write(f"i{index} {name}\n")
    for index, name in enumerate(aig.outputs):
        out.write(f"o{index} {name}\n")
    if comment:
        out.write("c\n")
        for line in comment.splitlines():
            out.write(f"{line}\n")
    return out.getvalue()


def parse_aiger(text: str) -> Aig:
    """Parse ASCII AIGER into an :class:`Aig`."""
    lines = text.splitlines()
    if not lines or not lines[0].startswith("aag"):
        raise CircuitError("not an ASCII AIGER file (missing 'aag')")
    fields = lines[0].split()
    if len(fields) != 6:
        raise CircuitError(f"malformed header {lines[0]!r}")
    try:
        _, num_inputs, num_latches, num_outputs, num_ands = (
            int(f) for f in fields[1:])
    except ValueError as exc:
        raise CircuitError(f"non-integer header field in {lines[0]!r}"
                           ) from exc
    if num_latches:
        raise CircuitError(
            "latches are not supported (model sequential designs as "
            "repro.bmc transition systems)")

    body = lines[1:]
    expected = num_inputs + num_outputs + num_ands
    if len(body) < expected:
        raise CircuitError(f"truncated file: expected {expected} body "
                           f"lines, found {len(body)}")

    def ints(line: str, count: int) -> list[int]:
        parts = line.split()
        if len(parts) != count:
            raise CircuitError(f"malformed line {line!r}")
        try:
            return [int(p) for p in parts]
        except ValueError as exc:
            raise CircuitError(f"malformed line {line!r}") from exc

    input_literals = [ints(body[i], 1)[0] for i in range(num_inputs)]
    output_literals = [ints(body[num_inputs + i], 1)[0]
                       for i in range(num_outputs)]
    and_rows = [ints(body[num_inputs + num_outputs + i], 3)
                for i in range(num_ands)]

    # Symbol table (optional).
    input_names = {i: f"i{i}" for i in range(num_inputs)}
    output_names = {i: f"o{i}" for i in range(num_outputs)}
    for line in body[expected:]:
        if line.startswith("c"):
            break
        if not line or line[0] not in "io":
            continue
        prefix, _, name = line.partition(" ")
        if not name:
            continue
        try:
            index = int(prefix[1:])
        except ValueError:
            continue
        if prefix[0] == "i" and index in input_names:
            input_names[index] = name
        elif prefix[0] == "o" and index in output_names:
            output_names[index] = name

    aig = Aig("aiger")
    # Map AIGER literals to Aig literals (identity when inputs are the
    # canonical nodes 1..I, remapped otherwise).
    lit_map: dict[int, int] = {0: 0, 1: 1}
    for index, literal in enumerate(input_literals):
        if literal & 1 or literal == 0:
            raise CircuitError(f"invalid input literal {literal}")
        our = aig.add_input(input_names[index])
        lit_map[literal] = our
        lit_map[literal ^ 1] = our ^ 1

    def mapped(literal: int) -> int:
        try:
            return lit_map[literal]
        except KeyError:
            raise CircuitError(
                f"literal {literal} used before definition") from None

    for lhs, rhs0, rhs1 in and_rows:
        if lhs & 1:
            raise CircuitError(f"AND lhs must be even, got {lhs}")
        our = aig.AND(mapped(rhs0), mapped(rhs1))
        lit_map[lhs] = our
        lit_map[lhs ^ 1] = our ^ 1

    for index, literal in enumerate(output_literals):
        aig.set_output(output_names[index], mapped(literal))
    return aig


def write_aiger(aig: Aig, path: str | PathLike,
                comment: str | None = None) -> None:
    """Write an AIG to an .aag file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_aiger(aig, comment=comment))


def read_aiger(path: str | PathLike) -> Aig:
    """Read an AIG from an .aag file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_aiger(handle.read())
