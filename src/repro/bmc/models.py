"""BMC model families mirroring the paper's benchmark suites.

=============  =====================================================
paper family   model here
=============  =====================================================
barrel7..9     :func:`barrel_system` — rotating one-hot token ring;
               property: exactly one token survives rotation
longmult12..15 :func:`longmult_system` / :func:`longmult_instance` —
               sequential shift-add multiplier checked per output bit
               against a combinational reference multiplier
fifo8_300..400 :func:`fifo_pair_system` — shift-register FIFO vs
               ring-buffer FIFO running the same push/pop stream;
               property: equal occupancy and equal head element
w10_45..70     :func:`arbiter_system` — round-robin token arbiter;
               property: the token stays one-hot / grants exclusive
exmp72..75     :func:`stack_system` — stack-machine pointer control
               (binary vs one-hot stack pointer); property: the two
               representations agree (PicoJava-style control check)
=============  =====================================================

All instances are UNSAT by construction (the properties hold), which is
what the paper's proof pipeline consumes.
"""

from __future__ import annotations

from repro.bmc.transition import TransitionSystem
from repro.bmc.unroll import BmcInstance, unroll
from repro.circuits.library import wallace_multiplier
from repro.circuits.netlist import Circuit
from repro.core.exceptions import ModelError
from repro.core.formula import CnfFormula


# -- in-circuit helpers ------------------------------------------------------

def _pairwise_two(c: Circuit, bits: list[str]) -> str:
    """Net that is true iff at least two of ``bits`` are true."""
    pairs = [c.AND(bits[i], bits[j])
             for i in range(len(bits)) for j in range(i + 1, len(bits))]
    return pairs[0] if len(pairs) == 1 else c.OR(*pairs)


def _eq_const(c: Circuit, bits: list[str], value: int) -> str:
    """Net that is true iff the little-endian bus equals ``value``."""
    terms = [bit if (value >> i) & 1 else c.NOT(bit)
             for i, bit in enumerate(bits)]
    return terms[0] if len(terms) == 1 else c.AND(*terms)


def _increment(c: Circuit, bits: list[str]) -> list[str]:
    """``bits + 1`` modulo ``2 ** len(bits)``."""
    carry = c.CONST1()
    out = []
    for bit in bits:
        out.append(c.add_gate("XOR", (bit, carry)))
        carry = c.AND(bit, carry)
    return out


def _decrement(c: Circuit, bits: list[str]) -> list[str]:
    """``bits - 1`` modulo ``2 ** len(bits)``."""
    borrow = c.CONST1()
    out = []
    for bit in bits:
        out.append(c.add_gate("XOR", (bit, borrow)))
        borrow = c.AND(c.NOT(bit), borrow)
    return out


def _mux_word(c: Circuit, sel: str, if0: list[str],
              if1: list[str]) -> list[str]:
    return [c.MUX(sel, x0, x1) for x0, x1 in zip(if0, if1)]


def _select(c: Circuit, index_bits: list[str], words: list[str]) -> str:
    """``words[index]`` via a mux tree (len(words) a power of two)."""
    layer = words
    for bit in index_bits:
        layer = [c.MUX(bit, layer[2 * i], layer[2 * i + 1])
                 for i in range(len(layer) // 2)]
    return layer[0]


def _bus_neq(c: Circuit, xs: list[str], ys: list[str]) -> str:
    diffs = [c.add_gate("XOR", (x, y)) for x, y in zip(xs, ys)]
    return diffs[0] if len(diffs) == 1 else c.OR(*diffs)


def _exactly_one_init(nets: list[str], name: str) -> Circuit:
    """Init predicate: exactly one of the given state bits is true."""
    c = Circuit(name)
    ins = [c.add_input(net) for net in nets]
    some = c.OR(*ins)
    c.set_output(c.AND(some, c.NOT(_pairwise_two(c, ins)), name="ok"))
    return c


# -- barrel ------------------------------------------------------------------

def barrel_system(num_regs: int) -> TransitionSystem:
    """Barrel shifter over a one-hot token: ``num_regs`` registers rotate
    each cycle by an input-controlled amount (a log-shifter inside the
    transition relation, like the BMC'99 ``barrel`` family of [20]).

    The token starts at an arbitrary position (symbolic one-hot init);
    ``bad`` fires when the token vanishes or duplicates — rotation by any
    amount preserves one-hotness, so every bound is UNSAT.
    """
    if num_regs < 2:
        raise ModelError("barrel needs at least two registers")
    shift_bits = (num_regs - 1).bit_length()
    c = Circuit(f"barrel{num_regs}_step")
    regs = [c.add_input(f"r{i}") for i in range(num_regs)]
    shift = [c.add_input(f"sh{s}") for s in range(shift_bits)]
    current = regs
    for stage in range(shift_bits):
        amount = (1 << stage) % num_regs
        current = [
            c.MUX(shift[stage], current[i],
                  current[(i - amount) % num_regs])
            for i in range(num_regs)
        ]
    for i in range(num_regs):
        c.set_output(c.BUF(current[i], name=f"next_r{i}"))
    none = c.NOR(*regs)
    c.set_output(c.OR(none, _pairwise_two(c, regs), name="bad"))
    names = [f"r{i}" for i in range(num_regs)]
    return TransitionSystem(
        f"barrel{num_regs}", c, names,
        [f"sh{s}" for s in range(shift_bits)], init={},
        init_circuit=_exactly_one_init(names, f"barrel{num_regs}_init"))


def barrel_instance(num_regs: int, bound: int) -> CnfFormula:
    return unroll(barrel_system(num_regs), bound).formula


# -- longmult ----------------------------------------------------------------

def longmult_system(width: int) -> TransitionSystem:
    """Sequential shift-add multiplier: ``width`` cycles compute
    ``mc * mq`` into a ``2 * width``-bit accumulator."""
    if width < 1:
        raise ModelError("width must be positive")
    c = Circuit(f"longmult{width}_step")
    acc = c.add_input_bus("acc", 2 * width)
    mc = c.add_input_bus("mc", 2 * width)
    mq = c.add_input_bus("mq", width)
    zero = c.CONST0()
    carry = zero
    for i in range(2 * width):
        addend = c.AND(mq[0], mc[i])
        partial = c.add_gate("XOR", (acc[i], addend))
        total = c.add_gate("XOR", (partial, carry))
        carry = c.OR(c.AND(acc[i], addend), c.AND(partial, carry))
        c.set_output(c.BUF(total, name=f"next_acc[{i}]"))
    for i in range(2 * width):
        source = zero if i == 0 else mc[i - 1]
        c.set_output(c.BUF(source, name=f"next_mc[{i}]"))
    for i in range(width):
        source = zero if i == width - 1 else mq[i + 1]
        c.set_output(c.BUF(source, name=f"next_mq[{i}]"))
    c.set_output(c.BUF(zero, name="bad"))
    state = ([f"acc[{i}]" for i in range(2 * width)]
             + [f"mc[{i}]" for i in range(2 * width)]
             + [f"mq[{i}]" for i in range(width)])
    init = {f"acc[{i}]": False for i in range(2 * width)}
    # Multiplicand occupies the low half initially; high half is zero.
    init.update({f"mc[{i}]": False for i in range(width, 2 * width)})
    return TransitionSystem(f"longmult{width}", c, state, (), init)


def longmult_instance(width: int, bit: int) -> CnfFormula:
    """The paper's ``longmult<bit>`` construction at word size ``width``:
    after ``width`` cycles, output bit ``bit`` of the sequential
    multiplier must equal the same bit of a combinational (Wallace)
    reference multiplier of the initial operands.  Asserting the
    disagreement yields an UNSAT formula whose hardness grows with
    ``bit``."""
    if not 0 <= bit < 2 * width:
        raise ModelError(f"bit must be in [0, {2 * width}), got {bit}")
    instance = unroll(longmult_system(width), width, assert_bad=False)
    encoder = instance.encoder
    frame0 = instance.state_literals[0]
    binding = {}
    for i in range(width):
        binding[f"a[{i}]"] = frame0[f"mc[{i}]"]
        binding[f"b[{i}]"] = frame0[f"mq[{i}]"]
    reference = encoder.encode(wallace_multiplier(width), binding,
                               prefix="ref.")
    sequential_bit = instance.state_literals[width][f"acc[{bit}]"]
    reference_bit = reference[f"p[{bit}]"]
    # Assert the bits differ: (x ∨ y) ∧ (¬x ∨ ¬y).
    encoder.add_clause([sequential_bit, reference_bit])
    encoder.add_clause([-sequential_bit, -reference_bit])
    return instance.formula


# -- fifo pair (Table 3 family) -----------------------------------------------

def fifo_pair_system(depth: int) -> TransitionSystem:
    """Two FIFO implementations (shift register vs ring buffer) fed the
    same push/pop/data stream; ``bad`` fires if their occupancy counters
    or head elements (when non-empty) ever disagree."""
    if depth < 2 or depth & (depth - 1):
        raise ModelError("depth must be a power of two >= 2")
    pointer_bits = depth.bit_length() - 1
    count_bits = pointer_bits + 1
    c = Circuit(f"fifo{depth}_step")

    slots_a = c.add_input_bus("a", depth)
    count_a = c.add_input_bus("ca", count_bits)
    slots_b = c.add_input_bus("m", depth)
    read_ptr = c.add_input_bus("rd", pointer_bits)
    write_ptr = c.add_input_bus("wr", pointer_bits)
    count_b = c.add_input_bus("cb", count_bits)
    push = c.add_input("push")
    pop = c.add_input("pop")
    data = c.add_input("din")
    zero = c.CONST0()

    def fifo_control(count: list[str]) -> tuple[str, str, list[str],
                                                list[str]]:
        """Shared control idiom, computed from an implementation's own
        counter: returns (pop_eff, push_eff, count_after_pop,
        next_count)."""
        empty = _eq_const(c, count, 0)
        pop_eff = c.AND(pop, c.NOT(empty))
        after_pop = _mux_word(c, pop_eff, count, _decrement(c, count))
        full = _eq_const(c, after_pop, depth)
        push_eff = c.AND(push, c.NOT(full))
        next_count = _mux_word(c, push_eff, after_pop,
                               _increment(c, after_pop))
        return pop_eff, push_eff, after_pop, next_count

    # Implementation A: shift register, oldest element at index 0.
    pop_a, push_a, after_pop_a, next_count_a = fifo_control(count_a)
    shifted = [
        c.MUX(pop_a, slots_a[i],
              slots_a[i + 1] if i + 1 < depth else zero)
        for i in range(depth)
    ]
    for i in range(depth):
        write_here = c.AND(push_a, _eq_const(c, after_pop_a, i))
        c.set_output(c.MUX(write_here, shifted[i], data,
                           name=f"next_a[{i}]"))
    for i, bit in enumerate(next_count_a):
        c.set_output(c.BUF(bit, name=f"next_ca[{i}]"))
    head_a = slots_a[0]

    # Implementation B: ring buffer with read/write pointers.
    pop_b, push_b, _, next_count_b = fifo_control(count_b)
    next_rd = _mux_word(c, pop_b, read_ptr, _increment(c, read_ptr))
    next_wr = _mux_word(c, push_b, write_ptr, _increment(c, write_ptr))
    for i in range(depth):
        write_here = c.AND(push_b, _eq_const(c, write_ptr, i))
        c.set_output(c.MUX(write_here, slots_b[i], data,
                           name=f"next_m[{i}]"))
    for i, bit in enumerate(next_rd):
        c.set_output(c.BUF(bit, name=f"next_rd[{i}]"))
    for i, bit in enumerate(next_wr):
        c.set_output(c.BUF(bit, name=f"next_wr[{i}]"))
    for i, bit in enumerate(next_count_b):
        c.set_output(c.BUF(bit, name=f"next_cb[{i}]"))
    head_b = _select(c, read_ptr, slots_b)

    counts_differ = _bus_neq(c, count_a, count_b)
    not_empty = c.NOT(_eq_const(c, count_a, 0))
    heads_differ = c.AND(not_empty, c.add_gate("XOR", (head_a, head_b)))
    c.set_output(c.OR(counts_differ, heads_differ, name="bad"))

    state = ([f"a[{i}]" for i in range(depth)]
             + [f"ca[{i}]" for i in range(count_bits)]
             + [f"m[{i}]" for i in range(depth)]
             + [f"rd[{i}]" for i in range(pointer_bits)]
             + [f"wr[{i}]" for i in range(pointer_bits)]
             + [f"cb[{i}]" for i in range(count_bits)])
    init = {f"ca[{i}]": False for i in range(count_bits)}
    init.update({f"cb[{i}]": False for i in range(count_bits)})
    init.update({f"rd[{i}]": False for i in range(pointer_bits)})
    init.update({f"wr[{i}]": False for i in range(pointer_bits)})
    return TransitionSystem(f"fifo{depth}", c, state,
                            ["push", "pop", "din"], init)


def fifo_instance(depth: int, bound: int) -> CnfFormula:
    return unroll(fifo_pair_system(depth), bound).formula


# -- arbiter (w-family) --------------------------------------------------------

def arbiter_system(num_clients: int) -> TransitionSystem:
    """Round-robin token arbiter: the token holder is granted while it
    requests, then the token advances.  ``bad`` fires on lost/duplicated
    tokens or simultaneous grants — unreachable, hence UNSAT."""
    if num_clients < 2:
        raise ModelError("arbiter needs at least two clients")
    c = Circuit(f"arbiter{num_clients}_step")
    token = [c.add_input(f"t{i}") for i in range(num_clients)]
    requests = [c.add_input(f"req{i}") for i in range(num_clients)]
    grants = [c.AND(token[i], requests[i]) for i in range(num_clients)]
    hold = c.OR(*grants)
    for i in range(num_clients):
        c.set_output(c.MUX(hold, token[(i - 1) % num_clients], token[i],
                           name=f"next_t{i}"))
    no_token = c.NOR(*token)
    c.set_output(c.OR(no_token, _pairwise_two(c, token),
                      _pairwise_two(c, grants), name="bad"))
    names = [f"t{i}" for i in range(num_clients)]
    # The token starts with an arbitrary client: symbolic one-hot init.
    return TransitionSystem(
        f"arbiter{num_clients}", c, names,
        [f"req{i}" for i in range(num_clients)], init={},
        init_circuit=_exactly_one_init(
            names, f"arbiter{num_clients}_init"))


def arbiter_instance(num_clients: int, bound: int) -> CnfFormula:
    return unroll(arbiter_system(num_clients), bound).formula


# -- stack controller (PicoJava-style exmp family) ------------------------------

def stack_system(depth: int) -> TransitionSystem:
    """Stack-machine pointer control checked across two encodings.

    Opcode inputs (``op1 op0``): 00 nop, 01 push, 10 pop, 11 alu (pop two,
    push one).  The stack pointer is tracked twice — as a binary counter
    and as a one-hot register over positions ``0 .. depth`` — with guard
    conditions computed independently from each encoding; ``bad`` fires
    when the encodings disagree.  This mirrors the control-logic property
    checks run on the PicoJava II design [21 in the paper]."""
    if depth < 2:
        raise ModelError("depth must be at least 2")
    binary_bits = depth.bit_length()
    c = Circuit(f"stack{depth}_step")
    sp_bin = c.add_input_bus("sp", binary_bits)
    sp_hot = [c.add_input(f"h{i}") for i in range(depth + 1)]
    op0 = c.add_input("op0")
    op1 = c.add_input("op1")

    is_push = c.AND(c.NOT(op1), op0)
    is_pop = c.AND(op1, c.NOT(op0))
    is_alu = c.AND(op1, op0)

    # Binary-encoded pointer with guards from the binary value.
    can_push_bin = c.NOT(_eq_const(c, sp_bin, depth))
    at_zero_bin = _eq_const(c, sp_bin, 0)
    can_pop_bin = c.NOT(at_zero_bin)
    can_alu_bin = c.NOT(c.OR(at_zero_bin, _eq_const(c, sp_bin, 1)))
    inc_bin = c.AND(is_push, can_push_bin)
    dec_bin = c.OR(c.AND(is_pop, can_pop_bin), c.AND(is_alu, can_alu_bin))
    incremented = _mux_word(c, inc_bin, sp_bin, _increment(c, sp_bin))
    next_bin = _mux_word(c, dec_bin, incremented, _decrement(c, sp_bin))
    for i, bit in enumerate(next_bin):
        c.set_output(c.BUF(bit, name=f"next_sp[{i}]"))

    # One-hot pointer with guards from the one-hot encoding.
    can_push_hot = c.NOT(sp_hot[depth])
    can_pop_hot = c.NOT(sp_hot[0])
    can_alu_hot = c.NOR(sp_hot[0], sp_hot[1])
    inc_hot = c.AND(is_push, can_push_hot)
    dec_hot = c.OR(c.AND(is_pop, can_pop_hot), c.AND(is_alu, can_alu_hot))
    zero = c.CONST0()
    for i in range(depth + 1):
        shifted_up = sp_hot[i - 1] if i > 0 else zero
        shifted_down = sp_hot[i + 1] if i < depth else zero
        after_inc = c.MUX(inc_hot, sp_hot[i], shifted_up)
        # inc and dec are mutually exclusive (distinct opcodes).
        c.set_output(c.MUX(dec_hot, after_inc, shifted_down,
                           name=f"next_h{i}"))

    mismatches = [
        c.add_gate("XOR", (sp_hot[i], _eq_const(c, sp_bin, i)))
        for i in range(depth + 1)
    ]
    c.set_output(c.OR(*mismatches, name="bad"))

    state = ([f"sp[{i}]" for i in range(binary_bits)]
             + [f"h{i}" for i in range(depth + 1)])
    init = {f"sp[{i}]": False for i in range(binary_bits)}
    init.update({f"h{i}": i == 0 for i in range(depth + 1)})
    return TransitionSystem(f"stack{depth}", c, state, ["op0", "op1"],
                            init)


def stack_instance(depth: int, bound: int) -> CnfFormula:
    return unroll(stack_system(depth), bound).formula
