"""Counter models for sequential equivalence checking demos.

A binary up-counter and a Gray-code up-counter observed through a
Gray-encoding of their state: the two implementations count in totally
different encodings, yet their observable behavior is identical — the
textbook sequential-equivalence workload for
:func:`repro.bmc.product.product_system`.
"""

from __future__ import annotations

from repro.bmc.transition import TransitionSystem
from repro.circuits.netlist import Circuit
from repro.core.exceptions import ModelError


def binary_counter_system(width: int,
                          buggy: bool = False) -> TransitionSystem:
    """Binary up-counter; observations are the Gray encoding of the
    count (``gray[i] = n[i] XOR n[i+1]``).

    ``buggy=True`` drops the carry into the top bit — a real bug the
    product machine must expose.
    """
    if width < 2:
        raise ModelError("width must be at least 2")
    c = Circuit(f"bin{width}_step")
    bits = c.add_input_bus("n", width)
    carry = c.CONST1()
    for i in range(width):
        total = c.add_gate("XOR", (bits[i], carry))
        carry = c.AND(bits[i], carry)
        if buggy and i == width - 2:
            carry = c.CONST0()
        c.set_output(c.BUF(total, name=f"next_n[{i}]"))
    observations = []
    for i in range(width):
        if i + 1 < width:
            net = c.add_gate("XOR", (bits[i], bits[i + 1]),
                             name=f"gray[{i}]")
        else:
            net = c.BUF(bits[i], name=f"gray[{i}]")
        observations.append(net)
    c.set_output(c.CONST0(name="bad"))
    init = {f"n[{i}]": False for i in range(width)}
    return TransitionSystem(
        f"bin{width}{'_buggy' if buggy else ''}", c,
        [f"n[{i}]" for i in range(width)], (), init,
        observations=observations)


def gray_counter_system(width: int) -> TransitionSystem:
    """Gray-code up-counter; observations are its state bits directly.

    Transition (standard Gray increment): toggle bit 0 when parity of
    the word is even; otherwise toggle the bit above the lowest set bit
    (the top bit toggles when the lowest set bit is the top bit).
    """
    if width < 2:
        raise ModelError("width must be at least 2")
    c = Circuit(f"gray{width}_step")
    bits = c.add_input_bus("g", width)
    parity = bits[0]
    for bit in bits[1:]:
        parity = c.add_gate("XOR", (parity, bit))
    even_parity = c.NOT(parity)

    # lowest_set[i]: bit i is the lowest set bit.
    none_below = c.CONST1()
    toggles = []
    lowest_flags = []
    for i in range(width):
        lowest_flags.append(c.AND(bits[i], none_below))
        none_below = c.AND(none_below, c.NOT(bits[i]))
    for i in range(width):
        if i == 0:
            toggle = even_parity
        elif i < width - 1:
            toggle = c.AND(parity, lowest_flags[i - 1])
        else:
            # Top bit toggles when parity is odd and the lowest set bit
            # is either just below the top or the top itself (the
            # wraparound step of the Gray sequence).
            toggle = c.AND(parity, c.OR(lowest_flags[width - 2],
                                        lowest_flags[width - 1]))
        toggles.append(toggle)
    observations = []
    for i in range(width):
        c.set_output(c.MUX(toggles[i], bits[i], c.NOT(bits[i]),
                           name=f"next_g[{i}]"))
        observations.append(bits[i])
    c.set_output(c.CONST0(name="bad"))
    init = {f"g[{i}]": False for i in range(width)}
    return TransitionSystem(
        f"gray{width}", c, [f"g[{i}]" for i in range(width)], (), init,
        observations=observations)


def counters_joint_init(width: int) -> Circuit:
    """Cross-side initial-state predicate for the counter product:
    the Gray counter's state equals the Gray encoding of the binary
    counter's state.  Used with
    ``product_system(gray, binary, joint_init=..., free_init=True)`` to
    prove equivalence over *all* consistent state pairs, not just the
    all-zeros start."""
    c = Circuit("gray_bin_correspondence")
    gray_bits = [c.add_input(f"L.g[{i}]") for i in range(width)]
    bin_bits = [c.add_input(f"R.n[{i}]") for i in range(width)]
    matches = []
    for i in range(width):
        if i + 1 < width:
            encoded = c.add_gate("XOR", (bin_bits[i], bin_bits[i + 1]))
        else:
            encoded = bin_bits[i]
        matches.append(c.XNOR(gray_bits[i], encoded))
    c.set_output(c.AND(*matches, name="ok") if width > 1
                 else c.BUF(matches[0], name="ok"))
    return c
