"""k-induction: unbounded safety proofs from two UNSAT queries.

Bounded model checking (the paper's workload) only refutes violations up
to a bound; k-induction (Sheeran/Singh/Stålmarck 2000) upgrades it to an
*unbounded* proof with two UNSAT formulas:

* **base case** — no bad state is reachable within ``k`` steps from an
  initial state (an ordinary BMC query);
* **inductive step** — ``k`` consecutive good states are never followed
  by a bad one, starting from *any* state.

Both verdicts come from the proof-logging solver, so an unbounded safety
claim here is backed by two independently verifiable conflict clause
proofs — certified model checking, on exactly the machinery the paper
introduces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bmc.transition import BAD_NET, NEXT_PREFIX, TransitionSystem
from repro.bmc.unroll import unroll
from repro.circuits.tseitin import TseitinEncoder
from repro.core.exceptions import ModelError
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.solver.cdcl import SolverOptions, solve
from repro.verify.verification import verify_proof_v2


def base_case_formula(system: TransitionSystem, k: int) -> CnfFormula:
    """SAT iff some initial path of length <= k reaches a bad state."""
    return unroll(system, k).formula


def inductive_step_formula(system: TransitionSystem,
                           k: int) -> CnfFormula:
    """SAT iff k consecutive good states can be followed by a bad one.

    Frames 0..k carry no initial-state constraint; ``bad`` is asserted
    false in frames 0..k-1 and true in frame k.
    """
    if k < 1:
        raise ModelError("k must be at least 1")
    encoder = TseitinEncoder()
    current = {var: encoder.new_var(f"{var}@0")
               for var in system.state_vars}
    bad_literals = []
    for frame in range(k + 1):
        binding = dict(current)
        for var in system.input_vars:
            binding[var] = encoder.new_var(f"{var}@{frame}")
        nets = encoder.encode(system.step, binding, prefix=f"f{frame}.")
        bad_literals.append(nets[BAD_NET])
        current = {var: nets[NEXT_PREFIX + var]
                   for var in system.state_vars}
    for lit in bad_literals[:-1]:
        encoder.assert_false(lit)
    encoder.assert_true(bad_literals[-1])
    return encoder.formula


@dataclass
class InductionResult:
    """Outcome of a k-induction attempt."""

    system_name: str
    k: int
    proved: bool
    failure: str | None
    base_proof: ConflictClauseProof | None = None
    step_proof: ConflictClauseProof | None = None
    base_formula: CnfFormula | None = None
    step_formula: CnfFormula | None = None

    def verify_certificates(self) -> bool:
        """Independently re-check both proofs (the paper's procedure)."""
        if not self.proved:
            return False
        return (verify_proof_v2(self.base_formula, self.base_proof).ok
                and verify_proof_v2(self.step_formula,
                                    self.step_proof).ok)


def prove_by_induction(system: TransitionSystem, k: int,
                       options: SolverOptions | None = None,
                       ) -> InductionResult:
    """Attempt a k-induction proof of the system's safety property.

    ``proved=False`` with ``failure="base"`` means the property is
    actually violated within ``k`` steps; ``failure="step"`` means the
    property is not k-inductive (try a larger ``k`` — the classic
    k-induction workflow).
    """
    base = base_case_formula(system, k)
    base_result = solve(base, options)
    if base_result.is_sat:
        return InductionResult(system.name, k, proved=False,
                               failure="base")
    step = inductive_step_formula(system, k)
    step_result = solve(step, options)
    if step_result.is_sat:
        return InductionResult(system.name, k, proved=False,
                               failure="step")
    return InductionResult(
        system.name, k, proved=True, failure=None,
        base_proof=ConflictClauseProof.from_log(base_result.log),
        step_proof=ConflictClauseProof.from_log(step_result.log),
        base_formula=base, step_formula=step)


def find_induction_depth(system: TransitionSystem, max_k: int,
                         options: SolverOptions | None = None,
                         ) -> InductionResult:
    """Increase ``k`` until the property proves (or the budget runs out).

    Returns the first successful result, or the last failing one.
    """
    result = None
    for k in range(1, max_k + 1):
        result = prove_by_induction(system, k, options)
        if result.proved or result.failure == "base":
            return result
    assert result is not None
    return result
