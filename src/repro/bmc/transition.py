"""Symbolic transition systems for bounded model checking.

A :class:`TransitionSystem` wraps a combinational *step circuit* whose
inputs are the current state bits plus the primary inputs of one cycle,
and whose outputs are the next-state bits (nets named ``next_<state>``)
plus a ``bad`` net flagging a property violation in that cycle.

The paper's BMC benchmark families (barrel, longmult, the SAT-2002 w/fifo
instances [18, 20]) are unrollings of exactly such systems: the formulas
are unsatisfiable because the property holds within the bound.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.circuits.netlist import Circuit
from repro.core.exceptions import ModelError

NEXT_PREFIX = "next_"
BAD_NET = "bad"


class TransitionSystem:
    """A finite state machine given by a combinational step circuit."""

    def __init__(self, name: str, step: Circuit,
                 state_vars: Sequence[str],
                 input_vars: Sequence[str] = (),
                 init: Mapping[str, bool] | None = None,
                 init_circuit: Circuit | None = None,
                 observations: Sequence[str] = ()):
        self.name = name
        self.step = step
        self.state_vars = list(state_vars)
        self.input_vars = list(input_vars)
        # Observable outputs (nets of the step circuit), used by the
        # product construction for sequential equivalence checking.
        self.observations = list(observations)
        # Partial initial state: unconstrained state bits start free.
        self.init = dict(init or {})
        # Optional symbolic initial-state predicate I(s0): a circuit over
        # (a subset of) the state vars with a single output that must be
        # true in frame 0.  This is how families with a *set* of initial
        # states (e.g. "the token starts at some position") are modeled.
        self.init_circuit = init_circuit
        self._validate()

    def _validate(self) -> None:
        expected_inputs = set(self.state_vars) | set(self.input_vars)
        actual_inputs = set(self.step.inputs)
        if expected_inputs != actual_inputs:
            raise ModelError(
                f"step circuit inputs {sorted(actual_inputs)} do not match "
                f"state+input vars {sorted(expected_inputs)}")
        outputs = set(self.step.outputs)
        for var in self.state_vars:
            if NEXT_PREFIX + var not in outputs:
                raise ModelError(f"step circuit lacks output "
                                 f"{NEXT_PREFIX + var!r}")
        if BAD_NET not in outputs:
            raise ModelError(f"step circuit lacks the {BAD_NET!r} output")
        for var in self.init:
            if var not in self.state_vars:
                raise ModelError(f"init constrains unknown state var "
                                 f"{var!r}")
        if self.init_circuit is not None:
            unknown = set(self.init_circuit.inputs) - set(self.state_vars)
            if unknown:
                raise ModelError(
                    f"init circuit reads non-state nets {sorted(unknown)}")
            if len(self.init_circuit.outputs) != 1:
                raise ModelError("init circuit must have exactly one "
                                 "output (the 'initial state ok' flag)")
        step_nets = set(self.step.inputs) \
            | {gate.output for gate in self.step.gates}
        for net in self.observations:
            if net not in step_nets:
                raise ModelError(
                    f"observation {net!r} is not a net of the step "
                    "circuit")

    @property
    def num_state_bits(self) -> int:
        return len(self.state_vars)

    def run(self, initial: Mapping[str, bool],
            inputs_per_cycle: Sequence[Mapping[str, bool]],
            ) -> tuple[list[dict[str, bool]], list[bool]]:
        """Concrete simulation: returns the state trace and bad flags.

        ``initial`` must assign every state bit (free bits in ``init``
        must be chosen by the caller); consistency with ``init`` is
        enforced.
        """
        state = {var: bool(initial[var]) for var in self.state_vars}
        for var, value in self.init.items():
            if state[var] != value:
                raise ModelError(
                    f"initial value of {var!r} contradicts init")
        if self.init_circuit is not None:
            ok_net = self.init_circuit.outputs[0]
            if not self.init_circuit.simulate(state)[ok_net]:
                raise ModelError("initial state violates the init circuit")
        trace = [dict(state)]
        bad_flags = []
        for cycle, inputs in enumerate(inputs_per_cycle):
            assignment = dict(state)
            for var in self.input_vars:
                if var not in inputs:
                    raise ModelError(
                        f"cycle {cycle}: missing input {var!r}")
                assignment[var] = bool(inputs[var])
            values = self.step.simulate(assignment)
            bad_flags.append(values[BAD_NET])
            state = {var: values[NEXT_PREFIX + var]
                     for var in self.state_vars}
            trace.append(dict(state))
        return trace, bad_flags
