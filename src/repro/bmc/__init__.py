"""Bounded model checking substrate and the paper's BMC model families."""

from repro.bmc.induction import (
    InductionResult,
    base_case_formula,
    find_induction_depth,
    inductive_step_formula,
    prove_by_induction,
)
from repro.bmc.counters import binary_counter_system, gray_counter_system
from repro.bmc.models import (
    arbiter_instance,
    arbiter_system,
    barrel_instance,
    barrel_system,
    fifo_instance,
    fifo_pair_system,
    longmult_instance,
    longmult_system,
    stack_instance,
    stack_system,
)
from repro.bmc.product import product_system
from repro.bmc.transition import BAD_NET, NEXT_PREFIX, TransitionSystem
from repro.bmc.unroll import BmcInstance, unroll

__all__ = [
    "TransitionSystem",
    "BmcInstance",
    "unroll",
    "NEXT_PREFIX",
    "BAD_NET",
    "barrel_system",
    "barrel_instance",
    "longmult_system",
    "longmult_instance",
    "fifo_pair_system",
    "fifo_instance",
    "arbiter_system",
    "arbiter_instance",
    "stack_system",
    "stack_instance",
    "prove_by_induction",
    "find_induction_depth",
    "InductionResult",
    "base_case_formula",
    "inductive_step_formula",
    "product_system",
    "binary_counter_system",
    "gray_counter_system",
]
