"""Product machines: sequential equivalence checking for free.

Given two transition systems over the *same inputs* that expose the same
list of observable nets, the product machine runs both in lockstep and
flags ``bad`` when either side's own property fails or the observations
diverge.  Unrolling the product (or k-inducting on it) then proves the
two designs behave identically on every input sequence up to the bound —
the generalization of the hand-built FIFO pair of
:func:`repro.bmc.models.fifo_pair_system`.
"""

from __future__ import annotations

from repro.bmc.transition import BAD_NET, NEXT_PREFIX, TransitionSystem
from repro.circuits.miter import copy_into
from repro.circuits.netlist import Circuit
from repro.core.exceptions import ModelError


def product_system(left: TransitionSystem, right: TransitionSystem,
                   name: str | None = None,
                   joint_init: Circuit | None = None,
                   free_init: bool = False) -> TransitionSystem:
    """Compose two systems into an observation-comparing product.

    Requirements: identical ``input_vars`` and equally long
    ``observations`` lists (compared positionally).  State variables are
    namespaced ``L.<var>`` / ``R.<var>``; initial-state constraints of
    both sides carry over unless ``free_init=True`` (then the per-side
    fixed inits are dropped — useful for inductive-style equivalence
    over all *consistent* state pairs).

    ``joint_init`` may add a cross-side initial-state predicate: a
    circuit over namespaced state vars (``L.x``, ``R.y``) with one
    output that must hold in frame 0 — e.g. "the two encodings start in
    corresponding states".
    """
    if left.input_vars != right.input_vars:
        raise ModelError(
            "product requires identical input variables; got "
            f"{left.input_vars} vs {right.input_vars}")
    if len(left.observations) != len(right.observations):
        raise ModelError(
            f"observation count mismatch: {len(left.observations)} vs "
            f"{len(right.observations)}")
    if not left.observations:
        raise ModelError("product needs at least one observation to "
                         "compare")

    c = Circuit(name or f"product({left.name},{right.name})")
    state_vars: list[str] = []
    init: dict[str, bool] = {}
    for tag, system in (("L", left), ("R", right)):
        for var in system.state_vars:
            c.add_input(f"{tag}.{var}")
            state_vars.append(f"{tag}.{var}")
        if not free_init:
            for var, value in system.init.items():
                init[f"{tag}.{var}"] = value
    for var in left.input_vars:
        c.add_input(var)

    maps = {}
    for tag, system in (("L", left), ("R", right)):
        binding = {var: f"{tag}.{var}" for var in system.state_vars}
        binding.update({var: var for var in system.input_vars})
        maps[tag] = copy_into(c, system.step, binding, f"{tag}.")
        for var in system.state_vars:
            c.add_gate("BUF", (maps[tag][NEXT_PREFIX + var],),
                       name=f"{NEXT_PREFIX}{tag}.{var}")

    mismatches = [
        c.add_gate("XOR", (maps["L"][lo], maps["R"][ro]))
        for lo, ro in zip(left.observations, right.observations)
    ]
    c.set_output(c.OR(maps["L"][BAD_NET], maps["R"][BAD_NET],
                      *mismatches, name=BAD_NET))
    for var in state_vars:
        c.set_output(f"{NEXT_PREFIX}{var}")

    init_circuit = _merge_init_circuits(left, right, joint_init,
                                        free_init)
    return TransitionSystem(
        c.name, c, state_vars, list(left.input_vars), init,
        init_circuit=init_circuit)


def _merge_init_circuits(left: TransitionSystem,
                         right: TransitionSystem,
                         joint_init: Circuit | None,
                         free_init: bool) -> Circuit | None:
    pieces = [(tag, system) for tag, system in (("L", left), ("R", right))
              if system.init_circuit is not None and not free_init]
    if not pieces and joint_init is None:
        return None
    c = Circuit("product_init")
    declared: set[str] = set()
    ok_nets = []
    for tag, system in pieces:
        binding = {}
        for var in system.init_circuit.inputs:
            namespaced = f"{tag}.{var}"
            if namespaced not in declared:
                c.add_input(namespaced)
                declared.add(namespaced)
            binding[var] = namespaced
        mapping = copy_into(c, system.init_circuit, binding, f"{tag}i.")
        ok_nets.append(mapping[system.init_circuit.outputs[0]])
    if joint_init is not None:
        if len(joint_init.outputs) != 1:
            raise ModelError(
                "joint_init must have exactly one output")
        binding = {}
        for var in joint_init.inputs:
            if var not in declared:
                c.add_input(var)
                declared.add(var)
            binding[var] = var
        mapping = copy_into(c, joint_init, binding, "J.")
        ok_nets.append(mapping[joint_init.outputs[0]])
    combined = (ok_nets[0] if len(ok_nets) == 1
                else c.AND(*ok_nets))
    c.set_output(c.BUF(combined, name="ok"))
    return c
