"""BMC unrolling: transition system × bound → CNF.

The standard Biere-et-al. construction [2 in the paper]: stamp the
transition relation once per time frame over a shared variable pool,
constrain frame 0 to the initial states, and assert that the ``bad``
output fires in at least one frame.  The result is satisfiable iff the
property can be violated within the bound — so every instance built from
a correct design is UNSAT, which is precisely what the paper's proof
machinery consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bmc.transition import BAD_NET, NEXT_PREFIX, TransitionSystem
from repro.circuits.tseitin import TseitinEncoder
from repro.core.exceptions import ModelError
from repro.core.formula import CnfFormula


@dataclass
class BmcInstance:
    """An unrolled BMC problem.

    ``state_literals[t]`` maps state var names to their literal in frame
    ``t`` (0 .. bound); ``input_literals[t]`` and ``bad_literals[t]``
    cover frames 0 .. bound-1.  ``encoder`` stays open, so callers (e.g.
    the longmult reference-model construction) can add further
    constraints before reading ``formula``.
    """

    system: TransitionSystem
    bound: int
    encoder: TseitinEncoder
    state_literals: list[dict[str, int]] = field(default_factory=list)
    input_literals: list[dict[str, int]] = field(default_factory=list)
    bad_literals: list[int] = field(default_factory=list)

    @property
    def formula(self) -> CnfFormula:
        return self.encoder.formula


def unroll(system: TransitionSystem, bound: int,
           assert_bad: bool = True) -> BmcInstance:
    """Unroll ``bound`` steps; optionally assert some frame is bad.

    With ``assert_bad=False`` the caller owns the property (used by
    models whose specification is a reference circuit rather than the
    per-frame ``bad`` flag).
    """
    if bound < 1:
        raise ModelError("bound must be at least 1")
    encoder = TseitinEncoder()
    instance = BmcInstance(system, bound, encoder)

    frame0 = {
        var: encoder.new_var(f"{var}@0") for var in system.state_vars}
    for var, value in system.init.items():
        encoder.assert_true(frame0[var] if value else -frame0[var])
    if system.init_circuit is not None:
        nets = encoder.encode(system.init_circuit, frame0, prefix="init.")
        encoder.assert_true(nets[system.init_circuit.outputs[0]])
    instance.state_literals.append(frame0)

    current = frame0
    for frame in range(bound):
        binding: dict[str, int] = dict(current)
        inputs = {
            var: encoder.new_var(f"{var}@{frame}")
            for var in system.input_vars}
        binding.update(inputs)
        instance.input_literals.append(inputs)
        nets = encoder.encode(system.step, binding,
                              prefix=f"f{frame}.")
        instance.bad_literals.append(nets[BAD_NET])
        current = {var: nets[NEXT_PREFIX + var]
                   for var in system.state_vars}
        instance.state_literals.append(current)

    if assert_bad:
        encoder.add_clause(instance.bad_literals)
    return instance
