"""Experiment harness: regenerate the paper's Tables 1, 2 and 3."""

from repro.experiments.runner import (
    ExperimentRow,
    berkmin_options,
    run_instance,
    run_instances,
)
from repro.experiments.instances import format_inventory
from repro.experiments.report import build_report
from repro.experiments.table1 import format_table1
from repro.experiments.table2 import format_table2
from repro.experiments.table3 import format_table3

__all__ = [
    "ExperimentRow",
    "berkmin_options",
    "run_instance",
    "run_instances",
    "format_table1",
    "format_table2",
    "format_table3",
    "build_report",
    "format_inventory",
]
