"""One-shot experiment report: all tables, written as Markdown.

``python -m repro.experiments.report --output results.md`` runs every
instance of Tables 1-3 and renders the three tables (plus run metadata)
into a single self-contained Markdown file — the artifact to attach to a
reproduction claim.  ``--quick`` restricts to one fast instance per
family for smoke-testing the pipeline.
"""

from __future__ import annotations

import argparse
import platform
import sys
import time

from repro.benchgen.registry import (
    INSTANCES,
    TABLE1_INSTANCES,
    TABLE3_INSTANCES,
)
from repro.experiments.runner import ExperimentRow, run_instances
from repro.experiments.table1 import QUICK_INSTANCES


def _markdown_table(headers: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def _table1(rows: list[ExperimentRow]) -> str:
    return _markdown_table(
        ["Name", "|F*|", "Tested %", "Initial clauses", "Core %",
         "paper analog"],
        [[row.name, f"{row.num_conflict_clauses:,}",
          f"{100 * row.tested_fraction:.1f}",
          f"{row.num_clauses:,}", f"{100 * row.core_fraction:.1f}",
          row.paper_analog] for row in rows])


def _table2(rows: list[ExperimentRow]) -> str:
    return _markdown_table(
        ["Name", "Verif (s)", "Res. nodes", "Confl. lits", "Ratio %",
         "paper analog"],
        [[row.name, f"{row.verification_time:.2f}",
          f"{row.resolution_nodes:,}", f"{row.conflict_literals:,}",
          f"{row.ratio_percent:.1f}", row.paper_analog]
         for row in rows])


def _table3(rows: list[ExperimentRow]) -> str:
    return _markdown_table(
        ["Name", "Res. nodes", "Confl. lits", "Ratio %", "paper analog"],
        [[row.name, f"{row.resolution_nodes:,}",
          f"{row.conflict_literals:,}", f"{row.ratio_percent:.1f}",
          row.paper_analog] for row in rows])


def build_report(table12_names, table3_names,
                 progress: bool = False) -> str:
    started = time.time()
    main_rows = run_instances(table12_names, progress=progress)
    scaling_rows = run_instances(table3_names, progress=progress)
    elapsed = time.time() - started

    smaller = sum(1 for row in main_rows if row.ratio_percent < 100.0)
    ratios = [row.ratio_percent for row in scaling_rows]
    decreasing = all(a >= b for a, b in zip(ratios, ratios[1:]))

    parts = [
        "# Measured results — Goldberg & Novikov (DATE 2003) "
        "reproduction",
        "",
        f"- python {sys.version.split()[0]} on {platform.platform()}",
        f"- {len(main_rows) + len(scaling_rows)} instances, "
        f"{elapsed:.0f}s total (solve + verify + size accounting)",
        f"- solver: BerkMin-style adaptive learning "
        f"(see `repro.experiments.runner.berkmin_options`)",
        "",
        "## Table 1 — unsatisfiable core extraction",
        "",
        _table1(main_rows),
        "",
        "## Table 2 — proof verification and proof sizes",
        "",
        _table2(main_rows),
        "",
        f"Conflict clause proof smaller on **{smaller}/{len(main_rows)}**"
        " instances (paper: all but a few).",
        "",
        "## Table 3 — growth of resolution proof size (fifo family)",
        "",
        _table3(scaling_rows),
        "",
        f"Ratio trend with growing bound: "
        f"**{'decreasing — matches the paper' if decreasing else 'not monotone on this run'}**"
        f" (paper: 18 → 11 → 7).",
        "",
    ]
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> str:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the report here (default: stdout)")
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    if args.quick:
        table12 = list(QUICK_INSTANCES)
        table3 = ["fifo8_6"]
    else:
        table12 = list(TABLE1_INSTANCES)
        table3 = list(TABLE3_INSTANCES)
    for name in table12 + table3:
        assert name in INSTANCES
    report = build_report(table12, table3, progress=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"report written to {args.output}")
    else:
        print(report)
    return report


if __name__ == "__main__":
    main()
