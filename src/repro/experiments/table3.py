"""Table 3 — growth of resolution proof size with instance size.

The paper's scaling study on the fifo8 family: as the BMC bound grows,
the ratio of conflict-clause proof size to resolution-graph proof size
*decreases* (18% → 7% in the paper for fifo8_300 → fifo8_400) — i.e. the
advantage of conflict clause proofs widens on larger instances.

Run with ``python -m repro.experiments.table3``.
"""

from __future__ import annotations

import argparse

from repro.benchgen.registry import TABLE3_INSTANCES
from repro.experiments.runner import ExperimentRow, run_instances

_HEADER = (f"{'Name':<12} {'Res. proof':>12} {'Confl. proof':>13} "
           f"{'Ratio':>7}   paper")
_SUBHEADER = (f"{'':<12} {'size(nodes)':>12} {'size(lits)':>13} "
              f"{'%':>7}   analog")


def format_table3(rows: list[ExperimentRow]) -> str:
    lines = ["Table 3. Growth of resolution proof size",
             _HEADER, _SUBHEADER, "-" * 64]
    for row in rows:
        lines.append(
            f"{row.name:<12} {row.resolution_nodes:>12,} "
            f"{row.conflict_literals:>13,} "
            f"{row.ratio_percent:>7.1f}   {row.paper_analog}")
    ratios = [row.ratio_percent for row in rows]
    trend = ("decreasing (matches the paper)"
             if all(a >= b for a, b in zip(ratios, ratios[1:]))
             else "not monotonically decreasing on this run")
    lines.append("-" * 64)
    lines.append(f"ratio trend with growing bound: {trend}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> list[ExperimentRow]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instances", nargs="*", default=None)
    args = parser.parse_args(argv)
    names = args.instances or TABLE3_INSTANCES
    rows = run_instances(names, progress=True)
    print(format_table3(rows))
    return rows


if __name__ == "__main__":
    main()
