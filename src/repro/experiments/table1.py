"""Table 1 — unsatisfiable core extraction.

Regenerates the paper's Table 1 columns per instance: the number of
conflict clauses ``|F*|``, the percentage of them actually tested by
``Proof_verification2``, the initial clause count, and the percentage of
initial clauses in the extracted unsatisfiable core.

Run with ``python -m repro.experiments.table1`` (``--quick`` restricts
to the fastest instance of each family).
"""

from __future__ import annotations

import argparse

from repro.benchgen.registry import TABLE1_INSTANCES
from repro.experiments.runner import ExperimentRow, run_instances

QUICK_INSTANCES = ("pipe_2", "stack8_8", "barrel5", "longmult_4",
                   "eq_alu4", "w6_10")

_HEADER = (f"{'Name':<12} {'All conflict':>13} {'Tested':>8} "
           f"{'Clauses in':>11} {'Unsat':>7}   paper")
_SUBHEADER = (f"{'':<12} {'clauses':>13} {'%':>8} "
              f"{'initial CNF':>11} {'core %':>7}   analog")


def format_table1(rows: list[ExperimentRow]) -> str:
    lines = ["Table 1. Unsatisfiable core extraction",
             _HEADER, _SUBHEADER, "-" * 72]
    for row in rows:
        lines.append(
            f"{row.name:<12} {row.num_conflict_clauses:>13,} "
            f"{100 * row.tested_fraction:>8.1f} "
            f"{row.num_clauses:>11,} "
            f"{100 * row.core_fraction:>7.1f}   {row.paper_analog}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> list[ExperimentRow]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="one fast instance per family")
    parser.add_argument("--instances", nargs="*", default=None,
                        help="explicit instance names")
    args = parser.parse_args(argv)
    if args.instances:
        names = args.instances
    elif args.quick:
        names = QUICK_INSTANCES
    else:
        names = TABLE1_INSTANCES
    rows = run_instances(names, progress=True)
    print(format_table1(rows))
    return rows


if __name__ == "__main__":
    main()
