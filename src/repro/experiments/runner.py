"""Instrumented solve → log → verify pipeline behind Tables 1-3.

For each named instance this module measures everything the paper's
tables report: proof generation (BerkMin-configured solver), conflict
clause proof size in literals, exact resolution-graph node count,
``Proof_verification2`` runtime, the fraction of ``F*`` actually tested,
and the extracted unsatisfiable core's share of the original clauses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.benchgen.registry import INSTANCES
from repro.core.exceptions import ReproError
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.proofs.sizes import compare_proof_sizes
from repro.solver.cdcl import SolverOptions, solve
from repro.verify.verification import verify_proof_v2


def berkmin_options(**overrides) -> SolverOptions:
    """The solver configuration used throughout the experiments:
    adaptive local/global learning (1UIP normally, a decision clause
    when the 1UIP clause is long) and the BerkMin decision heuristic —
    mirroring the solver that produced the paper's proofs (Section 6:
    BerkMin "once in a while deduces clauses in terms of decision
    variables", and "combining the deduction of local and global
    clauses gives a noticeable speed-up")."""
    options = {
        "learning": "adaptive",
        "adaptive_threshold": 20,
        "heuristic": "berkmin",
        "restart": "luby",
        "restart_base": 100,
    }
    options.update(overrides)
    return SolverOptions(**options)


@dataclass
class ExperimentRow:
    """All measurements for one instance (one row across Tables 1-3)."""

    name: str
    paper_analog: str
    num_vars: int
    num_clauses: int
    solve_time: float
    conflicts: int
    num_conflict_clauses: int
    tested_fraction: float
    core_size: int
    core_fraction: float
    verification_time: float
    resolution_nodes: int
    conflict_literals: int

    @property
    def ratio_percent(self) -> float:
        """Conflict-clause proof size / resolution proof size, in %."""
        if not self.resolution_nodes:
            return float("inf") if self.conflict_literals else 0.0
        return 100.0 * self.conflict_literals / self.resolution_nodes


_cache: dict[str, ExperimentRow] = {}


def run_instance(name: str, use_cache: bool = True) -> ExperimentRow:
    """Generate, solve, and verify one named instance."""
    if use_cache and name in _cache:
        return _cache[name]
    spec = INSTANCES[name]
    formula = spec.build()

    start = time.perf_counter()
    result = solve(formula, berkmin_options())
    solve_time = time.perf_counter() - start
    if not result.is_unsat:
        raise ReproError(f"instance {name} did not come out UNSAT "
                         f"({result.status}) — registry bug")

    proof = ConflictClauseProof.from_log(result.log)
    sizes = compare_proof_sizes(result.log)
    report = verify_proof_v2(formula, proof)
    if not report.ok:
        raise ReproError(
            f"proof of {name} failed verification: {report.failure_reason}")

    row = ExperimentRow(
        name=name,
        paper_analog=spec.paper_analog,
        num_vars=formula.num_vars,
        num_clauses=formula.num_clauses,
        solve_time=solve_time,
        conflicts=result.stats.conflicts,
        num_conflict_clauses=len(proof),
        tested_fraction=report.tested_fraction,
        core_size=report.core.size,
        core_fraction=report.core.fraction,
        verification_time=report.verification_time,
        resolution_nodes=sizes.resolution_graph_nodes,
        conflict_literals=sizes.conflict_proof_literals,
    )
    if use_cache:
        _cache[name] = row
    return row


def run_instances(names, use_cache: bool = True,
                  progress: bool = False) -> list[ExperimentRow]:
    rows = []
    for name in names:
        if progress:
            print(f"  running {name} ...", flush=True)
        rows.append(run_instance(name, use_cache=use_cache))
    return rows
