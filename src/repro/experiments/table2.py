"""Table 2 — proof verification and proof size comparison.

Regenerates the paper's Table 2 per instance: ``Proof_verification2``
runtime, the resolution graph size in nodes (exact for us — the paper
could only lower-bound it), the conflict clause proof size in literals,
and their ratio in percent.  The paper's headline observation — conflict
clause proofs are smaller than resolution graph proofs on most instances
— is what the ratio column demonstrates.

Run with ``python -m repro.experiments.table2``.
"""

from __future__ import annotations

import argparse

from repro.benchgen.registry import TABLE2_INSTANCES
from repro.experiments.runner import ExperimentRow, run_instances
from repro.experiments.table1 import QUICK_INSTANCES

_HEADER = (f"{'Name':<12} {'Verif.':>8} {'Res. graph':>12} "
           f"{'Confl. proof':>13} {'Ratio':>7}   paper")
_SUBHEADER = (f"{'':<12} {'time(s)':>8} {'size(nodes)':>12} "
              f"{'size(lits)':>13} {'%':>7}   analog")


def format_table2(rows: list[ExperimentRow]) -> str:
    lines = ["Table 2. Proof verification",
             _HEADER, _SUBHEADER, "-" * 72]
    for row in rows:
        lines.append(
            f"{row.name:<12} {row.verification_time:>8.2f} "
            f"{row.resolution_nodes:>12,} "
            f"{row.conflict_literals:>13,} "
            f"{row.ratio_percent:>7.1f}   {row.paper_analog}")
    smaller = sum(1 for row in rows if row.ratio_percent < 100.0)
    lines.append("-" * 72)
    lines.append(f"conflict clause proof smaller on {smaller}/{len(rows)} "
                 "instances (paper: all but a few)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> list[ExperimentRow]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="one fast instance per family")
    parser.add_argument("--instances", nargs="*", default=None)
    args = parser.parse_args(argv)
    if args.instances:
        names = args.instances
    elif args.quick:
        names = QUICK_INSTANCES
    else:
        names = TABLE2_INSTANCES
    rows = run_instances(names, progress=True)
    print(format_table2(rows))
    return rows


if __name__ == "__main__":
    main()
