"""Instance inventory: enumerate the registry with formula statistics.

``python -m repro.experiments.instances`` prints every registered
benchmark instance with its family, paper analog, and generated formula
size — the quick way to see what the reproduction's workload actually
looks like (``--family`` filters, ``--skip-build`` lists metadata only).
"""

from __future__ import annotations

import argparse

from repro.benchgen.registry import INSTANCES


def format_inventory(names: list[str], build: bool = True) -> str:
    header = (f"{'Name':<12} {'Family':<9} {'Analog':<11} "
              f"{'Vars':>7} {'Clauses':>9}  Description")
    lines = [header, "-" * (len(header) + 20)]
    for name in names:
        spec = INSTANCES[name]
        if build:
            formula = spec.build()
            size = f"{formula.num_vars:>7,} {formula.num_clauses:>9,}"
        else:
            size = f"{'-':>7} {'-':>9}"
        lines.append(f"{name:<12} {spec.family:<9} "
                     f"{spec.paper_analog:<11} {size}  "
                     f"{spec.description}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--family", default=None,
                        help="restrict to one family")
    parser.add_argument("--skip-build", action="store_true",
                        help="metadata only (skip formula generation)")
    args = parser.parse_args(argv)
    names = [name for name, spec in INSTANCES.items()
             if args.family is None or spec.family == args.family]
    if not names:
        families = sorted({spec.family for spec in INSTANCES.values()})
        parser.error(f"no instances in family {args.family!r}; "
                     f"known families: {', '.join(families)}")
    print(format_inventory(names, build=not args.skip_build))


if __name__ == "__main__":
    main()
