"""Flat clause-arena BCP engine with zero-copy shared-memory export.

The list-of-lists clause database of the other engines pays a Python
object per clause and a pointer chase per literal.  DRAT-trim (Heule
2016) stores its whole clause database in one flat literal array and
window shifting (Chen 2016) demonstrates that memory layout is the
decisive factor in proof-checking throughput; this module is that
observation applied to our engines.

:class:`ClauseArena` is a struct-of-arrays clause store:

* ``pool`` — every clause's encoded literals, concatenated, in one
  ``array('i')``;
* ``starts`` — CSR-style offsets (``len == num_clauses + 1``), clause
  ``cid`` occupying ``pool[starts[cid]:starts[cid+1]]``;
* ``flags`` — one byte per clause; bit 0 marks a deletion tombstone
  (the pool itself is never compacted, cids stay dense and stable).

Because the arena is two contiguous ``int32`` buffers, it serializes to
a single :class:`multiprocessing.shared_memory.SharedMemory` block:
:meth:`ClauseArena.to_shared_memory` lays out
``[num_vars, num_clauses, pool_len] + starts + pool`` and returns a
small picklable :class:`ArenaHandle`; :meth:`ClauseArena
.from_shared_memory` maps it back as **read-only** ``memoryview``\\ s
without copying a byte.  That gives the parallel verification backend
a zero-copy transport: the parent builds ``F ∪ F*`` once, every worker
maps the same physical pages and keeps only its private
trail/assignment state — no fork-time page duplication, and the spawn
start method works because nothing large crosses a pickle boundary.

:class:`ArenaPropagator` implements the :class:`~repro.bcp.engine.
PropagatorBase` contract over an arena.  The watch machinery lives
*outside* the (possibly immutable, possibly shared) pool:

* ``watch_a``/``watch_b`` — the two watched literals per clause
  (MiniSat normalizes watches by reordering the clause body; a shared
  pool cannot be written, so the watch *table* is what moves);
* a process-local list mirror of ``pool``/``starts`` that the hot loop
  scans — CPython builds a fresh int object per ``array`` element
  access, while list elements are pre-built objects, so mirroring the
  compact buffers into lists once per process buys back the per-access
  boxing cost without giving up the shared transport format;
* ``watch_cids``/``watch_blockers`` — per-literal watch lists as
  parallel flat lists, each entry carrying a *blocker* literal (any
  literal of the clause, typically the other watch).  A visit whose
  blocker is already true keeps the entry and never touches the clause
  body — the branch-light fast path that skips most of the inner loop
  on the long conflict clauses proofs are made of.

Counter semantics match the other engines: ``watch_visits`` counts
watch-list entries scanned, ``clause_visits`` counts clause bodies
inspected (a blocker hit is a watch visit but *not* a clause visit —
that saved body inspection is precisely the optimization, and it is
observable), ``assignments``/``purged``/``detach_misses`` as in
:class:`~repro.bcp.engine.PropagationCounters`.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.bcp.engine import FALSE, TRUE, NO_CEILING as _NO_CEILING, \
    PropagatorBase

# flags bits
_DELETED = 1

# Header words of the shared-memory layout.
_HEADER_WORDS = 3


@dataclass(frozen=True)
class ArenaHandle:
    """A picklable reference to a shared-memory arena.

    Small enough to cross any start-method boundary (a name and two
    integers); the receiving process attaches with
    :meth:`ClauseArena.from_shared_memory`.
    """

    name: str
    num_clauses: int
    pool_len: int


class ClauseArena:
    """Struct-of-arrays clause store (flat literal pool + offsets)."""

    def __init__(self) -> None:
        self.pool: "array[int]" = array("i")
        self.starts: "array[int]" = array("i", [0])
        self.flags = bytearray()
        self.num_vars = 0
        # Live-set accounting: clauses/pool words not yet tombstoned.
        # The streaming verifier budgets and evicts on these, so they
        # are maintained eagerly by append()/tombstone() instead of
        # recomputed by scanning flags.
        self.live_clauses = 0
        self.live_words = 0
        # True when pool/starts are read-only views of shared memory.
        self.readonly = False
        self._shm = None

    @property
    def num_clauses(self) -> int:
        return len(self.starts) - 1

    @property
    def dead_words(self) -> int:
        """Pool words held by tombstoned clauses (the pool is never
        compacted in place — eviction means rebuilding elsewhere)."""
        return len(self.pool) - self.live_words

    def live_bytes(self) -> int:
        """Estimated resident footprint of the *live* clause set:
        live pool words plus one offset word per live clause."""
        return (self.live_words + self.live_clauses) \
            * self.pool.itemsize

    def append(self, enc_lits) -> int:
        """Append a clause of encoded literals; return its cid."""
        if self.readonly:
            raise ValueError(
                "cannot append to a shared-memory-attached arena")
        cid = len(self.starts) - 1
        pool = self.pool
        num_vars = self.num_vars
        for enc in enc_lits:
            pool.append(enc)
            var = enc >> 1
            if var > num_vars:
                num_vars = var
        self.num_vars = num_vars
        self.live_words += len(pool) - self.starts[cid]
        self.live_clauses += 1
        self.starts.append(len(pool))
        self.flags.append(0)
        return cid

    def tombstone(self, cid: int) -> None:
        """Mark clause ``cid`` deleted and update the live accounting
        (idempotent: a second tombstone of the same cid is a no-op)."""
        if self.flags[cid] & _DELETED:
            return
        self.flags[cid] |= _DELETED
        self.live_clauses -= 1
        self.live_words -= self.length(cid)

    def length(self, cid: int) -> int:
        return self.starts[cid + 1] - self.starts[cid]

    def lits(self, cid: int):
        """The literals of clause ``cid`` (empty if tombstoned)."""
        if self.flags[cid] & _DELETED:
            return ()
        return self.pool[self.starts[cid]:self.starts[cid + 1]]

    # -- shared-memory transport ------------------------------------------

    def to_shared_memory(self) -> ArenaHandle:
        """Copy the arena into one shared-memory block; return its handle.

        The creating process owns the segment: call
        :meth:`release_shared` (with ``unlink=True``) once every
        attached process is done with it.  ``flags`` are deliberately
        not shipped — deletions are process-local state and the
        verification workers never delete.
        """
        from multiprocessing import shared_memory

        if self._shm is not None:
            raise ValueError("arena is already exported")
        header = array("i", [self.num_vars, self.num_clauses,
                             len(self.pool)])
        itemsize = header.itemsize
        words = _HEADER_WORDS + len(self.starts) + len(self.pool)
        shm = shared_memory.SharedMemory(create=True,
                                         size=max(1, words * itemsize))
        view = memoryview(shm.buf).cast("B").cast("i")
        offset = _HEADER_WORDS
        view[:offset] = header
        view[offset:offset + len(self.starts)] = self.starts
        offset += len(self.starts)
        if len(self.pool):
            view[offset:offset + len(self.pool)] = self.pool
        view.release()
        self._shm = shm
        return ArenaHandle(name=shm.name,
                           num_clauses=self.num_clauses,
                           pool_len=len(self.pool))

    @classmethod
    def from_shared_memory(cls, handle: ArenaHandle) -> "ClauseArena":
        """Attach to an exported arena without copying the pool.

        ``pool``/``starts`` become read-only ``memoryview``\\ s into the
        shared block; ``flags`` is a fresh (private) zero bytearray so
        tombstoning stays process-local.  Attaching must not register
        the segment with this process's ``resource_tracker`` — the
        *creator* owns the unlink; Python 3.11 has no ``track=False``
        yet, so registration is suppressed around the attach (an
        after-the-fact ``unregister`` would unbalance a fork-shared
        tracker: every worker's extra UNREGISTER past the parent's one
        REGISTER makes the tracker print KeyError noise).
        """
        from multiprocessing import resource_tracker, shared_memory

        orig_register = resource_tracker.register

        def _no_track(name, rtype):
            if rtype != "shared_memory":
                orig_register(name, rtype)

        resource_tracker.register = _no_track
        try:
            shm = shared_memory.SharedMemory(name=handle.name)
        finally:
            resource_tracker.register = orig_register
        view = memoryview(shm.buf).cast("B").cast("i")
        num_vars = view[0]
        num_clauses = view[1]
        pool_len = view[2]
        offset = _HEADER_WORDS
        arena = cls.__new__(cls)
        arena.starts = view[offset:offset + num_clauses + 1].toreadonly()
        offset += num_clauses + 1
        arena.pool = view[offset:offset + pool_len].toreadonly()
        arena.flags = bytearray(num_clauses)
        arena.num_vars = num_vars
        arena.live_clauses = num_clauses
        arena.live_words = pool_len
        arena.readonly = True
        arena._shm = shm
        view.release()
        import atexit

        # Views must be released before the SharedMemory finalizer runs
        # or interpreter shutdown prints BufferError noise.
        atexit.register(arena.detach)
        return arena

    def detach(self) -> None:
        """Release the shared views and close this process's mapping
        (idempotent; a no-op for plain in-process arenas)."""
        if self._shm is None:
            return
        if self.readonly:
            try:
                self.starts.release()
                self.pool.release()
            except AttributeError:
                pass
            self.starts = array("i", [0])
            self.pool = array("i")
            self.readonly = False
        shm, self._shm = self._shm, None
        shm.close()

    def release_shared(self, unlink: bool = True) -> None:
        """Creator-side cleanup: close the mapping and (by default)
        unlink the segment.  Safe to call when nothing was exported."""
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        shm.close()
        if unlink:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


def build_arena(formula, proof) -> tuple[ClauseArena, int]:
    """One arena holding ``F`` followed by ``F*``; returns
    ``(arena, num_input)``.

    Literal encoding and order-preserving deduplication match
    :meth:`PropagatorBase.add_clause` exactly, so arena cid ``i`` holds
    the same body the in-process checkers would store — proof clause
    ``k`` is arena clause ``num_input + k``, and a worker attaching the
    arena needs no pickled formula or proof at all.
    """
    from repro.core.literals import encode

    arena = ClauseArena()
    for clause in formula:
        arena.append(_dedup([encode(lit) for lit in clause.literals]))
    for lits in proof:
        arena.append(_dedup([encode(lit) for lit in lits]))
    if formula.num_vars > arena.num_vars:
        arena.num_vars = formula.num_vars
    return arena, formula.num_clauses


def _dedup(enc_lits: list[int]) -> list[int]:
    seen: set[int] = set()
    out = []
    for enc in enc_lits:
        if enc not in seen:
            seen.add(enc)
            out.append(enc)
    return out


class ArenaPropagator(PropagatorBase):
    """Two-watched-literal BCP over a flat clause arena, with blockers."""

    arena_backed = True

    def __init__(self, num_vars: int = 0,
                 arena: ClauseArena | None = None):
        adopt = arena is not None
        self.arena = arena if adopt else ClauseArena()
        # Process-local scan mirror of the arena's pool/starts.  The
        # compact ``array('i')`` buffers are the storage and transport
        # format, but CPython materializes a fresh int object on every
        # array element access; a plain list derefs a cached object
        # instead, which is what the hot loop needs.  The mirror is
        # extended lazily as the arena grows (one bulk copy when
        # adopting a shared arena) and is never shipped anywhere.
        self._pool: list[int] = []
        self._starts: list[int] = [0]
        # Watched literals per clause (-1 for clauses with < 2
        # literals, which carry no watches).
        self.watch_a: list[int] = []
        self.watch_b: list[int] = []
        # Per-literal watch lists: parallel (cid, blocker) columns.
        self.watch_cids: list[list[int]] = [[], []]
        self.watch_blockers: list[list[int]] = [[], []]
        super().__init__(num_vars)
        if adopt:
            self._adopt()

    # -- storage ----------------------------------------------------------

    def _on_new_var(self) -> None:
        self.watch_cids.append([])
        self.watch_cids.append([])
        self.watch_blockers.append([])
        self.watch_blockers.append([])

    def _store_clause(self, lits: list[int]) -> int:
        cid = self.arena.append(lits)
        if len(lits) >= 2:
            self.watch_a.append(lits[0])
            self.watch_b.append(lits[1])
        else:
            self.watch_a.append(-1)
            self.watch_b.append(-1)
        return cid

    def _sync_mirror(self) -> None:
        arena = self.arena
        pool_len = arena.starts[arena.num_clauses]
        if len(self._pool) != pool_len:
            self._pool.extend(arena.pool[len(self._pool):pool_len])
            self._starts.extend(
                arena.starts[len(self._starts):arena.num_clauses + 1])

    def clause_lits(self, cid: int):
        return self.arena.lits(cid)

    def clause_len(self, cid: int) -> int:
        if self.arena.flags[cid] & _DELETED:
            return 0
        return self.arena.length(cid)

    def _adopt(self) -> None:
        """Build watch tables for a pre-populated (possibly shared,
        read-only) arena; units are *not* enqueued — the verification
        checkers manage unit clauses explicitly."""
        arena = self.arena
        self._sync_mirror()
        starts = self._starts
        pool = self._pool
        self.ensure_vars(arena.num_vars)
        watch_a = self.watch_a
        watch_b = self.watch_b
        watch_cids = self.watch_cids
        watch_blockers = self.watch_blockers
        for cid in range(arena.num_clauses):
            begin = starts[cid]
            end = starts[cid + 1]
            if end - begin >= 2:
                lit_a = pool[begin]
                lit_b = pool[begin + 1]
                watch_a.append(lit_a)
                watch_b.append(lit_b)
                watch_cids[lit_a].append(cid)
                watch_blockers[lit_a].append(lit_b)
                watch_cids[lit_b].append(cid)
                watch_blockers[lit_b].append(lit_a)
            else:
                watch_a.append(-1)
                watch_b.append(-1)
                if end == begin and self.empty_clause_cid is None:
                    self.empty_clause_cid = cid

    # -- watch maintenance -------------------------------------------------

    def _attach(self, cid: int) -> None:
        lit_a = self.watch_a[cid]
        if lit_a < 0:
            return  # units/empties carry no watches
        lit_b = self.watch_b[cid]
        self.watch_cids[lit_a].append(cid)
        self.watch_blockers[lit_a].append(lit_b)
        self.watch_cids[lit_b].append(cid)
        self.watch_blockers[lit_b].append(lit_a)

    def _detach(self, cid: int) -> None:
        lit_a = self.watch_a[cid]
        if lit_a < 0:
            return
        for enc in (lit_a, self.watch_b[cid]):
            watchlist = self.watch_cids[enc]
            try:
                pos = watchlist.index(cid)
            except ValueError:
                # Legitimate only when retirement already purged the
                # entry; counted so double-scan bugs stay visible.
                self.counters.detach_misses += 1
            else:
                del watchlist[pos]
                del self.watch_blockers[enc][pos]

    def remove_clause(self, cid: int) -> None:
        """Tombstone a clause via its flag byte (the pool is immutable,
        and for a shared arena also physically read-only)."""
        if self.arena.flags[cid] & _DELETED:
            return
        if self.arena.length(cid):
            self._detach(cid)
        self.arena.tombstone(cid)

    # -- propagation -------------------------------------------------------

    def propagate(self, ceiling: int | None = None) -> int | None:
        standing = self._standing_conflict(ceiling)
        if standing is not None:
            return standing
        values = self.values
        self._sync_mirror()
        pool = self._pool
        starts = self._starts
        watch_a = self.watch_a
        watch_b = self.watch_b
        watch_cids = self.watch_cids
        watch_blockers = self.watch_blockers
        retire = self.retire_ceiling
        counters = self.counters
        trail = self.trail
        levels = self.levels
        reasons = self.reasons
        # One comparison per entry instead of an is-None test + compare.
        ceil = _NO_CEILING if ceiling is None else ceiling
        visits = 0
        body_visits = 0
        assigns = 0
        purged = 0
        qhead = self.qhead
        try:
            while qhead < len(trail):
                enc = trail[qhead]
                qhead += 1
                false_lit = enc ^ 1
                watchlist = watch_cids[false_lit]
                blockers = watch_blockers[false_lit]
                i = 0
                # Deferred compaction: j stays -1 (no write-back at
                # all) until the first entry is dropped — most scans
                # drop nothing, and skipping the kept-entry copy is
                # the bulk of the per-visit saving over the plain
                # watched loop.  A kept entry's stale blocker is still
                # a literal of its clause, so leaving it in place is
                # sound.
                j = -1
                end = len(watchlist)
                while i < end:
                    cid = watchlist[i]
                    blocker = blockers[i]
                    i += 1
                    visits += 1
                    if cid >= retire:
                        # Lazy purge: the retired entry is not copied
                        # back, so this list never re-visits it.
                        purged += 1
                        if j < 0:
                            j = i - 1
                        continue
                    if values[blocker] == TRUE:
                        # Blocker satisfied: the clause is true and its
                        # body is never touched (no clause visit).
                        if j >= 0:
                            watchlist[j] = cid
                            blockers[j] = blocker
                            j += 1
                        continue
                    if cid >= ceil:
                        if j >= 0:
                            watchlist[j] = cid
                            blockers[j] = blocker
                            j += 1
                        continue
                    body_visits += 1
                    # Normalize in the watch *table*: A holds the other
                    # watch, B the falsified one (the pool is immutable).
                    first = watch_a[cid]
                    if first == false_lit:
                        first = watch_b[cid]
                        watch_a[cid] = first
                        watch_b[cid] = false_lit
                    first_val = values[first]
                    if first_val == TRUE:
                        if j >= 0:
                            watchlist[j] = cid
                            blockers[j] = first
                            j += 1
                        else:
                            # Refresh the blocker in place: the other
                            # watch is the literal most likely to be
                            # TRUE on the next visit.
                            blockers[i - 1] = first
                        continue
                    k = starts[cid]
                    stop = starts[cid + 1]
                    moved = False
                    # Binary clauses (k + 2 == stop) skip the scan:
                    # both literals are watches, so no replacement can
                    # exist.
                    if k + 2 < stop:
                        while k < stop:
                            other = pool[k]
                            k += 1
                            # values first: on the hot path most body
                            # literals are already false, so the two
                            # watch-exclusion tests rarely need to run.
                            if values[other] != FALSE \
                                    and other != first \
                                    and other != false_lit:
                                watch_b[cid] = other
                                watch_cids[other].append(cid)
                                watch_blockers[other].append(first)
                                moved = True
                                break
                        if moved:
                            if j < 0:
                                j = i - 1
                            continue
                    # No replacement: the clause is unit or conflicting.
                    if j >= 0:
                        watchlist[j] = cid
                        blockers[j] = first
                        j += 1
                    else:
                        blockers[i - 1] = first
                    if first_val == FALSE:
                        if j >= 0:
                            # Conflict: keep the rest of the list.
                            while i < end:
                                watchlist[j] = watchlist[i]
                                blockers[j] = blockers[i]
                                j += 1
                                i += 1
                            del watchlist[j:]
                            del blockers[j:]
                        return cid
                    assigns += 1
                    values[first] = TRUE
                    values[first ^ 1] = FALSE
                    var = first >> 1
                    levels[var] = len(self.trail_lim)
                    reasons[var] = cid
                    trail.append(first)
                if j >= 0:
                    del watchlist[j:]
                    del blockers[j:]
            return None
        finally:
            self.qhead = qhead
            counters.watch_visits += visits
            counters.clause_visits += body_visits
            counters.assignments += assigns
            counters.purged += purged
