"""Counter-based BCP engine (GRASP/SATO style).

The pre-watched-literals propagation scheme: every clause keeps a count of
its falsified and satisfied literals, updated on each assignment through
full occurrence lists.  It visits every clause containing the assigned
variable, which is exactly the overhead watched literals avoid.

Kept for two purposes:

* a differential-testing oracle for :class:`repro.bcp.WatchedPropagator`
  (the engines must deduce the same assignments and agree on conflicts);
* the baseline of the watched-vs-counting ablation benchmark (paper
  Section 6 argues watched literals are especially effective on conflict
  clause proofs, which contain many long clauses).

Counters are maintained at *enqueue* time, so they always agree with the
``values`` array.  Limitation: clause removal is unsupported (counters
would need a rebuild), so a solver using this engine must disable
learned-clause deletion.

Retirement (:meth:`PropagatorBase.retire_above`) lazily purges retired
cids from the occurrence lists as they are scanned; the n_true/n_false
counters of *retired* clauses are allowed to drift afterwards (their
occurrence entries disappear asymmetrically), which is harmless because
retired clauses are never consulted again.
"""

from __future__ import annotations

from repro.bcp.engine import FALSE, NO_CEILING, TRUE, UNDEF, PropagatorBase


class CountingPropagator(PropagatorBase):
    """BCP engine using per-clause falsified/satisfied literal counters."""

    supports_removal = False

    def __init__(self, num_vars: int = 0):
        self.occurrences: list[list[int]] = [[], []]
        self.n_false: list[int] = []
        self.n_true: list[int] = []
        super().__init__(num_vars)

    def _on_new_var(self) -> None:
        self.occurrences.append([])
        self.occurrences.append([])

    def _attach(self, cid: int) -> None:
        values = self.values
        false_count = 0
        true_count = 0
        for enc in self.clauses[cid]:
            self.occurrences[enc].append(cid)
            value = values[enc]
            if value == FALSE:
                false_count += 1
            elif value == TRUE:
                true_count += 1
        while len(self.n_false) <= cid:
            self.n_false.append(0)
            self.n_true.append(0)
        self.n_false[cid] = false_count
        self.n_true[cid] = true_count

    def _detach(self, cid: int) -> None:
        raise NotImplementedError(
            "CountingPropagator does not support clause removal")

    def _purge_retired(self, occs: list[int]) -> None:
        """Drop retired cids from an occurrence list in place."""
        retire = self.retire_ceiling
        j = 0
        for cid in occs:
            if cid < retire:
                occs[j] = cid
                j += 1
        if j != len(occs):
            self.counters.purged += len(occs) - j
            del occs[j:]

    def enqueue(self, enc: int, reason: int | None) -> bool:
        current = self.values[enc]
        if current == TRUE:
            return True
        if current == FALSE:
            return False
        super().enqueue(enc, reason)
        retire = self.retire_ceiling
        n_true = self.n_true
        n_false = self.n_false
        for cid in self.occurrences[enc]:
            if cid < retire:
                n_true[cid] += 1
        for cid in self.occurrences[enc ^ 1]:
            if cid < retire:
                n_false[cid] += 1
        return True

    def _on_unassign(self, enc: int, pos: int) -> None:
        retire = self.retire_ceiling
        n_true = self.n_true
        n_false = self.n_false
        for cid in self.occurrences[enc]:
            if cid < retire:
                n_true[cid] -= 1
        for cid in self.occurrences[enc ^ 1]:
            if cid < retire:
                n_false[cid] -= 1

    def propagate(self, ceiling: int | None = None) -> int | None:
        standing = self._standing_conflict(ceiling)
        if standing is not None:
            return standing
        values = self.values
        clauses = self.clauses
        n_false = self.n_false
        n_true = self.n_true
        retire = self.retire_ceiling
        counters = self.counters
        visits = 0
        body_visits = 0
        try:
            while self.qhead < len(self.trail):
                enc = self.trail[self.qhead]
                self.qhead += 1
                # Clauses containing ¬enc just lost a literal; find the
                # ones that became unit or empty.
                occs = self.occurrences[enc ^ 1]
                if retire != NO_CEILING:
                    self._purge_retired(occs)
                for cid in occs:
                    visits += 1
                    if ceiling is not None and cid >= ceiling:
                        continue
                    if n_true[cid]:
                        continue
                    body_visits += 1
                    clause = clauses[cid]
                    remaining = len(clause) - n_false[cid]
                    if remaining == 0:
                        return cid
                    if remaining == 1:
                        for lit in clause:
                            if values[lit] == UNDEF:
                                self.enqueue(lit, cid)
                                break
            return None
        finally:
            counters.watch_visits += visits
            counters.clause_visits += body_visits
