"""Vectorized counting BCP over the clause arena (numpy kernel).

The arena engine (PR 5) fixed the memory *layout* — one flat ``int32``
literal pool shared zero-copy with parallel workers — but its hot loop
still executes literal-at-a-time CPython bytecode, so sequential
wall-time landed at parity with the watched engine.  This module
harvests the layout win: the propagation hot loop runs as a handful of
numpy bulk operations per BFS round instead of per-literal Python
steps, the approach DRAT-trim-class checkers take with hand-written C
(Heule 2016) translated to array programming.

Scheme
------
Counting-style propagation (see :class:`~repro.bcp.counting.
CountingPropagator` for the scalar reference), frontier-batched:

* ``slack[cid]`` — per-clause count of literals that may still be
  non-false before the clause turns unit: ``len(clause) - 1`` minus
  the number of falsified literals among *dequeued* trail entries.
  ``slack <= 0`` marks a unit/conflict *candidate*.
* Each round takes the whole trail delta (every literal enqueued since
  the last round), gathers the occurrence lists of their negations
  into one index array, and updates every touched clause at once:
  ``slack -= bincount(gathered)``.  Candidates fall out of one boolean
  mask over the same gathered array; only those few clauses get a
  per-clause Python scan (the unit-extraction tail), which either
  finds the clause satisfied, enqueues its single non-false literal,
  or reports the conflict.
* Occurrence lists are per-literal ``int32`` numpy arrays over the
  arena's clause ids, bulk-built at adoption time with one stable
  argsort of the pool (zero-copy ``np.frombuffer`` views over the
  arena buffers — the same bytes whether the arena is process-local
  or a ``multiprocessing.shared_memory`` mapping).

Masking instead of mutation
---------------------------
The pool may be physically read-only (a shared mapping), so — as with
the arena engine's watch tables — every mutable structure is private
to the propagator: tombstones and retired clauses are *masked* by
setting their ``slack`` to a huge sentinel (never a candidate), and
occurrence arrays — ascending by construction, so retired cids form a
suffix — are lazily truncated at the retirement ceiling on first
access (counted in ``counters.purged``).

Counter discipline
------------------
``slack`` reflects exactly the falsified literals among
``trail[:qhead]`` — counting happens when a frontier is *dequeued*,
in bulk.  Backtracking therefore cannot uncount per literal (that
per-literal occurrence walk is precisely the scalar counting engine's
overhead); instead every decision level snapshots the live slack
prefix when it opens and :meth:`backtrack` restores it with one array
copy — the copy *is* the uncount.  The rare retraction not covered by
a snapshot (a root ``unwind_to``, a level opened in a half-counted
state) just marks the counters dirty and the next :meth:`propagate`
recounts the whole assigned trail in one bulk gather — exactness by
reconstruction instead of incremental bookkeeping.

Snapshots also license an aggressive optimization: counts produced
under an explicit check ceiling are wiped before anything above that
ceiling is consulted again, so each round drops gathered entries at or
above the ceiling *before* counting and bounds every dense operation
by it.  A staleness watermark guards the non-restored paths: if a
later propagate looks above the lowest ceiling ever filtered at, it
recounts first.

Counter semantics match the other engines: ``watch_visits`` counts
occurrence entries gathered, ``clause_visits`` counts clause bodies
scanned by the tail, ``purged`` counts occurrence entries dropped by
lazy truncation of occurrence arrays at the retirement ceiling.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.bcp.arena import ClauseArena
from repro.bcp.engine import FALSE, NO_CEILING as _NO_CEILING, \
    PropagatorBase

# flags bit (mirrors repro.bcp.arena)
_DELETED = 1

# Slack sentinel for clauses that must never become candidates
# (tombstoned, retired, empty).  Far enough from zero that transient
# occurrence-count drift on masked clauses (documented for the scalar
# counting engine too — bounded by a clause length per check, and
# wiped by every snapshot restore) cannot bring it near zero, while
# still fitting the int32 slack array.
_MASKED = 1 << 30

_EMPTY = np.empty(0, dtype=np.int32)


class VectorPropagator(PropagatorBase):
    """Frontier-batched counting BCP with a numpy hot loop."""

    supports_removal = True
    kernel = "numpy"
    arena_backed = True

    def __init__(self, num_vars: int = 0,
                 arena: ClauseArena | None = None):
        adopt = arena is not None
        self.arena = arena if adopt else ClauseArena()
        # Per-literal occurrence arrays (int32 cids, ascending) plus a
        # Python overflow list for cids attached since the array was
        # last materialized; merged on first access.  ``_occ_py``
        # mirrors each array as a plain int list for sub-microsecond
        # peeks and ``bisect_left`` ceiling cuts in the hot frontier
        # loop (numpy scalar indexing and ``searchsorted`` both cost
        # ~1us per call, C bisect on a list ~0.2us).  The mirror is
        # never truncated; the invariant is prefix equality:
        # ``_occ_np[f]`` always equals ``_occ_py[f][:_occ_np[f].size]``.
        self._occ_np: list[np.ndarray] = [_EMPTY, _EMPTY]
        self._occ_py: list[list[int]] = [[], []]
        self._occ_extra: list[list[int]] = [[], []]
        # slack[cid] = len - 1 - (#falsified among dequeued trail);
        # capacity-doubled, logical size _nc, unset entries _MASKED.
        self._slack = np.full(64, _MASKED, dtype=np.int32)
        self._nc = 0
        # Dirty = some counted assignment was retracted outside a
        # snapshot restore; the next propagate recounts the whole
        # assigned trail in bulk instead of uncounting per literal.
        self._dirty = False
        # Lowest explicit ceiling whose counts may persist in slack:
        # entries at or above it were dropped before counting, so any
        # propagate that needs slack beyond it must recount first.
        self._stale_from = _NO_CEILING
        # Counting watermark: slack reflects exactly the falsified
        # literals among trail[:_counted].
        # Normally _counted tracks qhead, but drivers may rewind qhead
        # to rescan the trail (the incremental checker's root moves do
        # engine.qhead = 0); propagate() then candidate-scans the
        # already-counted region without recounting it.
        self._counted = 0
        # Process-local scan mirror of pool/starts for the Python
        # unit-extraction tail (same boxing-avoidance trick as the
        # arena engine's mirror).
        self._pool: list[int] = []
        self._starts: list[int] = [0]
        # Per-clause blocker literal (any literal of the clause,
        # preferably one currently TRUE): candidates whose blocker is
        # satisfied skip the body scan entirely — the arena engine's
        # blocker trick, applied at the tail instead of the watch list.
        # Kept as an int32 array so a whole round's candidates can be
        # probed with one fancy take.
        self._blockers = np.zeros(64, dtype=np.int32)
        # int8 mirror of ``self.values`` (indexed by encoded literal):
        # the probe above needs literal values as an indexable array.
        # Maintained on every assignment/retraction — all of which
        # funnel through enqueue/_on_unassign/the snapshot restore.
        self._values_np = np.zeros(4, dtype=np.int8)
        # Per-open-decision-level slack snapshots (or None): backtrack
        # restores the boundary state with one array copy instead of
        # re-gathering occurrence lists for every retracted literal.
        self._snaps: list[tuple[int, np.ndarray, int] | None] = []
        # Reusable all-ones value array for the small-round sparse
        # update (``np.subtract.at`` only takes its indexed fast path
        # with a matching-dtype array operand).
        self._ones = np.ones(256, dtype=np.int32)
        super().__init__(num_vars)
        if adopt:
            self._adopt()

    # -- storage ----------------------------------------------------------

    def _on_new_var(self) -> None:
        self._occ_np.extend((_EMPTY, _EMPTY))
        self._occ_py.append([])
        self._occ_py.append([])
        self._occ_extra.append([])
        self._occ_extra.append([])
        need = len(self.values) + 2
        vn = self._values_np
        if need > vn.size:
            grown = np.zeros(max(64, 2 * need), dtype=np.int8)
            grown[:vn.size] = vn
            self._values_np = grown

    def _store_clause(self, lits: list[int]) -> int:
        cid = self.arena.append(lits)
        if cid >= len(self._slack):
            cap = max(64, 2 * len(self._slack), cid + 1)
            grown = np.full(cap, _MASKED, dtype=np.int32)
            grown[:self._nc] = self._slack[:self._nc]
            self._slack = grown
        if cid >= len(self._blockers):
            cap = max(64, 2 * len(self._blockers), cid + 1)
            grown_b = np.zeros(cap, dtype=np.int32)
            grown_b[:self._nc] = self._blockers[:self._nc]
            self._blockers = grown_b
        self._blockers[cid] = lits[0] if lits else 0
        self._nc = cid + 1
        return cid

    def _sync_mirror(self) -> None:
        arena = self.arena
        pool_len = arena.starts[arena.num_clauses]
        if len(self._pool) != pool_len:
            self._pool.extend(arena.pool[len(self._pool):pool_len])
            self._starts.extend(
                arena.starts[len(self._starts):arena.num_clauses + 1])

    def clause_lits(self, cid: int):
        return self.arena.lits(cid)

    def clause_len(self, cid: int) -> int:
        if self.arena.flags[cid] & _DELETED:
            return 0
        return self.arena.length(cid)

    def _adopt(self) -> None:
        """Bulk-build occurrence arrays and slack for a pre-populated
        (possibly shared, read-only) arena.

        ``np.frombuffer`` aliases the arena's own buffers — no copy,
        identical for a local ``array('i')`` and a shared-memory
        ``memoryview``.  One stable argsort of the pool yields every
        literal's occurrence list at once, cids ascending (matching
        the scalar counting engine's scan order).  Units are *not*
        enqueued — the verification checkers manage units explicitly.
        """
        arena = self.arena
        nc = arena.num_clauses
        self.ensure_vars(arena.num_vars)
        self._sync_mirror()
        if nc >= len(self._slack):
            self._slack = np.full(max(64, nc + 1), _MASKED,
                                  dtype=np.int32)
        self._nc = nc
        starts = np.frombuffer(arena.starts, dtype=np.int32,
                               count=nc + 1)
        lens = np.diff(starts)
        self._slack[:nc] = lens - 1
        empties = np.flatnonzero(lens == 0)
        if empties.size:
            self.empty_clause_cid = int(empties[0])
            self._slack[empties] = _MASKED
        if arena.flags:
            dead = np.flatnonzero(
                np.frombuffer(arena.flags, dtype=np.uint8,
                              count=nc) & _DELETED)
            if dead.size:
                self._slack[dead] = _MASKED
        pool_len = int(starts[nc])
        self._blockers = np.zeros(len(self._slack), dtype=np.int32)
        if pool_len:
            pool = np.frombuffer(arena.pool, dtype=np.int32,
                                 count=pool_len)
            # Blocker seed: each clause's first literal (empties get a
            # harmless placeholder; they are slack-masked and never
            # reach the tail).
            self._blockers[:nc] = np.where(
                lens > 0, pool[np.minimum(starts[:nc],
                                          pool_len - 1)], 0)
            cids = np.repeat(np.arange(nc, dtype=np.int32),
                             lens.astype(np.intp))
            order = np.argsort(pool, kind="stable")
            sorted_cids = cids[order]
            bounds = np.searchsorted(
                pool[order], np.arange(2 * (self.num_vars + 1) + 1))
            occ_np = self._occ_np
            occ_py = self._occ_py
            for enc in range(2, 2 * (self.num_vars + 1)):
                lo = bounds[enc]
                hi = bounds[enc + 1]
                if hi > lo:
                    occ_np[enc] = sorted_cids[lo:hi]
                    occ_py[enc] = occ_np[enc].tolist()

    # -- occurrence / counter maintenance ---------------------------------

    def _lit_occ(self, f: int) -> np.ndarray:
        """The live occurrence array of encoded literal ``f``, merging
        any cids attached since the array was materialized and
        truncating retired cids.

        Occurrence arrays are ascending (the adoption argsort is
        stable and attached cids only grow), so the live clauses form
        a prefix: one peek at the last element detects staleness and a
        binary search drops the retired suffix.  Amortized, every
        entry is truncated away at most once over a whole backward
        pass — no occurrence-list rebuilds needed.
        """
        a = self._occ_np[f]
        extra = self._occ_extra[f]
        if extra:
            self._occ_py[f].extend(extra)
            tail = np.asarray(extra, dtype=np.int32)
            a = tail if not a.size else np.concatenate((a, tail))
            self._occ_np[f] = a
            extra.clear()
        retire = self.retire_ceiling
        if a.size and a[-1] >= retire:
            kept = a[:np.searchsorted(a, retire)]
            self.counters.purged += a.size - kept.size
            self._occ_np[f] = a = kept
        return a

    def _recount(self) -> None:
        """Recompute slack for the whole live prefix from the arena
        and the dequeued trail — one bulk gather, always exact.

        This is the universal repair path: retractions not covered by
        a snapshot restore (root unwinds, levels opened half-counted)
        and staleness from ceiling-filtered counting both land here.
        It costs one pass over the trail's occurrence lists, which the
        callers trigger a handful of times per verification run.
        """
        arena = self.arena
        nc = self._nc
        live = min(nc, self.retire_ceiling)
        slack = self._slack
        if nc:
            starts = np.frombuffer(arena.starts, dtype=np.int32,
                                   count=nc + 1)
            lens = np.diff(starts[:live + 1])
            slack[:live] = lens - 1
            qhead = self.qhead
            arrays = [a for a in (self._lit_occ(enc ^ 1)
                                  for enc in self.trail[:qhead])
                      if a.size]
            if arrays:
                gathered = arrays[0] if len(arrays) == 1 \
                    else np.concatenate(arrays)
                gathered = gathered[gathered < live]
                if gathered.size:
                    slack[:live] -= np.bincount(gathered,
                                                minlength=live)
            empties = np.flatnonzero(lens == 0)
            if empties.size:
                slack[empties] = _MASKED
            if arena.flags:
                dead = np.flatnonzero(
                    np.frombuffer(arena.flags, dtype=np.uint8,
                                  count=live) & _DELETED)
                if dead.size:
                    slack[dead] = _MASKED
            slack[live:nc] = _MASKED
            self._counted = qhead
        self._dirty = False
        self._stale_from = _NO_CEILING

    def _drop_snapshots(self) -> None:
        """Invalidate open-level slack snapshots (clause set changed
        under them); backtrack falls back to the dirty-recount path
        for those levels."""
        snaps = self._snaps
        for i in range(len(snaps)):
            snaps[i] = None

    def _attach(self, cid: int) -> None:
        self._drop_snapshots()
        lits = self.arena.lits(cid)
        for enc in lits:
            self._occ_extra[enc].append(cid)
        values = self.values
        if self._counted == len(self.trail):
            false_count = sum(1 for enc in lits
                              if values[enc] == FALSE)
        else:
            # Mid-queue attach: only counted assignments contribute.
            counted = set(self.trail[:self._counted])
            false_count = sum(1 for enc in lits
                              if enc ^ 1 in counted)
        self._slack[cid] = len(lits) - 1 - false_count

    def _detach(self, cid: int) -> None:
        # Occurrence entries stay; the _MASKED slack keeps the clause
        # out of candidacy forever (count drift on masked clauses is
        # harmless, as with the scalar counting engine's retired
        # clauses).
        self._drop_snapshots()
        self._slack[cid] = _MASKED

    def remove_clause(self, cid: int) -> None:
        """Tombstone a clause via its (private) flag byte; the pool is
        immutable and possibly physically read-only."""
        if self.arena.flags[cid] & _DELETED:
            return
        self.arena.tombstone(cid)
        self._detach(cid)

    def enqueue(self, enc: int, reason: int | None) -> bool:
        if self.values[enc] == 0:
            vn = self._values_np
            vn[enc] = 1
            vn[enc ^ 1] = -1
        return super().enqueue(enc, reason)

    def _on_unassign(self, enc: int, pos: int) -> None:
        vn = self._values_np
        vn[enc] = 0
        vn[enc ^ 1] = 0
        # A counted assignment is being retracted outside a snapshot
        # restore (root unwind, or a level opened without a snapshot):
        # schedule a bulk recount rather than uncounting per literal.
        if pos < self._counted:
            self._dirty = True
            self._counted = pos

    def retire_above(self, ceiling: int) -> None:
        if ceiling >= self.retire_ceiling:
            return
        self._drop_snapshots()
        super().retire_above(ceiling)
        nc = self._nc
        if ceiling < nc:
            self._slack[ceiling:nc] = _MASKED

    # -- decision levels: snapshot/restore ---------------------------------

    def new_level(self) -> None:
        # A level boundary in a fully-counted, clean state can be
        # restored by copying the live slack prefix back — the copy IS
        # the uncount, replacing the per-retraction occurrence
        # re-gather that dominates backtrack-heavy drivers (the
        # backward checker backtracks after every single check).
        if not self._dirty and self._counted == len(self.trail):
            live = min(self._nc, self.retire_ceiling)
            self._snaps.append((live, self._slack[:live].copy(),
                                self._stale_from))
        else:
            self._snaps.append(None)
        super().new_level()

    def assume(self, enc: int) -> bool:
        self.new_level()
        return self.enqueue(enc, None)

    def backtrack(self, level: int) -> None:
        if level >= len(self.trail_lim):
            return
        snaps = self._snaps
        snap = snaps[level] if level < len(snaps) else None
        del snaps[level:]
        if snap is None:
            super().backtrack(level)
            return
        # Snapshot restore: unwind the trail suffix without the
        # per-literal _on_unassign bookkeeping, then overwrite slack
        # with the boundary state.  Counts accumulated above the
        # boundary — including ceiling-filtered ones and any dirtiness
        # acquired since the level opened — vanish wholesale.
        live, saved, stale_from = snap
        limit = self.trail_lim[level]
        values = self.values
        trail = self.trail
        levels = self.levels
        reasons = self.reasons
        for pos in range(len(trail) - 1, limit - 1, -1):
            enc = trail[pos]
            values[enc] = 0
            values[enc ^ 1] = 0
            var = enc >> 1
            levels[var] = -1
            reasons[var] = None
        if len(trail) > limit:
            # Mirror clear in bulk: one fancy write per polarity
            # instead of two numpy scalar stores per literal.
            popped = np.asarray(trail[limit:], dtype=np.int32)
            vn = self._values_np
            vn[popped] = 0
            vn[popped ^ 1] = 0
        del trail[limit:]
        del self.trail_lim[level:]
        self.qhead = limit
        self._slack[:live] = saved
        self._counted = limit
        self._dirty = False
        self._stale_from = stale_from

    # -- propagation -------------------------------------------------------

    def propagate(self, ceiling: int | None = None) -> int | None:
        standing = self._standing_conflict(ceiling)
        if standing is not None:
            return standing
        retire = self.retire_ceiling
        live = min(self._nc, retire)
        ceil = _NO_CEILING if ceiling is None else ceiling
        explicit = ceil < live
        if explicit:
            # Explicit ceiling: every dense op and every gathered
            # entry is bounded by it.  Sound because the snapshot /
            # recount machinery guarantees these partial counts are
            # wiped before slack above the ceiling is consulted
            # (_stale_from records the obligation).
            live = ceil
        if self._dirty or live > self._stale_from:
            self._recount()
        if explicit:
            self._stale_from = min(self._stale_from, ceil)
        self._sync_mirror()
        slack = self._slack
        occ_np = self._occ_np
        occ_py = self._occ_py
        occ_extra = self._occ_extra
        values = self.values
        pool = self._pool
        starts = self._starts
        blockers = self._blockers
        trail = self.trail
        levels = self.levels
        reasons = self.reasons
        level = len(self.trail_lim)
        counters = self.counters
        bincount = np.bincount
        concatenate = np.concatenate
        subtract_at = np.subtract.at
        ones = self._ones
        values_np = self._values_np
        int32 = np.int32
        slack_live = slack[:live]
        visits = 0
        body_visits = 0
        assigns = 0
        qhead = self.qhead
        rescan = qhead < self._counted
        if rescan:
            qhead = self._counted
        try:
            while rescan or qhead < len(trail):
                if rescan:
                    # The driver rewound qhead over already-counted
                    # trail (the incremental checker's root moves do
                    # engine.qhead = 0 to rescan).  The global slack
                    # counters make the rescan free of occurrence
                    # traffic: every unit/conflict candidate under the
                    # counted assignment satisfies slack <= 0, so one
                    # pass over the clause axis finds them all.
                    rescan = False
                    candidates = (slack_live <= 0).nonzero()[0]
                    if not candidates.size:
                        continue
                else:
                    n = len(trail)
                    arrays = []
                    for i in range(qhead, n):
                        f = trail[i] ^ 1
                        a = occ_np[f]
                        k = a.shape[0]
                        if occ_extra[f] \
                                or (k and occ_py[f][k - 1] >= retire):
                            a = self._lit_occ(f)
                            k = a.shape[0]
                        if not k:
                            continue
                        if explicit:
                            # Occurrence arrays are ascending, so one
                            # binary search (C bisect on the list
                            # mirror) drops every entry above the
                            # check's ceiling before it ever reaches
                            # the concatenate/count stream — in
                            # rebuild mode (no retirement) this halves
                            # the gathered traffic.
                            lst = occ_py[f]
                            if lst[k - 1] >= live:
                                k = bisect_left(lst, live, 0, k)
                                if not k:
                                    continue
                                a = a[:k]
                        arrays.append(a)
                    qhead = n
                    if not arrays:
                        continue
                    gathered = arrays[0] if len(arrays) == 1 \
                        else concatenate(arrays)
                    m = gathered.size
                    visits += m
                    # Candidates are the clauses whose slack *crossed*
                    # zero this round.  A clause already at slack <= 0
                    # was processed when it crossed (satisfied, or its
                    # unit enqueued — slack is monotone within a
                    # check), so the crossing test suppresses
                    # reprocessing: no clause body is rescanned just
                    # because more of its literals land on the trail.
                    # Every gathered entry is below ``live`` (the
                    # per-literal ceiling cut above, plus
                    # retire-truncation in ``_lit_occ``), so both
                    # branches below stay bounded by the ceiling.
                    if m << 3 < live:
                        # Small round: update and test only the
                        # touched clauses.  ``subtract.at`` with a
                        # matching-dtype value array takes numpy's
                        # indexed fast path (the scalar form is ~15x
                        # slower), and the pre/post takes cost O(m)
                        # instead of a dense pass per operator.
                        if m > ones.size:
                            self._ones = ones = np.ones(
                                2 * m, dtype=np.int32)
                        pre = slack[gathered]
                        subtract_at(slack, gathered, ones[:m])
                        post = slack[gathered]
                        candidates = gathered[(post <= 0) & (pre > 0)]
                    else:
                        crossed = slack_live > 0
                        slack_live -= bincount(
                            gathered, minlength=live).astype(int32)
                        crossed &= slack_live <= 0
                        candidates = crossed.nonzero()[0]
                    if not candidates.size:
                        continue
                # Blocker probe: most candidates are clauses that are
                # long satisfied (their slack stays <= 0), so checking
                # each one's remembered blocker literal skips the body
                # scan for them.  Batches are probed with one fancy
                # take over the values mirror; tiny batches scalarly
                # inside the loop below.
                probed = candidates.size >= 6
                if probed:
                    candidates = candidates[
                        values_np[blockers[candidates]] != 1]
                    if not candidates.size:
                        continue
                for cid in candidates.tolist():
                    if not probed and values[blockers[cid]] == 1:
                        continue
                    begin = starts[cid]
                    end = starts[cid + 1]
                    body_visits += 1
                    unit = -1
                    satisfied = False
                    # slack <= 0 means at most one literal of the
                    # clause is non-false right now, so the scan finds
                    # either a TRUE literal (satisfied), one UNDEF
                    # literal (the unit), or nothing (conflict).  A
                    # duplicate candidate whose unit was enqueued
                    # earlier this round hits the TRUE branch.
                    for k in range(begin, end):
                        lit = pool[k]
                        v = values[lit]
                        if v >= 0:
                            if v == 1 or unit >= 0:
                                satisfied = True
                                blockers[cid] = lit
                                break
                            unit = lit
                    if satisfied:
                        continue
                    if unit < 0:
                        return cid
                    values[unit] = 1
                    values[unit ^ 1] = -1
                    values_np[unit] = 1
                    values_np[unit ^ 1] = -1
                    var = unit >> 1
                    levels[var] = level
                    reasons[var] = cid
                    trail.append(unit)
                    assigns += 1
                    blockers[cid] = unit
            return None
        finally:
            self.qhead = qhead
            self._counted = qhead
            counters.watch_visits += visits
            counters.clause_visits += body_visits
            counters.assignments += assigns
