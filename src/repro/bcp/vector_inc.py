"""Vectorized *incremental* BCP kernel (numpy, backward-pass tuned).

:class:`~repro.bcp.vector.VectorPropagator` (PR 6) made forward/rebuild
verification fast, but on the dominant workload — incremental backward
verification with a persistent root trail — it shows almost no gain:
counting-style propagation gathers the *whole* occurrence row of every
falsified literal, so its per-check traffic is ~avglen/2 of what the
watched engine touches (measured 16x on pipe_5), and the per-check
transient trail (~100 literals on pipe_5) is too short to amortize the
fixed cost of a full frontier batch.

This kernel therefore starts from the other end: it subclasses
:class:`~repro.bcp.arena.ArenaPropagator` — the watched-with-blockers
scheme over the flat arena, which *is* the fastest backward engine —
and vectorizes the two places where the profile says the scalar loop
spends its time on backward passes:

Batched blocker probe
---------------------
On pipe_5 backward verification, 79% of all watch-list visits end at
the blocker fast path (``values[blocker] == TRUE`` → skip the body),
and 54% of the visit mass sits in watch rows of 128+ entries.  For a
row at or above :attr:`probe_min` the kernel checks every blocker in
one shot — a single fancy gather of an int8 TRUE-mirror of ``values``
over a zero-copy view of the row — and then runs the ordinary scalar
body logic only on the survivors.  Because assignments made *during*
the scan can satisfy later blockers in the same row, each survivor's
blocker is re-checked scalar-side before its body is visited, which
keeps clause-visit counts (and therefore ``total_work`` budgets)
identical to the scalar arena engine.

Batched retraction
------------------
Watch rows processed by the probe are promoted from Python lists to
``array('i')`` rows (numpy can view them zero-copy).  Retired and
moved entries found during a probed scan are dropped with one boolean
compress over the row instead of per-entry ``del`` — on long rows the
per-drop ``memmove`` of list deletion is the single largest cost of a
naive hybrid.  Trail retraction (``backtrack`` / ``unwind_to``, the
incremental checker's per-check rewind) clears the TRUE-mirror with
one vectorized scatter of the retracted suffix instead of per-literal
stores.

The short-row path is byte-for-byte the arena scan loop, so rows below
the probe threshold (and every workload that never grows long rows)
behave exactly like the scalar engine.  The kernel inherits the flat
arena and therefore the shared-memory transport: spawn/shm parallel
workers attach the parent's arena and build this engine over it
zero-copy, exactly like ``arena``.

Verdicts, conflict clause ids, trail contents and propagation
counters are identical to :class:`~repro.bcp.arena.ArenaPropagator`
(the parity suite pins this); only the constant factor differs.  Available
only when numpy is installed (``pip install repro[fast]``), like
``vector``.
"""

from __future__ import annotations

from array import array

import numpy as np

from repro.bcp.arena import ArenaPropagator, ClauseArena
from repro.bcp.engine import FALSE, TRUE, NO_CEILING as _NO_CEILING


class VectorIncPropagator(ArenaPropagator):
    """Arena watched engine with a batched blocker probe on long rows."""

    kernel = "numpy"

    #: Watch rows with at least this many entries are probed in bulk.
    #: Below it, the numpy fixed cost (~4us per gather) exceeds the
    #: scalar scan it replaces; the default sits where the pipe_5
    #: profile puts the crossover.  Tests lower it to force the probe
    #: path onto small instances.
    probe_min = 256

    def __init__(self, num_vars: int = 0,
                 arena: ClauseArena | None = None):
        # int8 mirror with mirror[enc] == 1 iff values[enc] is TRUE —
        # the one shape the probe's fancy gather needs.  Sized with
        # values; maintained by enqueue/backtrack/unwind_to overrides
        # plus inline stores in the propagate loop.
        self._true_np = np.zeros(2, dtype=np.int8)
        super().__init__(num_vars, arena)
        self._grow_mirror()

    def _grow_mirror(self) -> None:
        need = 2 * (self.num_vars + 1)
        if self._true_np.shape[0] < need:
            grown = np.zeros(need + 64, dtype=np.int8)
            grown[:self._true_np.shape[0]] = self._true_np
            self._true_np = grown

    def _on_new_var(self) -> None:
        super()._on_new_var()
        self._grow_mirror()

    # -- assignment mirror -------------------------------------------------

    def enqueue(self, enc: int, reason: int | None) -> bool:
        ok = super().enqueue(enc, reason)
        if ok:
            self._true_np[enc] = 1
        return ok

    def backtrack(self, level: int) -> None:
        if level >= len(self.trail_lim):
            return
        removed = self.trail[self.trail_lim[level]:]
        super().backtrack(level)
        if removed:
            self._true_np[np.array(removed, dtype=np.int64)] = 0

    def unwind_to(self, pos: int) -> None:
        if pos >= len(self.trail):
            return
        removed = self.trail[pos:]
        super().unwind_to(pos)
        if removed:
            self._true_np[np.array(removed, dtype=np.int64)] = 0

    # -- propagation -------------------------------------------------------

    def propagate(self, ceiling: int | None = None) -> int | None:
        standing = self._standing_conflict(ceiling)
        if standing is not None:
            return standing
        values = self.values
        self._sync_mirror()
        pool = self._pool
        starts = self._starts
        watch_a = self.watch_a
        watch_b = self.watch_b
        watch_cids = self.watch_cids
        watch_blockers = self.watch_blockers
        true_np = self._true_np
        retire = self.retire_ceiling
        counters = self.counters
        trail = self.trail
        levels = self.levels
        reasons = self.reasons
        lim = len(self.trail_lim)
        ceil = _NO_CEILING if ceiling is None else ceiling
        probe_min = self.probe_min
        visits = 0
        body_visits = 0
        assigns = 0
        purged = 0
        qhead = self.qhead
        try:
            while qhead < len(trail):
                enc = trail[qhead]
                qhead += 1
                false_lit = enc ^ 1
                watchlist = watch_cids[false_lit]
                blockers = watch_blockers[false_lit]
                end = len(watchlist)
                if not end:
                    continue
                visits += end
                if end >= probe_min:
                    # Long row: promote to array('i') (idempotent),
                    # probe every blocker in one gather, then run the
                    # arena body logic on the survivors only.
                    if type(blockers) is list:
                        blockers = array("i", blockers)
                        watch_blockers[false_lit] = blockers
                        watchlist = array("i", watchlist)
                        watch_cids[false_lit] = watchlist
                    # Survivors: blocker not TRUE, *or* retired — the
                    # scalar engine tests retirement before the
                    # blocker, so retired entries must reach the
                    # scalar loop (and be purged) even when their
                    # stale blocker happens to be satisfied.
                    blk_np = np.frombuffer(blockers, dtype=np.int32)
                    wl_np = np.frombuffer(watchlist, dtype=np.int32)
                    surv = np.flatnonzero((true_np[blk_np] != 1)
                                          | (wl_np >= retire)).tolist()
                    del blk_np, wl_np
                    if not surv:
                        continue
                    drops: list[int] | None = None
                    conflict = None
                    for pos in surv:
                        cid = watchlist[pos]
                        if cid >= retire:
                            purged += 1
                            if drops is None:
                                drops = [pos]
                            else:
                                drops.append(pos)
                            continue
                        # An assignment made earlier in this very scan
                        # may have satisfied the blocker after the
                        # probe snapshot; re-check so body-visit
                        # counts match the scalar engine exactly.
                        if values[blockers[pos]] == TRUE:
                            continue
                        if cid >= ceil:
                            continue
                        body_visits += 1
                        first = watch_a[cid]
                        if first == false_lit:
                            first = watch_b[cid]
                            watch_a[cid] = first
                            watch_b[cid] = false_lit
                        first_val = values[first]
                        if first_val == TRUE:
                            blockers[pos] = first
                            continue
                        k = starts[cid]
                        stop = starts[cid + 1]
                        moved = False
                        if k + 2 < stop:
                            while k < stop:
                                other = pool[k]
                                k += 1
                                if values[other] != FALSE \
                                        and other != first \
                                        and other != false_lit:
                                    watch_b[cid] = other
                                    watch_cids[other].append(cid)
                                    watch_blockers[other].append(first)
                                    moved = True
                                    break
                            if moved:
                                if drops is None:
                                    drops = [pos]
                                else:
                                    drops.append(pos)
                                continue
                        blockers[pos] = first
                        if first_val == FALSE:
                            conflict = cid
                            # The scalar engine stops counting visits
                            # at the conflicting entry; match it.
                            visits -= end - pos - 1
                            break
                        assigns += 1
                        values[first] = TRUE
                        values[first ^ 1] = FALSE
                        true_np[first] = 1
                        var = first >> 1
                        levels[var] = lim
                        reasons[var] = cid
                        trail.append(first)
                    if drops is not None:
                        # One boolean compress instead of per-entry
                        # del: list deletion memmoves the row tail for
                        # every drop, which dominates long-row cost.
                        keep = np.ones(len(watchlist), dtype=bool)
                        keep[drops] = False
                        wl = np.frombuffer(watchlist,
                                           dtype=np.int32)[keep]
                        bl = np.frombuffer(blockers,
                                           dtype=np.int32)[keep]
                        watchlist = array("i")
                        watchlist.frombytes(wl.tobytes())
                        blockers = array("i")
                        blockers.frombytes(bl.tobytes())
                        watch_cids[false_lit] = watchlist
                        watch_blockers[false_lit] = blockers
                    if conflict is not None:
                        return conflict
                    continue
                # Short row: the arena scan loop, verbatim (deferred
                # compaction with j as the write cursor).
                i = 0
                j = -1
                while i < end:
                    cid = watchlist[i]
                    blocker = blockers[i]
                    i += 1
                    if cid >= retire:
                        purged += 1
                        if j < 0:
                            j = i - 1
                        continue
                    if values[blocker] == TRUE:
                        if j >= 0:
                            watchlist[j] = cid
                            blockers[j] = blocker
                            j += 1
                        continue
                    if cid >= ceil:
                        if j >= 0:
                            watchlist[j] = cid
                            blockers[j] = blocker
                            j += 1
                        continue
                    body_visits += 1
                    first = watch_a[cid]
                    if first == false_lit:
                        first = watch_b[cid]
                        watch_a[cid] = first
                        watch_b[cid] = false_lit
                    first_val = values[first]
                    if first_val == TRUE:
                        if j >= 0:
                            watchlist[j] = cid
                            blockers[j] = first
                            j += 1
                        else:
                            blockers[i - 1] = first
                        continue
                    k = starts[cid]
                    stop = starts[cid + 1]
                    moved = False
                    if k + 2 < stop:
                        while k < stop:
                            other = pool[k]
                            k += 1
                            if values[other] != FALSE \
                                    and other != first \
                                    and other != false_lit:
                                watch_b[cid] = other
                                watch_cids[other].append(cid)
                                watch_blockers[other].append(first)
                                moved = True
                                break
                        if moved:
                            if j < 0:
                                j = i - 1
                            continue
                    if j >= 0:
                        watchlist[j] = cid
                        blockers[j] = first
                        j += 1
                    else:
                        blockers[i - 1] = first
                    if first_val == FALSE:
                        visits -= end - i
                        if j >= 0:
                            while i < end:
                                watchlist[j] = watchlist[i]
                                blockers[j] = blockers[i]
                                j += 1
                                i += 1
                            del watchlist[j:]
                            del blockers[j:]
                        return cid
                    assigns += 1
                    values[first] = TRUE
                    values[first ^ 1] = FALSE
                    true_np[first] = 1
                    var = first >> 1
                    levels[var] = lim
                    reasons[var] = cid
                    trail.append(first)
                if j >= 0:
                    del watchlist[j:]
                    del blockers[j:]
            return None
        finally:
            self.qhead = qhead
            counters.watch_visits += visits
            counters.clause_visits += body_visits
            counters.assignments += assigns
            counters.purged += purged
