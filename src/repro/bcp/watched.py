"""Two-watched-literal BCP engine.

The propagation machinery of Chaff [16 in the paper] that the paper's own
verifier uses (Section 6): each clause is watched through two of its
literals, and work is done only when a watched literal becomes false.  The
paper notes this is "especially effective" for conflict clause proofs
because ``F*`` contains many long clauses — a falsified long clause is
visited only when one of its two watches fires, not on every assignment.

The implementation follows MiniSat: the falsified watch is normalized to
position 1 of the clause, position 0 holds the other watch, and watch
lists are compacted in place during the scan.
"""

from __future__ import annotations

from repro.bcp.engine import FALSE, TRUE, PropagatorBase


class WatchedPropagator(PropagatorBase):
    """BCP engine using the two-watched-literal scheme."""

    def __init__(self, num_vars: int = 0):
        self.watches: list[list[int]] = [[], []]
        super().__init__(num_vars)

    def _on_new_var(self) -> None:
        self.watches.append([])
        self.watches.append([])

    def _attach(self, cid: int) -> None:
        lits = self.clauses[cid]
        if len(lits) == 1:
            # Units have no second watch; they are driven by enqueue
            # (solver) or by the verifier's explicit unit pass.
            return
        self.watches[lits[0]].append(cid)
        self.watches[lits[1]].append(cid)

    def _detach(self, cid: int) -> None:
        lits = self.clauses[cid]
        if len(lits) == 1:
            return
        for enc in (lits[0], lits[1]):
            watchlist = self.watches[enc]
            try:
                watchlist.remove(cid)
            except ValueError:
                # A missing entry is legitimate only when retirement
                # already purged it from the list; it is counted rather
                # than silently swallowed so double-scan bugs surface in
                # the instrumentation.
                self.counters.detach_misses += 1

    def propagate(self, ceiling: int | None = None) -> int | None:
        standing = self._standing_conflict(ceiling)
        if standing is not None:
            return standing
        values = self.values
        clauses = self.clauses
        watches = self.watches
        retire = self.retire_ceiling
        counters = self.counters
        visits = 0
        body_visits = 0
        assigns = 0
        purged = 0
        try:
            while self.qhead < len(self.trail):
                enc = self.trail[self.qhead]
                self.qhead += 1
                false_lit = enc ^ 1
                watchlist = watches[false_lit]
                i = 0
                j = 0
                end = len(watchlist)
                while i < end:
                    cid = watchlist[i]
                    i += 1
                    visits += 1
                    if cid >= retire:
                        # Lazily purge the retired entry: do not copy it
                        # back, so this list never re-visits it.
                        purged += 1
                        continue
                    if ceiling is not None and cid >= ceiling:
                        watchlist[j] = cid
                        j += 1
                        continue
                    body_visits += 1
                    clause = clauses[cid]
                    # Normalize: the false watch sits at position 1.
                    if clause[0] == false_lit:
                        clause[0] = clause[1]
                        clause[1] = false_lit
                    first = clause[0]
                    if values[first] == TRUE:
                        watchlist[j] = cid
                        j += 1
                        continue
                    moved = False
                    for k in range(2, len(clause)):
                        other = clause[k]
                        if values[other] != FALSE:
                            clause[1] = other
                            clause[k] = false_lit
                            watches[other].append(cid)
                            moved = True
                            break
                    if moved:
                        continue
                    # No replacement: the clause is unit or conflicting.
                    watchlist[j] = cid
                    j += 1
                    if values[first] == FALSE:
                        # Conflict: keep the rest of the watch list intact.
                        while i < end:
                            watchlist[j] = watchlist[i]
                            j += 1
                            i += 1
                        del watchlist[j:]
                        return cid
                    assigns += 1
                    self.values[first] = TRUE
                    self.values[first ^ 1] = FALSE
                    var = first >> 1
                    self.levels[var] = len(self.trail_lim)
                    self.reasons[var] = cid
                    self.trail.append(first)
                del watchlist[j:]
            return None
        finally:
            counters.watch_visits += visits
            counters.clause_visits += body_visits
            counters.assignments += assigns
            counters.purged += purged
