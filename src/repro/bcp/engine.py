"""Shared machinery of the BCP engines: trail, values, reasons, levels.

The paper's verification procedure needs exactly one nontrivial component —
Boolean Constraint Propagation (Section 2) — and the same component drives
the CDCL solver.  Both the two-watched-literal engine (Section 6 of the
paper: "an optimized version of the BCP procedure that employs the
machinery of watched literals") and the reference counting engine derive
from :class:`PropagatorBase`.

Conventions
-----------
* Literals are *encoded* (see :mod:`repro.core.literals`).
* ``values`` is indexed by encoded literal: ``TRUE``/``FALSE``/``UNDEF``.
* Clause ids (*cids*) are dense indices into ``clauses`` and are never
  reused; removed clauses leave a tombstone (empty list).
* ``propagate(ceiling=cid)`` ignores clauses with id ``>= cid`` — this is
  how the verifier checks proof clause *i* against only the clauses deduced
  before it without rebuilding the engine (Section 3: BCP over
  ``F ∪ F*``-prefix).
"""

from __future__ import annotations

import sys
from dataclasses import asdict, dataclass

TRUE = 1
FALSE = -1
UNDEF = 0

# Sentinel for "no clause is retired": larger than any clause id, so the
# hot loops can compare against it without a None test.
NO_CEILING = sys.maxsize


@dataclass
class PropagationCounters:
    """Observable BCP work, accumulated across propagate() calls.

    The backward-verification speedups (persistent root trail, watch
    purging) are claimed in these units, so both engines maintain them:

    * ``assignments`` — literals actually assigned (enqueued and new);
    * ``watch_visits`` — watch-list / occurrence-list entries scanned;
    * ``clause_visits`` — clause bodies inspected (past the ceiling and
      retirement filters);
    * ``purged`` — retired entries lazily dropped from watch/occurrence
      lists by :meth:`PropagatorBase.retire_above`;
    * ``detach_misses`` — ``_detach`` calls that found a watch entry
      already gone (e.g. purged after retirement); a nonzero value is
      normal only for retired clauses.
    """

    assignments: int = 0
    watch_visits: int = 0
    clause_visits: int = 0
    purged: int = 0
    detach_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)

    def total_work(self) -> int:
        """Machine-independent BCP effort: assignments + clause visits.

        This is the unit :class:`~repro.verify.budget.CheckBudget`'s
        ``max_props`` limit is charged in — unlike wall-clock time it is
        deterministic for a given formula/proof/engine, so budgets stay
        portable across hardware.
        """
        return self.assignments + self.clause_visits

    def reset(self) -> None:
        self.assignments = 0
        self.watch_visits = 0
        self.clause_visits = 0
        self.purged = 0
        self.detach_misses = 0


class PropagatorBase:
    """Trail, assignment and clause bookkeeping shared by all BCP engines."""

    #: Whether :meth:`remove_clause` works (the counting engine cannot
    #: rebuild its counters, so drivers that delete clauses — the
    #: forward DRUP checker — must refuse it up front).
    supports_removal = True

    #: Implementation of the hot loop: ``"python"`` for the pure-Python
    #: engines, ``"numpy"`` for the vectorized kernel.  Recorded in the
    #: ``kernel_selected`` obs event and the run-history fingerprint.
    kernel = "python"

    #: Whether the engine stores its clauses in a flat
    #: :class:`~repro.bcp.arena.ClauseArena` and accepts ``arena=`` in
    #: its constructor — the property the shared-memory parallel
    #: transport needs (workers attach the parent's arena and build
    #: the engine over it instead of pickling the clause database).
    arena_backed = False

    def __init__(self, num_vars: int = 0):
        self.num_vars = 0
        # Indexed by encoded literal (size 2 * (num_vars + 1)).
        self.values: list[int] = [UNDEF, UNDEF]
        # Indexed by variable.
        self.levels: list[int] = [-1]
        self.reasons: list[int | None] = [None]
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.clauses: list[list[int]] = []
        self.empty_clause_cid: int | None = None
        # Set when a unit clause added at level 0 contradicts the current
        # level-0 assignment; propagate() then reports it as the conflict
        # (unit clauses carry no watches, so this cannot be detected by
        # the watch machinery).
        self.conflict_unit_cid: int | None = None
        # Clauses with id >= retire_ceiling are permanently out of play:
        # they neither propagate nor conflict, and their watch/occurrence
        # entries are lazily purged as the lists are scanned.
        self.retire_ceiling: int = NO_CEILING
        self.counters = PropagationCounters()
        self.ensure_vars(num_vars)

    # -- variable / clause management ------------------------------------

    def ensure_vars(self, num_vars: int) -> None:
        """Grow internal arrays to accommodate variables ``1..num_vars``."""
        while self.num_vars < num_vars:
            self.num_vars += 1
            self.values.extend((UNDEF, UNDEF))
            self.levels.append(-1)
            self.reasons.append(None)
            self._on_new_var()

    def _on_new_var(self) -> None:
        """Subclass hook: grow per-literal structures (watches, occs)."""

    def add_clause(self, enc_lits: list[int],
                   propagate_units: bool = True) -> int:
        """Add a clause of encoded literals; return its clause id.

        Duplicate literals are removed (order otherwise preserved).  A unit
        clause added at decision level 0 is enqueued immediately unless
        ``propagate_units`` is False (the verifier manages units itself so
        it can exclude clauses beyond its ceiling).  An empty clause is
        recorded and makes every subsequent :meth:`propagate` report it.
        """
        seen: set[int] = set()
        lits = []
        max_var = 0
        for enc in enc_lits:
            if enc in seen:
                continue
            seen.add(enc)
            lits.append(enc)
            var = enc >> 1
            if var > max_var:
                max_var = var
        self.ensure_vars(max_var)
        cid = self._store_clause(lits)
        if not lits:
            if self.empty_clause_cid is None:
                self.empty_clause_cid = cid
            return cid
        self._attach(cid)
        if len(lits) == 1 and propagate_units and not self.trail_lim:
            if not self.enqueue(lits[0], cid):
                if self.conflict_unit_cid is None:
                    self.conflict_unit_cid = cid
        return cid

    def _store_clause(self, lits: list[int]) -> int:
        """Record a (deduplicated) clause body; return its new cid.

        Subclasses with a different storage layout (the flat arena)
        override this together with :meth:`clause_lits` /
        :meth:`clause_len`; everything else in the base class goes
        through those accessors and never assumes list-of-lists.
        """
        cid = len(self.clauses)
        self.clauses.append(lits)
        return cid

    def clause_lits(self, cid: int):
        """The literals of clause ``cid`` (a sequence of encoded
        literals; empty for a removed clause's tombstone)."""
        return self.clauses[cid]

    def clause_len(self, cid: int) -> int:
        return len(self.clauses[cid])

    def _standing_conflict(self, ceiling: int | None) -> int | None:
        """A conflict that exists independently of the propagation queue:
        an empty clause, or a level-0-falsified unit clause."""
        for cid in (self.empty_clause_cid, self.conflict_unit_cid):
            if cid is not None and (ceiling is None or cid < ceiling) \
                    and cid < self.retire_ceiling:
                return cid
        return None

    def retire_above(self, ceiling: int) -> None:
        """Permanently exclude clauses with id ``>= ceiling`` from BCP.

        Backward proof verification moves its clause ceiling monotonically
        down, so clauses above the frontier are never needed again.
        Retiring them lets the propagation loops *drop* their
        watch/occurrence entries on the next scan (counted in
        ``counters.purged``) instead of re-testing a per-call ceiling on
        every visit forever.  The retirement ceiling only moves down;
        raising it again is impossible because purged entries are gone.
        """
        if ceiling < self.retire_ceiling:
            self.retire_ceiling = ceiling

    def _attach(self, cid: int) -> None:
        """Subclass hook: register the clause with the propagation index."""
        raise NotImplementedError

    def remove_clause(self, cid: int) -> None:
        """Detach and tombstone a clause (used by learned-clause deletion).

        The caller must guarantee the clause is not the reason of any
        current assignment.
        """
        if self.clause_len(cid):
            self._detach(cid)
        self.clauses[cid] = []

    def _detach(self, cid: int) -> None:
        raise NotImplementedError

    # -- assignment ------------------------------------------------------

    @property
    def decision_level(self) -> int:
        return len(self.trail_lim)

    def value(self, enc: int) -> int:
        """Current truth value of an encoded literal."""
        return self.values[enc]

    def enqueue(self, enc: int, reason: int | None) -> bool:
        """Assign an encoded literal true with the given reason clause.

        Returns False if the literal is already false (a conflict the
        caller must handle); True otherwise (including the already-true
        no-op case).
        """
        current = self.values[enc]
        if current == TRUE:
            return True
        if current == FALSE:
            return False
        self.values[enc] = TRUE
        self.values[enc ^ 1] = FALSE
        var = enc >> 1
        self.levels[var] = len(self.trail_lim)
        self.reasons[var] = reason
        self.trail.append(enc)
        self.counters.assignments += 1
        return True

    def assume(self, enc: int) -> bool:
        """Open a new decision level and assign the literal (no reason)."""
        self.trail_lim.append(len(self.trail))
        return self.enqueue(enc, None)

    def new_level(self) -> None:
        """Open a new decision level without assigning anything yet."""
        self.trail_lim.append(len(self.trail))

    def backtrack(self, level: int) -> None:
        """Undo all assignments above the given decision level."""
        if level >= len(self.trail_lim):
            return
        limit = self.trail_lim[level]
        values = self.values
        for pos in range(len(self.trail) - 1, limit - 1, -1):
            enc = self.trail[pos]
            values[enc] = UNDEF
            values[enc ^ 1] = UNDEF
            var = enc >> 1
            self.levels[var] = -1
            self.reasons[var] = None
            self._on_unassign(enc, pos)
        del self.trail[limit:]
        del self.trail_lim[level:]
        self.qhead = limit

    def unwind_to(self, pos: int) -> None:
        """Unassign ``trail[pos:]`` without closing any decision level.

        The incremental backward checker uses this to retract only the
        suffix of the persistent root trail whose reasons crossed the
        moving ceiling; ``pos`` must not cut below an open decision level
        boundary (the caller retracts within the root level only).
        """
        if pos >= len(self.trail):
            return
        if self.trail_lim and pos < self.trail_lim[-1]:
            raise ValueError(
                f"unwind_to({pos}) would cross the decision-level "
                f"boundary at {self.trail_lim[-1]}; use backtrack()")
        values = self.values
        for p in range(len(self.trail) - 1, pos - 1, -1):
            enc = self.trail[p]
            values[enc] = UNDEF
            values[enc ^ 1] = UNDEF
            var = enc >> 1
            self.levels[var] = -1
            self.reasons[var] = None
            self._on_unassign(enc, p)
        del self.trail[pos:]
        self.qhead = min(self.qhead, pos)

    def _on_unassign(self, enc: int, pos: int) -> None:
        """Subclass hook: undo per-assignment state (counters).

        ``pos`` is the trail position; hooks can compare it against
        ``qhead`` to tell whether the assignment was ever dequeued.
        """

    def note_root_boundary(self) -> None:
        """Driver hint: the current state is a stable persistent root.

        The incremental checker calls this once per check, after the
        root trail is synced to the ceiling and before the check's
        decision level opens.  Engines that maintain root-derived
        acceleration structures refresh them here; the default is a
        no-op, and engines must stay correct if it is never called.
        """

    def propagate(self, ceiling: int | None = None) -> int | None:
        """Run BCP to fixpoint; return the conflicting clause id, if any.

        With a ``ceiling``, clauses with id ``>= ceiling`` neither
        propagate nor conflict (they are "not yet deduced" from the
        verifier's point of view).
        """
        raise NotImplementedError

    def assignment(self) -> dict[int, bool]:
        """The current assignment as a variable → bool mapping."""
        return {enc >> 1: not enc & 1 for enc in self.trail}
