"""Boolean Constraint Propagation engines.

Four interchangeable implementations of the paper's only algorithmic
prerequisite (Section 2):

* :class:`WatchedPropagator` — two-watched-literal scheme (the one the
  paper's verifier uses, Section 6);
* :class:`CountingPropagator` — classic counter-based scheme, used as a
  differential-testing oracle and ablation baseline;
* :class:`ArenaPropagator` — watched literals with blockers over a flat
  :class:`ClauseArena` literal pool; serializes to shared memory for
  the zero-copy parallel backend;
* :class:`VectorPropagator` — frontier-batched counting scheme whose
  hot loop runs as numpy bulk operations over the arena buffers
  (available only when numpy is installed: ``pip install repro[fast]``);
* :class:`VectorIncPropagator` — the arena watched engine specialized
  for incremental (persistent-root-trail) backward verification:
  batched blocker probes over long watch rows, vectorized watch-row
  compaction and bulk trail retraction (numpy-only, like ``vector``).

The CLI and the verification drivers select engines by name through
:data:`ENGINES` / :func:`resolve_engine`.  The pseudo-name ``"auto"``
resolves to the fastest engine the environment supports for the
workload: ``vector-inc`` for incremental mode / ``vector`` otherwise
when numpy is importable, else ``arena``.
"""

from repro.bcp.arena import ArenaPropagator, ClauseArena
from repro.bcp.counting import CountingPropagator
from repro.bcp.engine import (
    FALSE,
    NO_CEILING,
    TRUE,
    UNDEF,
    PropagationCounters,
    PropagatorBase,
)
from repro.bcp.watched import WatchedPropagator

#: Name -> engine class, the single registry the CLI's ``--engine``
#: choices and the drivers' string resolution share.
ENGINES: dict[str, type[PropagatorBase]] = {
    "watched": WatchedPropagator,
    "counting": CountingPropagator,
    "arena": ArenaPropagator,
}

try:  # numpy is an optional extra (repro[fast]); base install runs without
    from repro.bcp.vector import VectorPropagator
    from repro.bcp.vector_inc import VectorIncPropagator
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    VectorPropagator = None
    VectorIncPropagator = None
else:
    ENGINES["vector"] = VectorPropagator
    ENGINES["vector-inc"] = VectorIncPropagator


def numpy_available() -> bool:
    """Whether the numpy-vectorized engines can be used."""
    return VectorPropagator is not None


def resolve_engine(engine, mode: str | None = None,
                   order: str | None = None) -> type[PropagatorBase]:
    """An engine class from a registry name, a class, or ``None``
    (the default watched engine).

    The pseudo-name ``"auto"`` selects the fastest engine available
    *for the workload*: with numpy importable, ``vector-inc`` for
    incremental-mode verification (its batched blocker probe and bulk
    retraction pay off exactly when a persistent root trail keeps
    watch rows long) and ``vector`` otherwise; without numpy,
    ``arena``.  The
    ``mode``/``order`` hints are optional — callers that know the
    workload pass them (the verification drivers do), and callers that
    want the decision on record resolve through
    :func:`repro.verify.verification._resolve_engine_cls`, which emits
    a ``kernel_selected`` trace event with the reason.
    """
    if engine is None:
        return WatchedPropagator
    if isinstance(engine, str):
        if engine == "auto":
            if not numpy_available():
                return ArenaPropagator
            if mode == "incremental":
                return ENGINES["vector-inc"]
            return ENGINES["vector"]
        try:
            return ENGINES[engine]
        except KeyError:
            if engine in ("vector", "vector-inc"):
                raise ValueError(
                    f"the {engine} engine needs numpy (pip install "
                    "repro[fast]); use --engine auto to fall back "
                    "automatically") from None
            raise ValueError(
                f"unknown BCP engine {engine!r}; expected one of "
                f"{tuple(ENGINES)} or 'auto'") from None
    if isinstance(engine, type) and issubclass(engine, PropagatorBase):
        return engine
    raise ValueError(f"engine must be a name, a PropagatorBase "
                     f"subclass, or None; got {engine!r}")


def engine_name(engine_cls: type[PropagatorBase]) -> str:
    """The registry name of an engine class (class name if unregistered)."""
    for name, cls in ENGINES.items():
        if cls is engine_cls:
            return name
    return engine_cls.__name__


__all__ = [
    "PropagatorBase",
    "WatchedPropagator",
    "CountingPropagator",
    "ArenaPropagator",
    "VectorPropagator",
    "VectorIncPropagator",
    "ClauseArena",
    "PropagationCounters",
    "ENGINES",
    "resolve_engine",
    "engine_name",
    "numpy_available",
    "TRUE",
    "FALSE",
    "UNDEF",
    "NO_CEILING",
]
