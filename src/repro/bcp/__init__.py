"""Boolean Constraint Propagation engines.

Four interchangeable implementations of the paper's only algorithmic
prerequisite (Section 2):

* :class:`WatchedPropagator` — two-watched-literal scheme (the one the
  paper's verifier uses, Section 6);
* :class:`CountingPropagator` — classic counter-based scheme, used as a
  differential-testing oracle and ablation baseline;
* :class:`ArenaPropagator` — watched literals with blockers over a flat
  :class:`ClauseArena` literal pool; serializes to shared memory for
  the zero-copy parallel backend;
* :class:`VectorPropagator` — frontier-batched counting scheme whose
  hot loop runs as numpy bulk operations over the arena buffers
  (available only when numpy is installed: ``pip install repro[fast]``).

The CLI and the verification drivers select engines by name through
:data:`ENGINES` / :func:`resolve_engine`.  The pseudo-name ``"auto"``
resolves to the fastest engine the environment supports: ``vector``
when numpy is importable, else ``arena``.
"""

from repro.bcp.arena import ArenaPropagator, ClauseArena
from repro.bcp.counting import CountingPropagator
from repro.bcp.engine import (
    FALSE,
    NO_CEILING,
    TRUE,
    UNDEF,
    PropagationCounters,
    PropagatorBase,
)
from repro.bcp.watched import WatchedPropagator

#: Name -> engine class, the single registry the CLI's ``--engine``
#: choices and the drivers' string resolution share.
ENGINES: dict[str, type[PropagatorBase]] = {
    "watched": WatchedPropagator,
    "counting": CountingPropagator,
    "arena": ArenaPropagator,
}

try:  # numpy is an optional extra (repro[fast]); base install runs without
    from repro.bcp.vector import VectorPropagator
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    VectorPropagator = None
else:
    ENGINES["vector"] = VectorPropagator


def numpy_available() -> bool:
    """Whether the numpy-vectorized engine can be used."""
    return VectorPropagator is not None


def resolve_engine(engine) -> type[PropagatorBase]:
    """An engine class from a registry name, a class, or ``None``
    (the default watched engine).

    The pseudo-name ``"auto"`` selects the fastest engine available:
    ``vector`` if numpy is importable, ``arena`` otherwise — callers
    that want the decision on record resolve through
    :func:`repro.verify.verification._resolve_engine_cls`, which emits
    a ``kernel_selected`` trace event.
    """
    if engine is None:
        return WatchedPropagator
    if isinstance(engine, str):
        if engine == "auto":
            return ENGINES["vector"] if numpy_available() \
                else ArenaPropagator
        try:
            return ENGINES[engine]
        except KeyError:
            if engine == "vector":
                raise ValueError(
                    "the vector engine needs numpy (pip install "
                    "repro[fast]); use --engine auto to fall back "
                    "automatically") from None
            raise ValueError(
                f"unknown BCP engine {engine!r}; expected one of "
                f"{tuple(ENGINES)} or 'auto'") from None
    if isinstance(engine, type) and issubclass(engine, PropagatorBase):
        return engine
    raise ValueError(f"engine must be a name, a PropagatorBase "
                     f"subclass, or None; got {engine!r}")


def engine_name(engine_cls: type[PropagatorBase]) -> str:
    """The registry name of an engine class (class name if unregistered)."""
    for name, cls in ENGINES.items():
        if cls is engine_cls:
            return name
    return engine_cls.__name__


__all__ = [
    "PropagatorBase",
    "WatchedPropagator",
    "CountingPropagator",
    "ArenaPropagator",
    "VectorPropagator",
    "ClauseArena",
    "PropagationCounters",
    "ENGINES",
    "resolve_engine",
    "engine_name",
    "numpy_available",
    "TRUE",
    "FALSE",
    "UNDEF",
    "NO_CEILING",
]
