"""Boolean Constraint Propagation engines.

Three interchangeable implementations of the paper's only algorithmic
prerequisite (Section 2):

* :class:`WatchedPropagator` — two-watched-literal scheme (the one the
  paper's verifier uses, Section 6);
* :class:`CountingPropagator` — classic counter-based scheme, used as a
  differential-testing oracle and ablation baseline;
* :class:`ArenaPropagator` — watched literals with blockers over a flat
  :class:`ClauseArena` literal pool; serializes to shared memory for
  the zero-copy parallel backend.

The CLI and the verification drivers select engines by name through
:data:`ENGINES` / :func:`resolve_engine`.
"""

from repro.bcp.arena import ArenaPropagator, ClauseArena
from repro.bcp.counting import CountingPropagator
from repro.bcp.engine import (
    FALSE,
    NO_CEILING,
    TRUE,
    UNDEF,
    PropagationCounters,
    PropagatorBase,
)
from repro.bcp.watched import WatchedPropagator

#: Name -> engine class, the single registry the CLI's ``--engine``
#: choices and the drivers' string resolution share.
ENGINES: dict[str, type[PropagatorBase]] = {
    "watched": WatchedPropagator,
    "counting": CountingPropagator,
    "arena": ArenaPropagator,
}


def resolve_engine(engine) -> type[PropagatorBase]:
    """An engine class from a registry name, a class, or ``None``
    (the default watched engine)."""
    if engine is None:
        return WatchedPropagator
    if isinstance(engine, str):
        try:
            return ENGINES[engine]
        except KeyError:
            raise ValueError(
                f"unknown BCP engine {engine!r}; expected one of "
                f"{tuple(ENGINES)}") from None
    if isinstance(engine, type) and issubclass(engine, PropagatorBase):
        return engine
    raise ValueError(f"engine must be a name, a PropagatorBase "
                     f"subclass, or None; got {engine!r}")


def engine_name(engine_cls: type[PropagatorBase]) -> str:
    """The registry name of an engine class (class name if unregistered)."""
    for name, cls in ENGINES.items():
        if cls is engine_cls:
            return name
    return engine_cls.__name__


__all__ = [
    "PropagatorBase",
    "WatchedPropagator",
    "CountingPropagator",
    "ArenaPropagator",
    "ClauseArena",
    "PropagationCounters",
    "ENGINES",
    "resolve_engine",
    "engine_name",
    "TRUE",
    "FALSE",
    "UNDEF",
    "NO_CEILING",
]
