"""Boolean Constraint Propagation engines.

Two interchangeable implementations of the paper's only algorithmic
prerequisite (Section 2):

* :class:`WatchedPropagator` — two-watched-literal scheme (the one the
  paper's verifier uses, Section 6);
* :class:`CountingPropagator` — classic counter-based scheme, used as a
  differential-testing oracle and ablation baseline.
"""

from repro.bcp.counting import CountingPropagator
from repro.bcp.engine import (
    FALSE,
    NO_CEILING,
    TRUE,
    UNDEF,
    PropagationCounters,
    PropagatorBase,
)
from repro.bcp.watched import WatchedPropagator

__all__ = [
    "PropagatorBase",
    "WatchedPropagator",
    "CountingPropagator",
    "PropagationCounters",
    "TRUE",
    "FALSE",
    "UNDEF",
    "NO_CEILING",
]
