"""The ISA-level specification machine (sequential execution).

The golden model of the correspondence check: instructions execute one
bundle at a time against an architected register file, reads before
writes within a bundle, writes applied in instruction order.
"""

from __future__ import annotations

from repro.circuits.netlist import Circuit
from repro.pipelines.isa import (
    MachineSpec,
    add_program_inputs,
    add_regfile_inputs,
    alu_result,
    fields_equal_const,
    select_register,
)


def build_spec_circuit(spec: MachineSpec) -> Circuit:
    """Sequential reference machine; outputs the final register file."""
    c = Circuit(f"spec_n{spec.num_instrs}_iw{spec.issue_width}")
    program = add_program_inputs(c, spec)
    regfile = add_regfile_inputs(c, spec)

    for start in range(0, spec.num_instrs, spec.issue_width):
        bundle = program[start:start + spec.issue_width]
        snapshot = regfile
        staged = [list(reg) for reg in regfile]
        for fields in bundle:
            a = select_register(c, fields["s1"], snapshot)
            b = select_register(c, fields["s2"], snapshot)
            result = alu_result(c, fields["op"], a, b)
            # Write in instruction order: later writes override.
            staged = [
                [
                    c.MUX(fields_equal_const(c, fields["d"], j),
                          staged[j][bit], result[bit])
                    for bit in range(spec.width)
                ]
                for j in range(spec.num_regs)
            ]
        regfile = staged

    for j in range(spec.num_regs):
        for bit in range(spec.width):
            c.set_output(c.BUF(regfile[j][bit], name=f"out_r{j}[{bit}]"))
    return c
