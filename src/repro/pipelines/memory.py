"""Load-store machine correspondence (the deeper end of the pipe family).

Velev's hardest instances model processors with *memory*: loads and
stores over symbolic addresses force the prover to reason about aliasing
("does this store feed that load?"), which is where pipeline formulas
get genuinely hard.  This module adds that dimension:

**ISA**: ``op`` is 3 bits — ``000..011`` the ALU ops of
:mod:`repro.pipelines.isa`; ``100`` LOAD (``R[d] ← M[R[s1]]``); ``101``
STORE (``M[R[s1]] ← R[s2]``); ``110``/``111`` NOP.  Addresses are the
low bits of the register value; the machine has ``num_mem`` words of
``width`` bits.

**Specification**: sequential execution over registers and memory.

**Implementation**: the pipelined evaluation style of
:mod:`repro.pipelines.impl` — register reads via writeback-horizon
priority logic plus newest-first forwarding (only instructions that
write a register forward), and loads resolved through a symbolic
store-to-load forwarding chain (last aliasing store wins, else initial
memory).  Structurally disjoint from the spec, equivalent by
construction: the miter is UNSAT.
"""

from __future__ import annotations

from repro.circuits.miter import equivalence_formula
from repro.circuits.netlist import Circuit
from repro.core.exceptions import ModelError
from repro.core.formula import CnfFormula
from repro.pipelines.isa import (
    MachineSpec,
    add_regfile_inputs,
    alu_result,
    fields_equal_const,
    select_register,
)

OP_LOAD = 4
OP_STORE = 5
OP_NOP = 6


class LoadStoreSpec(MachineSpec):
    """Machine parameters plus a data memory of ``num_mem`` words."""

    def __init__(self, num_instrs: int, num_regs: int = 2,
                 width: int = 2, num_mem: int = 2):
        super().__init__(num_instrs=num_instrs, num_regs=num_regs,
                         width=width, issue_width=1)
        if num_mem < 2 or num_mem & (num_mem - 1):
            raise ModelError("num_mem must be a power of two >= 2")
        if num_mem > (1 << width):
            raise ModelError("addresses (register values) cannot reach "
                             f"{num_mem} memory words at width {width}")
        object.__setattr__(self, "num_mem", num_mem)

    @property
    def mem_bits(self) -> int:
        return self.num_mem.bit_length() - 1


def _add_ls_program_inputs(c: Circuit, spec: LoadStoreSpec) -> list[dict]:
    fields = []
    for i in range(spec.num_instrs):
        fields.append({
            "op": c.add_input_bus(f"op{i}", 3),
            "s1": c.add_input_bus(f"s1_{i}", spec.reg_bits),
            "s2": c.add_input_bus(f"s2_{i}", spec.reg_bits),
            "d": c.add_input_bus(f"d{i}", spec.reg_bits),
        })
    return fields


def _add_memory_inputs(c: Circuit, spec: LoadStoreSpec) -> list[list[str]]:
    return [c.add_input_bus(f"m{k}", spec.width)
            for k in range(spec.num_mem)]


def _decode(c: Circuit, op: list[str]) -> dict[str, str]:
    """Decode the 3-bit opcode into class flags."""
    is_load = c.AND(op[2], c.NOT(op[1]), c.NOT(op[0]))
    is_store = c.AND(op[2], c.NOT(op[1]), op[0])
    is_alu = c.NOT(op[2])
    writes_reg = c.OR(is_alu, is_load)
    return {"load": is_load, "store": is_store, "alu": is_alu,
            "writes_reg": writes_reg}


def _bits_equal(c: Circuit, xs: list[str], ys: list[str]) -> str:
    same = [c.XNOR(x, y) for x, y in zip(xs, ys)]
    return same[0] if len(same) == 1 else c.AND(*same)


def _set_outputs(c: Circuit, spec: LoadStoreSpec,
                 regs: list[list[str]], mem: list[list[str]]) -> None:
    for j in range(spec.num_regs):
        for bit in range(spec.width):
            c.set_output(c.BUF(regs[j][bit], name=f"out_r{j}[{bit}]"))
    for k in range(spec.num_mem):
        for bit in range(spec.width):
            c.set_output(c.BUF(mem[k][bit], name=f"out_m{k}[{bit}]"))


def build_ls_spec_circuit(spec: LoadStoreSpec) -> Circuit:
    """Sequential reference machine with registers and memory."""
    c = Circuit(f"ls_spec_n{spec.num_instrs}")
    program = _add_ls_program_inputs(c, spec)
    regs = add_regfile_inputs(c, spec)
    mem = _add_memory_inputs(c, spec)

    for fields in program:
        flags = _decode(c, fields["op"])
        a = select_register(c, fields["s1"], regs)
        b = select_register(c, fields["s2"], regs)
        alu = alu_result(c, fields["op"][:2], a, b)
        address = a[:spec.mem_bits]
        loaded = [
            _mux_by_index(c, address, [mem[k][bit]
                                       for k in range(spec.num_mem)])
            for bit in range(spec.width)
        ]
        result = [c.MUX(flags["load"], alu[bit], loaded[bit])
                  for bit in range(spec.width)]
        regs = [
            [
                c.MUX(c.AND(flags["writes_reg"],
                            fields_equal_const(c, fields["d"], j)),
                      regs[j][bit], result[bit])
                for bit in range(spec.width)
            ]
            for j in range(spec.num_regs)
        ]
        mem = [
            [
                c.MUX(c.AND(flags["store"],
                            _addr_is(c, address, k)),
                      mem[k][bit], b[bit])
                for bit in range(spec.width)
            ]
            for k in range(spec.num_mem)
        ]
    _set_outputs(c, spec, regs, mem)
    return c


def _mux_by_index(c: Circuit, index: list[str], words: list[str]) -> str:
    layer = words
    for bit in index:
        layer = [c.MUX(bit, layer[2 * i], layer[2 * i + 1])
                 for i in range(len(layer) // 2)]
    return layer[0]


def _addr_is(c: Circuit, address: list[str], k: int) -> str:
    terms = [bit if (k >> i) & 1 else c.NOT(bit)
             for i, bit in enumerate(address)]
    return terms[0] if len(terms) == 1 else c.AND(*terms)


def build_ls_pipeline_circuit(spec: LoadStoreSpec, depth: int) -> Circuit:
    """Pipelined evaluation with register forwarding and symbolic
    store-to-load forwarding."""
    if depth < 1:
        raise ModelError("pipeline depth must be >= 1")
    c = Circuit(f"ls_pipe{depth}_n{spec.num_instrs}")
    program = _add_ls_program_inputs(c, spec)
    initial_regs = add_regfile_inputs(c, spec)
    initial_mem = _add_memory_inputs(c, spec)

    flags = [_decode(c, fields["op"]) for fields in program]
    results: list[list[str]] = []   # register result of instr i
    addresses: list[list[str]] = []  # memory address of instr i
    store_values: list[list[str]] = []

    def reg_read(i: int, src_bits: list[str]) -> list[str]:
        cutoff = max(0, i - depth)
        per_register = []
        for j in range(spec.num_regs):
            value = initial_regs[j]
            for writer in range(cutoff):
                hit = c.AND(flags[writer]["writes_reg"],
                            fields_equal_const(c, program[writer]["d"],
                                               j))
                value = [c.MUX(hit, value[bit], results[writer][bit])
                         for bit in range(spec.width)]
            per_register.append(value)
        value = select_register(c, src_bits, per_register)
        for j in range(cutoff, i):
            hit = c.AND(flags[j]["writes_reg"],
                        _bits_equal(c, program[j]["d"], src_bits))
            value = [c.MUX(hit, value[bit], results[j][bit])
                     for bit in range(spec.width)]
        return value

    def memory_read(i: int, address: list[str]) -> list[str]:
        value = [
            _mux_by_index(c, address,
                          [initial_mem[k][bit]
                           for k in range(spec.num_mem)])
            for bit in range(spec.width)
        ]
        # Store-to-load forwarding: oldest to newest, newest wins.
        for j in range(i):
            hit = c.AND(flags[j]["store"],
                        _bits_equal(c, addresses[j], address))
            value = [c.MUX(hit, value[bit], store_values[j][bit])
                     for bit in range(spec.width)]
        return value

    for i, fields in enumerate(program):
        a = reg_read(i, fields["s1"])
        b = reg_read(i, fields["s2"])
        alu = alu_result(c, fields["op"][:2], a, b)
        address = a[:spec.mem_bits]
        loaded = memory_read(i, address)
        addresses.append(address)
        store_values.append(b)
        results.append([c.MUX(flags[i]["load"], alu[bit], loaded[bit])
                        for bit in range(spec.width)])

    # Drained state: per-register and per-slot last-writer-wins.
    final_regs = []
    for j in range(spec.num_regs):
        value = initial_regs[j]
        for writer in range(spec.num_instrs):
            hit = c.AND(flags[writer]["writes_reg"],
                        fields_equal_const(c, program[writer]["d"], j))
            value = [c.MUX(hit, value[bit], results[writer][bit])
                     for bit in range(spec.width)]
        final_regs.append(value)
    final_mem = []
    for k in range(spec.num_mem):
        value = initial_mem[k]
        for j in range(spec.num_instrs):
            hit = c.AND(flags[j]["store"], _addr_is(c, addresses[j], k))
            value = [c.MUX(hit, value[bit], store_values[j][bit])
                     for bit in range(spec.width)]
        final_mem.append(value)
    _set_outputs(c, spec, final_regs, final_mem)
    return c


def dlx_instance(depth: int, num_instrs: int, num_regs: int = 2,
                 width: int = 2, num_mem: int = 2) -> CnfFormula:
    """A load-store pipeline correspondence instance (UNSAT)."""
    spec = LoadStoreSpec(num_instrs=num_instrs, num_regs=num_regs,
                         width=width, num_mem=num_mem)
    return equivalence_formula(build_ls_spec_circuit(spec),
                               build_ls_pipeline_circuit(spec, depth))


def execute_ls_program(spec: LoadStoreSpec, initial_regs: list[int],
                       initial_mem: list[int],
                       program: list[tuple[int, int, int, int]],
                       ) -> tuple[list[int], list[int]]:
    """Pure-Python reference semantics (for differential testing)."""
    mask = (1 << spec.width) - 1
    regs = [value & mask for value in initial_regs]
    mem = [value & mask for value in initial_mem]
    for op, s1, s2, d in program:
        a, b = regs[s1], regs[s2]
        address = a & (spec.num_mem - 1)
        if op < 4:
            from repro.pipelines.isa import execute_program
            inner = MachineSpec(num_instrs=1, num_regs=spec.num_regs,
                                width=spec.width)
            regs = execute_program(inner, regs, [(op, s1, s2, d)])
        elif op == OP_LOAD:
            regs[d] = mem[address]
        elif op == OP_STORE:
            mem[address] = b
        # NOPs (6, 7) change nothing.
    return regs, mem
