"""The pipelined implementation with forwarding (the design under test).

A ``depth``-stage pipeline writes a result back to the register file only
``depth`` bundles after issue, so an instruction's operands come from

* the *stale* register file — last-writer-wins priority logic over the
  instructions whose bundles have already written back, or the initial
  register file if none wrote the register; and
* the *forwarding network* — newest-first match against the destinations
  of the instructions still in flight (issued but not written back,
  excluding the instruction's own bundle, whose reads are pre-bundle by
  the VLIW read semantics).

The final register file is produced by per-register last-writer-wins
logic over the whole program (the drained pipeline).  None of this reuses
the specification's sequential fold — the structures are as different as
Velev's pipelines were from their ISA models, which is what makes the
miter a genuine correspondence proof.
"""

from __future__ import annotations

from repro.circuits.netlist import Circuit
from repro.core.exceptions import ModelError
from repro.pipelines.isa import (
    MachineSpec,
    add_program_inputs,
    add_regfile_inputs,
    alu_result,
    fields_equal_const,
    select_register,
)


def _bits_equal(c: Circuit, xs: list[str], ys: list[str]) -> str:
    same = [c.XNOR(x, y) for x, y in zip(xs, ys)]
    return same[0] if len(same) == 1 else c.AND(*same)


def build_pipeline_circuit(spec: MachineSpec, depth: int) -> Circuit:
    """``depth``-stage pipelined implementation of the ISA machine."""
    if depth < 1:
        raise ModelError("pipeline depth must be >= 1")
    c = Circuit(f"pipe{depth}_n{spec.num_instrs}_iw{spec.issue_width}")
    program = add_program_inputs(c, spec)
    initial = add_regfile_inputs(c, spec)
    results: list[list[str]] = []

    def stale_read(reg_index_bits: list[str], cutoff: int) -> list[str]:
        """Register read seeing only writebacks of instructions
        ``< cutoff``: per-register priority chains over writers, then a
        mux-tree select on the register index."""
        per_register = []
        for j in range(spec.num_regs):
            value = initial[j]
            for writer in range(cutoff):
                hit = fields_equal_const(c, program[writer]["d"], j)
                value = [c.MUX(hit, value[bit], results[writer][bit])
                         for bit in range(spec.width)]
            per_register.append(value)
        return select_register(c, reg_index_bits, per_register)

    for i in range(spec.num_instrs):
        bundle_start = spec.bundle_start(i)
        # Bundles written back: issued at least `depth` bundles ago.
        writeback_cutoff = max(
            0, (spec.bundle_of(i) - depth) * spec.issue_width)
        operands = []
        for source in ("s1", "s2"):
            src_bits = program[i][source]
            value = stale_read(src_bits, writeback_cutoff)
            # Forward newest-first: apply oldest to newest so the newest
            # matching in-flight result wins.
            for j in range(writeback_cutoff, bundle_start):
                hit = _bits_equal(c, program[j]["d"], src_bits)
                value = [c.MUX(hit, value[bit], results[j][bit])
                         for bit in range(spec.width)]
            operands.append(value)
        results.append(
            alu_result(c, program[i]["op"], operands[0], operands[1]))

    # Drained pipeline: final register file via last-writer-wins.
    for j in range(spec.num_regs):
        value = initial[j]
        for writer in range(spec.num_instrs):
            hit = fields_equal_const(c, program[writer]["d"], j)
            value = [c.MUX(hit, value[bit], results[writer][bit])
                     for bit in range(spec.width)]
        for bit in range(spec.width):
            c.set_output(c.BUF(value[bit], name=f"out_r{j}[{bit}]"))
    return c
