"""Pipelined-microprocessor correspondence checking (pipe/vliw family)."""

from repro.pipelines.correctness import (
    pipe_instance,
    pipeline_formula,
    pipeline_miter,
    vliw_instance,
)
from repro.pipelines.impl import build_pipeline_circuit
from repro.pipelines.memory import (
    LoadStoreSpec,
    build_ls_pipeline_circuit,
    build_ls_spec_circuit,
    dlx_instance,
    execute_ls_program,
)
from repro.pipelines.isa import (
    ALU_ADD,
    ALU_AND,
    ALU_OR,
    ALU_XOR,
    MachineSpec,
    execute_program,
)
from repro.pipelines.spec import build_spec_circuit

__all__ = [
    "MachineSpec",
    "execute_program",
    "build_spec_circuit",
    "build_pipeline_circuit",
    "pipeline_miter",
    "pipeline_formula",
    "pipe_instance",
    "vliw_instance",
    "LoadStoreSpec",
    "build_ls_spec_circuit",
    "build_ls_pipeline_circuit",
    "dlx_instance",
    "execute_ls_program",
    "ALU_ADD",
    "ALU_AND",
    "ALU_OR",
    "ALU_XOR",
]
