"""Pipeline–ISA correspondence formulas (the pipe/vliw instance family).

The miter of the sequential specification machine and the pipelined
implementation over fully symbolic programs and register files.  The
formula is UNSAT because forwarding is correct — these are our
scaled-down analogs of the paper's ``5pipe`` … ``9pipe`` and ``vliw``
instances [15].
"""

from __future__ import annotations

from repro.circuits.miter import build_miter, equivalence_formula
from repro.circuits.netlist import Circuit
from repro.core.formula import CnfFormula
from repro.pipelines.impl import build_pipeline_circuit
from repro.pipelines.isa import MachineSpec
from repro.pipelines.spec import build_spec_circuit


def pipeline_miter(spec: MachineSpec, depth: int) -> Circuit:
    """The miter circuit of spec machine vs. ``depth``-stage pipeline."""
    return build_miter(build_spec_circuit(spec),
                       build_pipeline_circuit(spec, depth),
                       name=f"pipe{depth}_miter")


def pipeline_formula(spec: MachineSpec, depth: int) -> CnfFormula:
    """UNSAT CNF asserting some program distinguishes spec and pipeline."""
    return equivalence_formula(build_spec_circuit(spec),
                               build_pipeline_circuit(spec, depth))


def pipe_instance(depth: int, num_instrs: int, num_regs: int = 4,
                  width: int = 2) -> CnfFormula:
    """A ``<depth>pipe``-style instance (single-issue)."""
    spec = MachineSpec(num_instrs=num_instrs, num_regs=num_regs,
                       width=width, issue_width=1)
    return pipeline_formula(spec, depth)


def vliw_instance(depth: int, num_instrs: int, issue_width: int = 2,
                  num_regs: int = 4, width: int = 2) -> CnfFormula:
    """A ``vliw``-style instance (multi-issue pipeline)."""
    spec = MachineSpec(num_instrs=num_instrs, num_regs=num_regs,
                       width=width, issue_width=issue_width)
    return pipeline_formula(spec, depth)
