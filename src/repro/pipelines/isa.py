"""A tiny register-machine ISA for pipeline verification.

The paper's hardest instances (``5pipe`` … ``9pipe``, ``vliw`` [15]) are
Velev's correspondence checks of pipelined microprocessors against their
ISA.  We reproduce the construction at laptop scale: a machine with
``num_regs`` general registers of ``width`` bits executing a straight-line
program of ``num_instrs`` ALU instructions, each with fields

* ``op``  (2 bits): 00 ADD, 01 AND, 10 OR, 11 XOR;
* ``s1``, ``s2`` (register indices): source operands;
* ``d``  (register index): destination.

All fields and the initial register file are symbolic (circuit inputs),
so the equivalence proof quantifies over *every* program and starting
state — exactly the Burch–Dill flavor of the original benchmarks.

``issue_width > 1`` models a VLIW machine: instructions are grouped into
bundles that issue together; reads inside a bundle observe the register
state *before* the bundle, and same-destination writes resolve in
instruction order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.netlist import Circuit
from repro.core.exceptions import ModelError

ALU_ADD, ALU_AND, ALU_OR, ALU_XOR = range(4)


@dataclass(frozen=True)
class MachineSpec:
    """Parameters of a pipeline-verification instance."""

    num_instrs: int
    num_regs: int = 4
    width: int = 2
    issue_width: int = 1

    def __post_init__(self) -> None:
        if self.num_regs < 2 or self.num_regs & (self.num_regs - 1):
            raise ModelError("num_regs must be a power of two >= 2")
        if self.width < 1:
            raise ModelError("width must be positive")
        if self.num_instrs < 1:
            raise ModelError("num_instrs must be positive")
        if self.issue_width < 1:
            raise ModelError("issue_width must be positive")

    @property
    def reg_bits(self) -> int:
        return self.num_regs.bit_length() - 1

    def bundle_of(self, instr: int) -> int:
        return instr // self.issue_width

    def bundle_start(self, instr: int) -> int:
        """Index of the first instruction of ``instr``'s bundle."""
        return self.bundle_of(instr) * self.issue_width


def add_program_inputs(c: Circuit, spec: MachineSpec) -> list[dict]:
    """Declare the instruction-field inputs; one dict per instruction
    with keys ``op``, ``s1``, ``s2``, ``d`` (bit-net lists)."""
    fields = []
    for i in range(spec.num_instrs):
        fields.append({
            "op": c.add_input_bus(f"op{i}", 2),
            "s1": c.add_input_bus(f"s1_{i}", spec.reg_bits),
            "s2": c.add_input_bus(f"s2_{i}", spec.reg_bits),
            "d": c.add_input_bus(f"d{i}", spec.reg_bits),
        })
    return fields


def add_regfile_inputs(c: Circuit, spec: MachineSpec) -> list[list[str]]:
    """Declare the initial register file inputs, one bus per register."""
    return [c.add_input_bus(f"r{j}", spec.width)
            for j in range(spec.num_regs)]


def alu_result(c: Circuit, op: list[str], a: list[str],
               b: list[str]) -> list[str]:
    """In-circuit ALU: op selects ADD/AND/OR/XOR of two buses."""
    zero = c.CONST0()
    carry = zero
    out = []
    for i in range(len(a)):
        add_xor = c.add_gate("XOR", (a[i], b[i]))
        add_bit = c.add_gate("XOR", (add_xor, carry))
        carry = c.OR(c.AND(a[i], b[i]), c.AND(add_xor, carry))
        and_bit = c.AND(a[i], b[i])
        or_bit = c.OR(a[i], b[i])
        xor_bit = c.add_gate("XOR", (a[i], b[i]))
        low = c.MUX(op[0], add_bit, and_bit)
        high = c.MUX(op[0], or_bit, xor_bit)
        out.append(c.MUX(op[1], low, high))
    return out


def select_register(c: Circuit, index: list[str],
                    regfile: list[list[str]]) -> list[str]:
    """Read ``regfile[index]`` via a per-bit mux tree."""
    width = len(regfile[0])
    out = []
    for bit in range(width):
        layer = [reg[bit] for reg in regfile]
        for sel in index:
            layer = [c.MUX(sel, layer[2 * k], layer[2 * k + 1])
                     for k in range(len(layer) // 2)]
        out.append(layer[0])
    return out


def fields_equal_const(c: Circuit, bits: list[str], value: int) -> str:
    terms = [bit if (value >> k) & 1 else c.NOT(bit)
             for k, bit in enumerate(bits)]
    return terms[0] if len(terms) == 1 else c.AND(*terms)


def execute_program(spec: MachineSpec, initial_regs: list[int],
                    program: list[tuple[int, int, int, int]]) -> list[int]:
    """Pure-Python reference semantics (for differential testing).

    ``program`` entries are ``(op, s1, s2, d)``; returns the final
    register values.  Bundle semantics: reads see the pre-bundle state.
    """
    mask = (1 << spec.width) - 1
    regs = [value & mask for value in initial_regs]
    for start in range(0, len(program), spec.issue_width):
        bundle = program[start:start + spec.issue_width]
        snapshot = list(regs)
        for op, s1, s2, d in bundle:
            a, b = snapshot[s1], snapshot[s2]
            if op == ALU_ADD:
                value = (a + b) & mask
            elif op == ALU_AND:
                value = a & b
            elif op == ALU_OR:
                value = a | b
            elif op == ALU_XOR:
                value = a ^ b
            else:
                raise ModelError(f"bad opcode {op}")
            regs[d] = value
    return regs
