"""ISCAS BENCH netlist format.

The paper's equivalence-checking instances come from the ISCAS-85
benchmark suite (c2670, c3540, c5315), which is distributed in the
``.bench`` format::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G17 = NOT(G10)

This module reads and writes that format so users who *do* have the
original netlists can run them through this library.  Gates may appear
in any order (the parser topologically sorts them).  Two non-standard
extensions are accepted and emitted — ``CONST0()``/``CONST1()`` and
``MUX(sel, if0, if1)`` — so every :class:`repro.circuits.Circuit`
roundtrips; writers targeting strict ISCAS tools should avoid those ops.
Sequential elements (``DFF``) are rejected: this library's sequential
flow goes through :mod:`repro.bmc` instead.
"""

from __future__ import annotations

import io
import re
from os import PathLike

from repro.circuits.netlist import Circuit
from repro.core.exceptions import CircuitError

_LINE = re.compile(
    r"^\s*(?P<out>[^\s=()]+)\s*=\s*(?P<op>[A-Za-z01]+)\s*"
    r"\((?P<args>[^)]*)\)\s*$")
_DECL = re.compile(r"^\s*(?P<kind>INPUT|OUTPUT)\s*\((?P<net>[^)]+)\)\s*$",
                   re.IGNORECASE)

_OP_ALIASES = {
    "BUFF": "BUF",
    "BUF": "BUF",
    "NOT": "NOT",
    "AND": "AND",
    "NAND": "NAND",
    "OR": "OR",
    "NOR": "NOR",
    "XOR": "XOR",
    "XNOR": "XNOR",
    "MUX": "MUX",
    "CONST0": "CONST0",
    "CONST1": "CONST1",
}


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse BENCH text into a :class:`Circuit`."""
    inputs: list[str] = []
    outputs: list[str] = []
    definitions: dict[str, tuple[str, tuple[str, ...]]] = {}

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        declaration = _DECL.match(line)
        if declaration:
            net = declaration.group("net").strip()
            if declaration.group("kind").upper() == "INPUT":
                inputs.append(net)
            else:
                outputs.append(net)
            continue
        gate = _LINE.match(line)
        if not gate:
            raise CircuitError(
                f"line {line_number}: cannot parse {line!r}")
        op_name = gate.group("op").upper()
        if op_name == "DFF":
            raise CircuitError(
                f"line {line_number}: sequential element DFF is not "
                "supported (model it as a repro.bmc transition system)")
        op = _OP_ALIASES.get(op_name)
        if op is None:
            raise CircuitError(
                f"line {line_number}: unknown gate type {op_name!r}")
        out = gate.group("out").strip()
        if out in definitions:
            raise CircuitError(
                f"line {line_number}: net {out!r} defined twice")
        args = tuple(arg.strip() for arg in gate.group("args").split(",")
                     if arg.strip())
        # XOR/XNOR in BENCH may be wide; Circuit.XOR handles chaining,
        # but XNOR needs explicit reduction for arity > 2.
        definitions[out] = (op, args)

    circuit = Circuit(name)
    for net in inputs:
        circuit.add_input(net)

    # Topological emission (BENCH allows any definition order).
    emitted: set[str] = set(inputs)
    pending = dict(definitions)
    while pending:
        progress = False
        for out in list(pending):
            op, args = pending[out]
            if all(arg in emitted for arg in args):
                _emit(circuit, op, args, out)
                emitted.add(out)
                del pending[out]
                progress = True
        if not progress:
            unresolved = sorted(pending)
            raise CircuitError(
                "combinational cycle or undefined nets involving: "
                f"{unresolved[:5]}")

    for net in outputs:
        if net not in emitted:
            raise CircuitError(f"OUTPUT({net}) is never defined")
        circuit.set_output(net)
    return circuit


def _emit(circuit: Circuit, op: str, args: tuple[str, ...],
          out: str) -> None:
    if op in ("XOR", "XNOR") and len(args) > 2:
        acc = args[0]
        for arg in args[1:-1]:
            acc = circuit.add_gate("XOR", (acc, arg))
        circuit.add_gate(op, (acc, args[-1]), name=out)
        return
    circuit.add_gate(op, args, name=out)


def format_bench(circuit: Circuit, comment: str | None = None) -> str:
    """Render a circuit as BENCH text."""
    out = io.StringIO()
    if comment:
        for line in comment.splitlines():
            out.write(f"# {line}\n")
    for net in circuit.inputs:
        out.write(f"INPUT({net})\n")
    for net in circuit.outputs:
        out.write(f"OUTPUT({net})\n")
    for gate in circuit.gates:
        op = "BUFF" if gate.op == "BUF" else gate.op
        args = ", ".join(gate.inputs)
        out.write(f"{gate.output} = {op}({args})\n")
    return out.getvalue()


def read_bench(path: str | PathLike, name: str | None = None) -> Circuit:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_bench(handle.read(),
                           name=name or str(path))


def write_bench(circuit: Circuit, path: str | PathLike,
                comment: str | None = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_bench(circuit, comment=comment))
