"""Random combinational circuits (ISCAS-flavoured workloads).

The paper's c2670/c3540/c5315 are ISCAS-85 netlists; with no access to
the originals we generate random gate-level DAGs of similar flavour
(mixed gate types, reconvergent fanout, redundant structure) and pair
each with its :func:`repro.circuits.rewrite.rewrite_circuit` optimized
version to build equivalence-checking miters.

Generation is seeded and deliberately *redundancy-friendly* — a slice of
gates reuse earlier nets, feed constants, or double-negate — so the
rewriting pass has real work to do and the miter proof is non-trivial.
"""

from __future__ import annotations

import random

from repro.circuits.netlist import Circuit
from repro.core.exceptions import CircuitError

_BINARY_OPS = ("AND", "OR", "XOR", "NAND", "NOR", "XNOR")


def random_circuit(num_inputs: int, num_gates: int,
                   num_outputs: int | None = None,
                   seed: int = 0, redundancy: float = 0.2) -> Circuit:
    """A random combinational DAG.

    ``redundancy`` is the probability that a gate is built in a
    deliberately simplifiable form (constant input, duplicate input,
    double negation) rather than a plain random gate.
    """
    if num_inputs < 2 or num_gates < 1:
        raise CircuitError("need at least 2 inputs and 1 gate")
    rng = random.Random(seed)
    c = Circuit(f"rand_i{num_inputs}_g{num_gates}_s{seed}")
    nets = [c.add_input(f"x{i}") for i in range(num_inputs)]
    zero = c.CONST0()
    one = c.CONST1()

    for _ in range(num_gates):
        roll = rng.random()
        if roll < redundancy / 3:
            # Double negation chain.
            net = c.NOT(c.NOT(rng.choice(nets)))
        elif roll < 2 * redundancy / 3:
            # Constant operand.
            op = rng.choice(("AND", "OR", "XOR"))
            net = c.add_gate(op, (rng.choice(nets),
                                  rng.choice((zero, one))))
        elif roll < redundancy:
            # Duplicate operand.
            operand = rng.choice(nets)
            net = c.add_gate(rng.choice(("AND", "OR")),
                             (operand, operand, rng.choice(nets)))
        elif roll < redundancy + 0.08:
            net = c.MUX(rng.choice(nets), rng.choice(nets),
                        rng.choice(nets))
        else:
            op = rng.choice(_BINARY_OPS)
            net = c.add_gate(op, (rng.choice(nets), rng.choice(nets)))
        nets.append(net)

    if num_outputs is None:
        num_outputs = max(1, num_inputs // 2)
    # Prefer late (deep) nets as outputs so the whole DAG matters.
    candidates = nets[len(nets) // 2:]
    chosen = rng.sample(candidates, min(num_outputs, len(candidates)))
    for index, net in enumerate(chosen):
        c.set_output(c.BUF(net, name=f"y{index}"))
    return c


def random_equivalence_pair(num_inputs: int, num_gates: int,
                            seed: int = 0) -> tuple[Circuit, Circuit]:
    """A random circuit and its rewritten (optimized) version — a ready
    equivalence-checking workload."""
    from repro.circuits.rewrite import rewrite_circuit

    original = random_circuit(num_inputs, num_gates, seed=seed)
    return original, rewrite_circuit(original)
