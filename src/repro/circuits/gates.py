"""Gate primitives for combinational netlists.

The verification-domain CNFs the paper evaluates on (equivalence-checking
miters, BMC unrollings, pipeline-correspondence formulas) are all Tseitin
encodings of gate-level circuits, so the substrate starts here.

Supported operators, with their evaluation semantics:

========  =======  =============================================
op        arity    semantics
========  =======  =============================================
CONST0    0        constant false
CONST1    0        constant true
BUF       1        identity
NOT       1        negation
AND       >= 1     conjunction
OR        >= 1     disjunction
NAND      >= 1     negated conjunction
NOR       >= 1     negated disjunction
XOR       2        parity (binary only; wider XORs are chained)
XNOR      2        negated parity
MUX       3        inputs (sel, if0, if1): if1 when sel else if0
========  =======  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import CircuitError

VARIADIC_OPS = frozenset({"AND", "OR", "NAND", "NOR"})
FIXED_ARITY = {
    "CONST0": 0,
    "CONST1": 0,
    "BUF": 1,
    "NOT": 1,
    "XOR": 2,
    "XNOR": 2,
    "MUX": 3,
}
ALL_OPS = VARIADIC_OPS | frozenset(FIXED_ARITY)


@dataclass(frozen=True)
class Gate:
    """A single gate: ``output = op(inputs)``."""

    op: str
    output: str
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.op not in ALL_OPS:
            raise CircuitError(f"unknown gate op {self.op!r}")
        arity = FIXED_ARITY.get(self.op)
        if arity is not None:
            if len(self.inputs) != arity:
                raise CircuitError(
                    f"{self.op} expects {arity} inputs, "
                    f"got {len(self.inputs)}")
        elif not self.inputs:
            raise CircuitError(f"{self.op} needs at least one input")


def evaluate_gate(op: str, values: list[bool]) -> bool:
    """Evaluate one gate over concrete input values."""
    if op == "CONST0":
        return False
    if op == "CONST1":
        return True
    if op == "BUF":
        return values[0]
    if op == "NOT":
        return not values[0]
    if op == "AND":
        return all(values)
    if op == "OR":
        return any(values)
    if op == "NAND":
        return not all(values)
    if op == "NOR":
        return not any(values)
    if op == "XOR":
        return values[0] != values[1]
    if op == "XNOR":
        return values[0] == values[1]
    if op == "MUX":
        sel, if0, if1 = values
        return if1 if sel else if0
    raise CircuitError(f"unknown gate op {op!r}")
