"""Miter construction for combinational equivalence checking.

The equivalence-checking CNFs of the paper's Table 1/2 (``c2670``,
``c3540``, ``c5315`` [19]) are miters: two implementations over shared
inputs, outputs XORed pairwise and ORed into a single net that is
asserted true.  The CNF is unsatisfiable exactly when the circuits are
equivalent, and the proof of unsatisfiability is what the verification
procedure checks.
"""

from __future__ import annotations

from repro.circuits.netlist import Circuit
from repro.circuits.tseitin import TseitinEncoder
from repro.core.exceptions import CircuitError
from repro.core.formula import CnfFormula


def copy_into(dest: Circuit, src: Circuit, input_map: dict[str, str],
              prefix: str) -> dict[str, str]:
    """Instantiate ``src``'s gates inside ``dest``.

    ``input_map`` maps each input net of ``src`` to an existing net of
    ``dest``; internal nets are renamed with ``prefix``.  Returns the full
    src-net → dest-net mapping.
    """
    mapping = dict(input_map)
    missing = [net for net in src.inputs if net not in mapping]
    if missing:
        raise CircuitError(f"unbound inputs when instantiating: {missing}")
    for gate in src.gates:
        new_inputs = tuple(mapping[net] for net in gate.inputs)
        mapping[gate.output] = dest.add_gate(
            gate.op, new_inputs, name=prefix + gate.output)
    return mapping


def build_miter(left: Circuit, right: Circuit,
                name: str | None = None) -> Circuit:
    """Build the miter of two circuits with identical input names.

    Outputs are paired positionally; the single miter output is true iff
    the implementations disagree on some output for the given inputs.
    """
    if set(left.inputs) != set(right.inputs):
        raise CircuitError(
            "miter requires identical input names; got "
            f"{sorted(set(left.inputs) ^ set(right.inputs))} unmatched")
    if len(left.outputs) != len(right.outputs):
        raise CircuitError(
            f"output count mismatch: {len(left.outputs)} vs "
            f"{len(right.outputs)}")
    if not left.outputs:
        raise CircuitError("miter needs at least one output pair")
    miter = Circuit(name or f"miter({left.name},{right.name})")
    for net in left.inputs:
        miter.add_input(net)
    left_map = copy_into(miter, left, {n: n for n in left.inputs}, "L.")
    right_map = copy_into(miter, right, {n: n for n in right.inputs}, "R.")
    diffs = [
        miter.add_gate("XOR", (left_map[lo], right_map[ro]),
                       name=f"_diff{i}")
        for i, (lo, ro) in enumerate(zip(left.outputs, right.outputs))
    ]
    if len(diffs) == 1:
        out = miter.BUF(diffs[0], name="miter")
    else:
        out = miter.OR(*diffs, name="miter")
    miter.set_output(out)
    return miter


def equivalence_formula(left: Circuit, right: Circuit) -> CnfFormula:
    """CNF that is UNSAT iff the two circuits are equivalent."""
    miter = build_miter(left, right)
    encoder = TseitinEncoder()
    literal = encoder.encode(miter)
    encoder.assert_true(literal["miter"])
    return encoder.formula


def check_equivalence(left: Circuit, right: Circuit):
    """Solve the miter; returns (equivalent, counterexample_or_None).

    The counterexample maps input net names to boolean values on which
    the circuits disagree.
    """
    from repro.solver.cdcl import solve  # local import: avoid cycle

    miter = build_miter(left, right)
    encoder = TseitinEncoder()
    literal = encoder.encode(miter)
    encoder.assert_true(literal["miter"])
    result = solve(encoder.formula, log_proof=False)
    if result.is_unsat:
        return True, None
    counterexample = {
        net: result.model[literal[net]] for net in miter.inputs}
    return False, counterexample
