"""Local logic rewriting — a miniature synthesis pass.

The paper's equivalence-checking instances (c2670/c3540/c5315 [19]) are
miters of a circuit against an independently optimized version of
itself.  This module provides the "optimizer": a set of local,
semantics-preserving rewrite rules applied to a netlist —

* constant folding (``AND(x, 0) → 0``, ``XOR(x, 0) → x``, ...);
* double-negation elimination (``NOT(NOT(x)) → x``);
* De Morgan normalization (``NOT(AND(...)) → NOR-free NAND``, etc.);
* duplicate-input collapsing (``AND(x, x, y) → AND(x, y)``);
* common-subexpression elimination (structural hashing);
* mux simplification (``MUX(s, x, x) → x``, constant selects).

The output circuit computes the same function over the same inputs but
with a (usually very) different structure, so ``original`` vs
``rewrite_circuit(original)`` is a faithful equivalence-checking
workload.  Correctness is enforced by tests (random simulation + SAT
equivalence) rather than assumed.
"""

from __future__ import annotations

from repro.circuits.gates import Gate
from repro.circuits.netlist import Circuit

_NEGATED_OP = {"AND": "NAND", "NAND": "AND", "OR": "NOR", "NOR": "OR",
               "XOR": "XNOR", "XNOR": "XOR", "CONST0": "CONST1",
               "CONST1": "CONST0", "BUF": "NOT", "NOT": "BUF"}


class _Rewriter:
    """One rewriting session over a source circuit."""

    def __init__(self, source: Circuit):
        self.source = source
        self.out = Circuit(f"{source.name}_opt")
        # Source net -> (kind, payload):
        #   ("const", bool)  a known constant
        #   ("net", name)    an output-circuit net
        #   ("neg", name)    the negation of an output-circuit net
        self.value: dict[str, tuple[str, object]] = {}
        # Structural hashing: (op, operand key tuple) -> result entry.
        self.cse: dict[tuple, tuple[str, object]] = {}
        self.folds = 0

    # -- representation helpers ------------------------------------------

    def _literal_key(self, entry: tuple[str, object]):
        """Hashable identity of a (possibly negated) value."""
        return entry

    def _negate(self, entry: tuple[str, object]) -> tuple[str, object]:
        kind, payload = entry
        if kind == "const":
            return ("const", not payload)
        if kind == "net":
            return ("neg", payload)
        return ("net", payload)

    def _materialize(self, entry: tuple[str, object]) -> str:
        """Turn a value entry into an actual net of the output circuit."""
        kind, payload = entry
        if kind == "net":
            return payload  # type: ignore[return-value]
        if kind == "const":
            key = ("const", payload)
            cached = self.cse.get(key)
            if cached is None:
                net = (self.out.CONST1() if payload else self.out.CONST0())
                cached = ("net", net)
                self.cse[key] = cached
            return cached[1]  # type: ignore[return-value]
        # negation: materialize a NOT gate (with CSE)
        key = ("not", payload)
        cached = self.cse.get(key)
        if cached is None:
            cached = ("net", self.out.NOT(payload))  # type: ignore[arg-type]
            self.cse[key] = cached
        return cached[1]  # type: ignore[return-value]

    # -- gate rewriting -----------------------------------------------------

    def rewrite_gate(self, gate: Gate) -> tuple[str, object]:
        entries = [self.value[net] for net in gate.inputs]
        op = gate.op

        if op in ("CONST0", "CONST1"):
            return ("const", op == "CONST1")
        if op == "BUF":
            return entries[0]
        if op == "NOT":
            self.folds += 1  # double negation / constant push
            return self._negate(entries[0])
        if op in ("AND", "NAND", "OR", "NOR"):
            return self._rewrite_and_or(op, entries)
        if op in ("XOR", "XNOR"):
            return self._rewrite_xor(op, entries)
        if op == "MUX":
            return self._rewrite_mux(entries)
        raise AssertionError(f"unhandled op {op}")

    def _rewrite_and_or(self, op: str,
                        entries: list[tuple[str, object]]):
        negate_out = op in ("NAND", "NOR")
        is_and = op in ("AND", "NAND")
        absorbing = ("const", not is_and)   # 0 for AND, 1 for OR
        identity = ("const", is_and)

        operands: list[tuple[str, object]] = []
        seen_keys = set()
        for entry in entries:
            if entry == absorbing:
                self.folds += 1
                result = absorbing
                return self._negate(result) if negate_out else result
            if entry == identity:
                self.folds += 1
                continue
            key = self._literal_key(entry)
            if key in seen_keys:
                self.folds += 1
                continue
            # x AND NOT x -> 0 ; x OR NOT x -> 1
            if self._literal_key(self._negate(entry)) in seen_keys:
                self.folds += 1
                result = absorbing
                return self._negate(result) if negate_out else result
            seen_keys.add(key)
            operands.append(entry)

        if not operands:
            result = identity
            return self._negate(result) if negate_out else result
        if len(operands) == 1:
            result = operands[0]
            return self._negate(result) if negate_out else result

        base_op = "AND" if is_and else "OR"
        nets = sorted(self._materialize(e) for e in operands)
        key = (base_op, tuple(nets))
        cached = self.cse.get(key)
        if cached is None:
            cached = ("net", self.out.add_gate(base_op, nets))
            self.cse[key] = cached
        else:
            self.folds += 1
        return self._negate(cached) if negate_out else cached

    def _rewrite_xor(self, op: str, entries: list[tuple[str, object]]):
        a, b = entries
        parity = op == "XNOR"   # accumulated output inversion
        # Pull constants and negations out of the XOR.
        operands = []
        for entry in entries:
            kind, payload = entry
            if kind == "const":
                parity ^= bool(payload)
                self.folds += 1
            elif kind == "neg":
                parity ^= True
                operands.append(("net", payload))
                self.folds += 1
            else:
                operands.append(entry)
        del a, b
        if not operands:
            return ("const", parity)
        if len(operands) == 1:
            return self._negate(operands[0]) if parity else operands[0]
        first, second = operands
        if first == second:
            self.folds += 1
            return ("const", parity)
        nets = sorted((first[1], second[1]))  # type: ignore[arg-type]
        key = ("XOR", tuple(nets))
        cached = self.cse.get(key)
        if cached is None:
            cached = ("net", self.out.add_gate("XOR", nets))
            self.cse[key] = cached
        else:
            self.folds += 1
        return self._negate(cached) if parity else cached

    def _rewrite_mux(self, entries: list[tuple[str, object]]):
        sel, if0, if1 = entries
        if sel[0] == "const":
            self.folds += 1
            return if1 if sel[1] else if0
        if if0 == if1:
            self.folds += 1
            return if0
        # MUX(s, 0, 1) = s ; MUX(s, 1, 0) = NOT s
        if if0 == ("const", False) and if1 == ("const", True):
            self.folds += 1
            return sel
        if if0 == ("const", True) and if1 == ("const", False):
            self.folds += 1
            return self._negate(sel)
        # MUX(s, x, NOT x) = s XOR x ... keep it simple: XNOR/XOR forms
        if self._negate(if0) == if1:
            self.folds += 1
            return self._rewrite_xor("XOR", [sel, if0])
        sel_net = self._materialize(sel)
        if0_net = self._materialize(if0)
        if1_net = self._materialize(if1)
        key = ("MUX", sel_net, if0_net, if1_net)
        cached = self.cse.get(key)
        if cached is None:
            cached = ("net", self.out.MUX(sel_net, if0_net, if1_net))
            self.cse[key] = cached
        else:
            self.folds += 1
        return cached

    # -- driver ----------------------------------------------------------------

    def run(self) -> Circuit:
        for net in self.source.inputs:
            self.out.add_input(net)
            self.value[net] = ("net", net)
        for gate in self.source.gates:
            self.value[gate.output] = self.rewrite_gate(gate)
        for index, net in enumerate(self.source.outputs):
            materialized = self._materialize(self.value[net])
            self.out.set_output(
                self.out.BUF(materialized, name=f"_out{index}_{net}"))
        return self.out


def rewrite_circuit(circuit: Circuit) -> Circuit:
    """Return an optimized, functionally equivalent copy of ``circuit``.

    Output nets are renamed (``_out<i>_<name>``) but keep the original
    order, so the result miters directly against the original.
    """
    return _Rewriter(circuit).run()


def rewrite_statistics(circuit: Circuit) -> dict[str, int]:
    """Gate counts before/after rewriting plus the fold count."""
    rewriter = _Rewriter(circuit)
    optimized = rewriter.run()
    return {
        "gates_before": circuit.num_gates,
        "gates_after": optimized.num_gates,
        "folds": rewriter.folds,
    }
