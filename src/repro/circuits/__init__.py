"""Gate-level circuit substrate: netlists, Tseitin encoding, miters."""

from repro.circuits.gates import Gate, evaluate_gate
from repro.circuits.library import (
    alu,
    barrel_rotator,
    carry_select_adder,
    decoded_rotator,
    equality_and_of_xnor,
    equality_nor_of_xor,
    mux_tree_selector,
    onehot_selector,
    parity_chain,
    parity_tree,
    ripple_carry_adder,
    shift_add_multiplier,
    wallace_multiplier,
)
from repro.circuits.miter import (
    build_miter,
    check_equivalence,
    copy_into,
    equivalence_formula,
)
from repro.circuits.netlist import Circuit, bus
from repro.circuits.random_circuits import (
    random_circuit,
    random_equivalence_pair,
)
from repro.circuits.rewrite import rewrite_circuit, rewrite_statistics
from repro.circuits.tseitin import TseitinEncoder, encode_circuit

__all__ = [
    "Circuit",
    "Gate",
    "bus",
    "evaluate_gate",
    "TseitinEncoder",
    "encode_circuit",
    "build_miter",
    "copy_into",
    "equivalence_formula",
    "check_equivalence",
    "ripple_carry_adder",
    "carry_select_adder",
    "shift_add_multiplier",
    "wallace_multiplier",
    "barrel_rotator",
    "decoded_rotator",
    "parity_chain",
    "parity_tree",
    "equality_and_of_xnor",
    "equality_nor_of_xor",
    "alu",
    "mux_tree_selector",
    "onehot_selector",
    "rewrite_circuit",
    "rewrite_statistics",
    "random_circuit",
    "random_equivalence_pair",
]
