"""Combinational netlists: named nets, gates, simulation.

A :class:`Circuit` is a DAG of gates over string-named nets.  Builder
helpers (``AND``, ``XOR``, ``MUX``, ...) return the output net name so
circuits compose functionally::

    c = Circuit("half_adder")
    a, b = c.add_input("a"), c.add_input("b")
    c.set_output(c.XOR(a, b, name="sum"))
    c.set_output(c.AND(a, b, name="carry"))

Wide XORs are chained into binary gates at build time, so the Tseitin
encoder only ever sees the fixed-arity primitives of
:mod:`repro.circuits.gates`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.circuits.gates import Gate, evaluate_gate
from repro.core.exceptions import CircuitError


def bus(name: str, width: int) -> list[str]:
    """Net names of a ``width``-bit bus: ``name[0] .. name[width-1]``
    (index 0 is the least significant bit by library convention)."""
    return [f"{name}[{i}]" for i in range(width)]


class Circuit:
    """A combinational gate-level netlist."""

    def __init__(self, name: str = ""):
        self.name = name
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.gates: list[Gate] = []
        self._driver: dict[str, Gate] = {}
        self._input_set: set[str] = set()
        self._auto_index = 0

    # -- construction ---------------------------------------------------

    def add_input(self, net: str) -> str:
        if net in self._input_set or net in self._driver:
            raise CircuitError(f"net {net!r} is already defined")
        self.inputs.append(net)
        self._input_set.add(net)
        return net

    def add_inputs(self, nets: Iterable[str]) -> list[str]:
        return [self.add_input(net) for net in nets]

    def add_input_bus(self, name: str, width: int) -> list[str]:
        return self.add_inputs(bus(name, width))

    def set_output(self, net: str) -> str:
        if net not in self._input_set and net not in self._driver:
            raise CircuitError(f"cannot output undefined net {net!r}")
        self.outputs.append(net)
        return net

    def set_outputs(self, nets: Iterable[str]) -> list[str]:
        return [self.set_output(net) for net in nets]

    def _fresh_name(self, op: str) -> str:
        self._auto_index += 1
        return f"_{op.lower()}{self._auto_index}"

    def add_gate(self, op: str, inputs: Sequence[str],
                 name: str | None = None) -> str:
        """Add one gate; returns the output net name."""
        for net in inputs:
            if net not in self._input_set and net not in self._driver:
                raise CircuitError(
                    f"gate input {net!r} is undefined (define nets before "
                    "use; netlists are built in topological order)")
        output = name if name is not None else self._fresh_name(op)
        if output in self._input_set or output in self._driver:
            raise CircuitError(f"net {output!r} is already driven")
        gate = Gate(op, output, tuple(inputs))
        self.gates.append(gate)
        self._driver[output] = gate
        return output

    # Functional helpers.  Upper-case to mirror netlist notation.

    def CONST0(self, name: str | None = None) -> str:
        return self.add_gate("CONST0", (), name)

    def CONST1(self, name: str | None = None) -> str:
        return self.add_gate("CONST1", (), name)

    def BUF(self, a: str, name: str | None = None) -> str:
        return self.add_gate("BUF", (a,), name)

    def NOT(self, a: str, name: str | None = None) -> str:
        return self.add_gate("NOT", (a,), name)

    def AND(self, *inputs: str, name: str | None = None) -> str:
        return self.add_gate("AND", inputs, name)

    def OR(self, *inputs: str, name: str | None = None) -> str:
        return self.add_gate("OR", inputs, name)

    def NAND(self, *inputs: str, name: str | None = None) -> str:
        return self.add_gate("NAND", inputs, name)

    def NOR(self, *inputs: str, name: str | None = None) -> str:
        return self.add_gate("NOR", inputs, name)

    def XOR(self, *inputs: str, name: str | None = None) -> str:
        """Parity of any number of inputs (chained into binary gates)."""
        if len(inputs) < 2:
            raise CircuitError("XOR needs at least two inputs")
        acc = inputs[0]
        for i, net in enumerate(inputs[1:]):
            last = i == len(inputs) - 2
            acc = self.add_gate("XOR", (acc, net),
                                name if (name and last) else None)
        return acc

    def XNOR(self, a: str, b: str, name: str | None = None) -> str:
        return self.add_gate("XNOR", (a, b), name)

    def MUX(self, sel: str, if0: str, if1: str,
            name: str | None = None) -> str:
        """``if1`` when ``sel`` is true, else ``if0``."""
        return self.add_gate("MUX", (sel, if0, if1), name)

    # -- analysis ---------------------------------------------------------

    @property
    def nets(self) -> list[str]:
        """All nets in definition order (inputs, then gate outputs)."""
        return self.inputs + [gate.output for gate in self.gates]

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def driver_of(self, net: str) -> Gate | None:
        return self._driver.get(net)

    def simulate(self, assignment: Mapping[str, bool]) -> dict[str, bool]:
        """Evaluate every net given values for all inputs.

        Gates were necessarily added in topological order (inputs must be
        defined before use), so a single forward pass suffices.
        """
        values: dict[str, bool] = {}
        for net in self.inputs:
            if net not in assignment:
                raise CircuitError(f"missing value for input {net!r}")
            values[net] = bool(assignment[net])
        for gate in self.gates:
            values[gate.output] = evaluate_gate(
                gate.op, [values[net] for net in gate.inputs])
        return values

    def output_values(self,
                      assignment: Mapping[str, bool]) -> dict[str, bool]:
        values = self.simulate(assignment)
        return {net: values[net] for net in self.outputs}

    def __repr__(self) -> str:
        return (f"Circuit({self.name!r}, inputs={len(self.inputs)}, "
                f"gates={len(self.gates)}, outputs={len(self.outputs)})")
