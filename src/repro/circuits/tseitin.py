"""Tseitin encoding of circuits into CNF.

The :class:`TseitinEncoder` owns a growing CNF formula and a variable
pool; circuits can be *instantiated* into it repeatedly with different
input bindings (that is how the BMC unroller stamps one transition
relation per time frame, and how a miter stamps two implementations over
shared inputs).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.circuits.netlist import Circuit
from repro.core.exceptions import CircuitError
from repro.core.formula import CnfFormula


class TseitinEncoder:
    """Incremental Tseitin encoder over a shared variable pool."""

    def __init__(self) -> None:
        self.formula = CnfFormula()
        self._next_var = 0
        self.names: dict[int, str] = {}
        self._true_var: int | None = None

    def new_var(self, name: str | None = None) -> int:
        """Allocate a fresh variable (1-based)."""
        self._next_var += 1
        if name is not None:
            self.names[self._next_var] = name
        self.formula.declare_vars(self._next_var)
        return self._next_var

    def new_bus(self, name: str, width: int) -> list[int]:
        return [self.new_var(f"{name}[{i}]") for i in range(width)]

    def add_clause(self, lits: Iterable[int]) -> None:
        self.formula.add_clause(lits)

    def assert_true(self, var_or_lit: int) -> None:
        """Constrain a literal to 1 (unit clause)."""
        self.add_clause([var_or_lit])

    def assert_false(self, var_or_lit: int) -> None:
        self.add_clause([-var_or_lit])

    def true_var(self) -> int:
        """A variable constrained to 1 (allocated once, on demand)."""
        if self._true_var is None:
            self._true_var = self.new_var("__true__")
            self.assert_true(self._true_var)
        return self._true_var

    def constant(self, value: bool) -> int:
        """A literal that is constantly ``value``."""
        var = self.true_var()
        return var if value else -var

    def encode(self, circuit: Circuit,
               binding: Mapping[str, int] | None = None,
               prefix: str = "") -> dict[str, int]:
        """Instantiate a circuit; returns the net → literal map.

        ``binding`` supplies literals for (some) input nets; unbound
        inputs get fresh variables.  Every gate output gets a fresh
        variable (named ``prefix + net`` for debugging) plus the gate's
        consistency clauses.
        """
        literal: dict[str, int] = {}
        for net in circuit.inputs:
            if binding is not None and net in binding:
                literal[net] = binding[net]
            else:
                literal[net] = self.new_var(prefix + net)
        for gate in circuit.gates:
            ins = [literal[net] for net in gate.inputs]
            literal[gate.output] = self._encode_gate(
                gate.op, ins, prefix + gate.output)
        return literal

    def _encode_gate(self, op: str, ins: list[int], name: str) -> int:
        if op == "CONST0":
            return self.constant(False)
        if op == "CONST1":
            return self.constant(True)
        if op == "BUF":
            return ins[0]
        if op == "NOT":
            return -ins[0]
        out = self.new_var(name)
        if op in ("AND", "NAND"):
            target = out if op == "AND" else -out
            for lit in ins:
                self.add_clause([-target, lit])
            self.add_clause([target] + [-lit for lit in ins])
        elif op in ("OR", "NOR"):
            target = out if op == "OR" else -out
            for lit in ins:
                self.add_clause([target, -lit])
            self.add_clause([-target] + list(ins))
        elif op in ("XOR", "XNOR"):
            a, b = ins
            target = out if op == "XOR" else -out
            self.add_clause([-target, a, b])
            self.add_clause([-target, -a, -b])
            self.add_clause([target, -a, b])
            self.add_clause([target, a, -b])
        elif op == "MUX":
            sel, if0, if1 = ins
            self.add_clause([-sel, -if1, out])
            self.add_clause([-sel, if1, -out])
            self.add_clause([sel, -if0, out])
            self.add_clause([sel, if0, -out])
        else:
            raise CircuitError(f"cannot encode gate op {op!r}")
        return out


def encode_circuit(circuit: Circuit) -> tuple[CnfFormula, dict[str, int]]:
    """One-shot encoding of a single circuit with fresh inputs."""
    encoder = TseitinEncoder()
    literal = encoder.encode(circuit)
    return encoder.formula, literal
