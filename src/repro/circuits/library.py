"""A library of arithmetic and datapath circuits.

Each function returns a :class:`Circuit`; functions come in pairs of
*structurally different but functionally equivalent* implementations
(ripple-carry vs carry-select adders, shift-add vs Wallace-tree
multipliers, log-shifter vs decoder-based rotators, ...), because the
paper's equivalence-checking instances are miters of exactly such pairs.

Conventions: buses are little-endian (``a[0]`` is the LSB); adders expose
a ``cin`` input and a ``cout`` output; every circuit over the same
interface uses the same input net names, so any pair can be mitered
directly.
"""

from __future__ import annotations

from collections import defaultdict

from repro.circuits.netlist import Circuit, bus
from repro.core.exceptions import CircuitError


def _half_adder(c: Circuit, a: str, b: str) -> tuple[str, str]:
    return c.add_gate("XOR", (a, b)), c.AND(a, b)


def _full_adder(c: Circuit, a: str, b: str, cin: str) -> tuple[str, str]:
    ab = c.add_gate("XOR", (a, b))
    total = c.add_gate("XOR", (ab, cin))
    carry = c.OR(c.AND(a, b), c.AND(ab, cin))
    return total, carry


def ripple_carry_adder(width: int, name: str = "rca") -> Circuit:
    """Classic ripple-carry adder: a + b + cin -> s, cout."""
    c = Circuit(f"{name}{width}")
    a = c.add_input_bus("a", width)
    b = c.add_input_bus("b", width)
    carry = c.add_input("cin")
    for i in range(width):
        total, carry = _full_adder(c, a[i], b[i], carry)
        c.set_output(c.BUF(total, name=f"s[{i}]"))
    c.set_output(c.BUF(carry, name="cout"))
    return c


def carry_select_adder(width: int, block: int = 4,
                       name: str = "csa") -> Circuit:
    """Carry-select adder: per block, both carry assumptions are computed
    and the incoming carry selects — same function as the ripple adder,
    very different structure."""
    if block < 1:
        raise CircuitError("block size must be >= 1")
    c = Circuit(f"{name}{width}")
    a = c.add_input_bus("a", width)
    b = c.add_input_bus("b", width)
    carry = c.add_input("cin")
    zero = c.CONST0()
    one = c.CONST1()
    position = 0
    while position < width:
        size = min(block, width - position)
        sums = {}
        carries = {}
        for assumed, const in ((0, zero), (1, one)):
            chain = const
            block_sums = []
            for i in range(position, position + size):
                total, chain = _full_adder(c, a[i], b[i], chain)
                block_sums.append(total)
            sums[assumed] = block_sums
            carries[assumed] = chain
        for offset in range(size):
            selected = c.MUX(carry, sums[0][offset], sums[1][offset])
            c.set_output(c.BUF(selected, name=f"s[{position + offset}]"))
        carry = c.MUX(carry, carries[0], carries[1])
        position += size
    c.set_output(c.BUF(carry, name="cout"))
    return c


def _ripple_add_nets(c: Circuit, xs: list[str], ys: list[str],
                     cin: str) -> list[str]:
    """Internal ripple addition over existing nets; returns sum bits plus
    the final carry as the extra most-significant bit."""
    carry = cin
    out = []
    for x, y in zip(xs, ys):
        total, carry = _full_adder(c, x, y, carry)
        out.append(total)
    out.append(carry)
    return out


def shift_add_multiplier(width: int, name: str = "sam") -> Circuit:
    """Multiplier as a chain of ripple-carry additions of shifted partial
    products — the "long multiplication" structure."""
    c = Circuit(f"{name}{width}")
    a = c.add_input_bus("a", width)
    b = c.add_input_bus("b", width)
    zero = c.CONST0()
    # accumulator of 2*width bits, initialized with partial product row 0
    acc = [c.AND(a[j], b[0]) for j in range(width)]
    acc += [zero] * width
    for i in range(1, width):
        row = [zero] * i + [c.AND(a[j], b[i]) for j in range(width)]
        row += [zero] * (2 * width - len(row))
        acc = _ripple_add_nets(c, acc, row, zero)[:2 * width]
    for j in range(2 * width):
        c.set_output(c.BUF(acc[j], name=f"p[{j}]"))
    return c


def wallace_multiplier(width: int, name: str = "wal") -> Circuit:
    """Multiplier with carry-save (Wallace) reduction and a final ripple
    stage — functionally identical to :func:`shift_add_multiplier`."""
    c = Circuit(f"{name}{width}")
    a = c.add_input_bus("a", width)
    b = c.add_input_bus("b", width)
    zero = c.CONST0()
    columns: dict[int, list[str]] = defaultdict(list)
    for i in range(width):
        for j in range(width):
            columns[i + j].append(c.AND(a[i], b[j]))
    while any(len(bits) > 2 for bits in columns.values()):
        reduced: dict[int, list[str]] = defaultdict(list)
        for col in sorted(columns):
            bits = columns[col]
            index = 0
            while len(bits) - index >= 3:
                total, carry = _full_adder(c, bits[index], bits[index + 1],
                                           bits[index + 2])
                reduced[col].append(total)
                reduced[col + 1].append(carry)
                index += 3
            if len(bits) - index == 2:
                total, carry = _half_adder(c, bits[index], bits[index + 1])
                reduced[col].append(total)
                reduced[col + 1].append(carry)
            elif len(bits) - index == 1:
                reduced[col].append(bits[index])
        columns = reduced
    row_x = []
    row_y = []
    for col in range(2 * width):
        bits = columns.get(col, [])
        row_x.append(bits[0] if bits else zero)
        row_y.append(bits[1] if len(bits) > 1 else zero)
    total = _ripple_add_nets(c, row_x, row_y, zero)[:2 * width]
    for j in range(2 * width):
        c.set_output(c.BUF(total[j], name=f"p[{j}]"))
    return c


def _check_power_of_two(width: int) -> int:
    bits = (width - 1).bit_length()
    if width <= 0 or 1 << bits != width:
        raise CircuitError(f"rotator width must be a power of two: {width}")
    return bits


def barrel_rotator(width: int, name: str = "rotl") -> Circuit:
    """Left-rotator as a log-shifter: one mux layer per shift bit."""
    shift_bits = _check_power_of_two(width)
    c = Circuit(f"{name}{width}")
    data = c.add_input_bus("d", width)
    shift = c.add_input_bus("sh", shift_bits)
    current = data
    for stage in range(shift_bits):
        amount = 1 << stage
        current = [
            c.MUX(shift[stage], current[i],
                  current[(i - amount) % width])
            for i in range(width)
        ]
    for i in range(width):
        c.set_output(c.BUF(current[i], name=f"q[{i}]"))
    return c


def decoded_rotator(width: int, name: str = "rotd") -> Circuit:
    """Left-rotator via a one-hot shift decoder and per-output OR-AND
    selection — same function as :func:`barrel_rotator`."""
    shift_bits = _check_power_of_two(width)
    c = Circuit(f"{name}{width}")
    data = c.add_input_bus("d", width)
    shift = c.add_input_bus("sh", shift_bits)
    inverted = [c.NOT(s) for s in shift]
    one_hot = []
    for k in range(width):
        terms = [shift[bit] if (k >> bit) & 1 else inverted[bit]
                 for bit in range(shift_bits)]
        one_hot.append(c.AND(*terms) if len(terms) > 1 else terms[0])
    for i in range(width):
        selected = [c.AND(one_hot[k], data[(i - k) % width])
                    for k in range(width)]
        c.set_output(c.OR(*selected, name=f"q[{i}]"))
    return c


def parity_chain(width: int, name: str = "parc") -> Circuit:
    """Parity as a linear XOR chain."""
    if width < 2:
        raise CircuitError("parity needs at least two inputs")
    c = Circuit(f"{name}{width}")
    xs = c.add_input_bus("x", width)
    acc = xs[0]
    for x in xs[1:]:
        acc = c.add_gate("XOR", (acc, x))
    c.set_output(c.BUF(acc, name="p"))
    return c


def parity_tree(width: int, name: str = "part") -> Circuit:
    """Parity as a balanced XOR tree."""
    if width < 2:
        raise CircuitError("parity needs at least two inputs")
    c = Circuit(f"{name}{width}")
    layer = c.add_input_bus("x", width)
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(c.add_gate("XOR", (layer[i], layer[i + 1])))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    c.set_output(c.BUF(layer[0], name="p"))
    return c


def equality_and_of_xnor(width: int, name: str = "eqa") -> Circuit:
    """Bus equality as AND of per-bit XNORs."""
    c = Circuit(f"{name}{width}")
    a = c.add_input_bus("a", width)
    b = c.add_input_bus("b", width)
    bits = [c.XNOR(a[i], b[i]) for i in range(width)]
    c.set_output(c.AND(*bits, name="eq") if width > 1
                 else c.BUF(bits[0], name="eq"))
    return c


def equality_nor_of_xor(width: int, name: str = "eqn") -> Circuit:
    """Bus equality as NOR of per-bit XORs (same function)."""
    c = Circuit(f"{name}{width}")
    a = c.add_input_bus("a", width)
    b = c.add_input_bus("b", width)
    bits = [c.add_gate("XOR", (a[i], b[i])) for i in range(width)]
    c.set_output(c.NOR(*bits, name="eq") if width > 1
                 else c.NOT(bits[0], name="eq"))
    return c


_ALU_OPS = ("ADD", "AND", "OR", "XOR")


def alu(width: int, adder: str = "ripple", name: str = "alu") -> Circuit:
    """A small ALU: op bits select ADD / AND / OR / XOR of two buses.

    ``adder`` chooses the internal adder structure (``"ripple"`` or
    ``"select"``) — two ALUs with different adders are equivalent and
    make natural equivalence-checking instances.
    """
    c = Circuit(f"{name}{width}_{adder}")
    a = c.add_input_bus("a", width)
    b = c.add_input_bus("b", width)
    op = c.add_input_bus("op", 2)
    zero = c.CONST0()

    if adder == "ripple":
        carry = zero
        add_bits = []
        for i in range(width):
            total, carry = _full_adder(c, a[i], b[i], carry)
            add_bits.append(total)
    elif adder == "select":
        one = c.CONST1()
        add_bits = []
        carry = zero
        block = max(2, width // 2)
        position = 0
        while position < width:
            size = min(block, width - position)
            variants = {}
            outs = {}
            for assumed, const in ((0, zero), (1, one)):
                chain = const
                sums = []
                for i in range(position, position + size):
                    total, chain = _full_adder(c, a[i], b[i], chain)
                    sums.append(total)
                variants[assumed] = chain
                outs[assumed] = sums
            for offset in range(size):
                add_bits.append(
                    c.MUX(carry, outs[0][offset], outs[1][offset]))
            carry = c.MUX(carry, variants[0], variants[1])
            position += size
    else:
        raise CircuitError(f"unknown adder kind {adder!r}")

    for i in range(width):
        and_bit = c.AND(a[i], b[i])
        or_bit = c.OR(a[i], b[i])
        xor_bit = c.add_gate("XOR", (a[i], b[i]))
        low = c.MUX(op[0], add_bits[i], and_bit)   # op=00 ADD, 01 AND
        high = c.MUX(op[0], or_bit, xor_bit)       # op=10 OR,  11 XOR
        c.set_output(c.MUX(op[1], low, high, name=f"y[{i}]"))
    return c


def mux_tree_selector(width: int, name: str = "sel") -> Circuit:
    """``width``-way one-bit selector via a balanced mux tree
    (``width`` must be a power of two); inputs ``d[*]``, ``sh[*]``."""
    select_bits = _check_power_of_two(width)
    c = Circuit(f"{name}{width}")
    data = c.add_input_bus("d", width)
    select = c.add_input_bus("sh", select_bits)
    layer = data
    for bit in range(select_bits):
        layer = [c.MUX(select[bit], layer[2 * i], layer[2 * i + 1])
                 for i in range(len(layer) // 2)]
    c.set_output(c.BUF(layer[0], name="q"))
    return c


def onehot_selector(width: int, name: str = "selo") -> Circuit:
    """``width``-way one-bit selector via decode-and-OR — equivalent to
    :func:`mux_tree_selector`."""
    select_bits = _check_power_of_two(width)
    c = Circuit(f"{name}{width}")
    data = c.add_input_bus("d", width)
    select = c.add_input_bus("sh", select_bits)
    inverted = [c.NOT(s) for s in select]
    terms = []
    for k in range(width):
        cond = [select[bit] if (k >> bit) & 1 else inverted[bit]
                for bit in range(select_bits)]
        hot = c.AND(*cond) if len(cond) > 1 else cond[0]
        terms.append(c.AND(hot, data[k]))
    c.set_output(c.OR(*terms, name="q"))
    return c
