"""Deletion-heavy proof families for the streaming verifier.

The benchmark registry's instances exercise RUP *checking*; the
streaming driver needs traces that exercise *eviction* — proofs whose
total clause volume dwarfs the live window at every point.  The
implication chain is the minimal such family:

    formula:  (x1), (¬x_i ∨ x_{i+1}) for i < n, (¬x_n)

The refutation derives the unit ``(x_{i+1})`` from ``(x_i)`` and the
``i``-th implication, then deletes the implication and the unit that
fell out of the window — so with window ``w`` the live proof-added set
never exceeds ``w + 1`` clauses while the trace carries ``n``
additions and ``~2n`` deletions.  Choosing ``n = factor * (w + 1)``
gives a proof whose addition volume is ``factor``× any budget that
admits the window — the shape behind the ROADMAP's "verify a proof
10x larger than the configured memory cap" metric.

:func:`write_deletion_chain_drup` streams the trace to disk line by
line, so generating a larger-than-RAM proof never materializes it —
the generator honors the same discipline the checker does.
"""

from __future__ import annotations

from os import PathLike

from repro.core.formula import CnfFormula
from repro.proofs.drup import ADD, DELETE, DrupEvent, DrupProof


def _require(n_vars: int, window: int) -> None:
    if n_vars < 2:
        raise ValueError(f"need n_vars >= 2, got {n_vars}")
    if window < 1:
        raise ValueError(f"need window >= 1, got {window}")


def deletion_chain_formula(n_vars: int) -> CnfFormula:
    """The unit-implication-chain UNSAT formula over ``n_vars``."""
    _require(n_vars, 1)
    formula = CnfFormula(num_vars=n_vars)
    formula.add_clause([1])
    for i in range(1, n_vars):
        formula.add_clause([-i, i + 1])
    formula.add_clause([-n_vars])
    return formula


def iter_deletion_chain_events(n_vars: int, window: int = 1):
    """Yield the chain refutation's DRUP events, one at a time.

    After deriving ``(x_{i+1})`` the consumed implication clause is
    deleted immediately and the unit ``window`` steps behind is
    deleted one step later — the live proof-added set is at most
    ``window + 1`` clauses at any instant.
    """
    _require(n_vars, window)
    for i in range(1, n_vars):
        yield DrupEvent(ADD, (i + 1,))
        yield DrupEvent(DELETE, (-i, i + 1))
        trailing = i + 1 - window
        if trailing >= 1:
            yield DrupEvent(DELETE, (trailing,))
    yield DrupEvent(ADD, ())


def deletion_chain(n_vars: int, window: int = 1,
                   ) -> tuple[CnfFormula, DrupProof]:
    """Materialized formula + trace (small instances, tests)."""
    return (deletion_chain_formula(n_vars),
            DrupProof(list(iter_deletion_chain_events(n_vars, window))))


def write_deletion_chain_drup(path: str | PathLike, n_vars: int,
                              window: int = 1) -> dict:
    """Stream the chain trace to ``path`` without materializing it.

    Returns summary counts (``additions``, ``deletions``,
    ``peak_live_additions``) for benchmark records and assertions.
    """
    _require(n_vars, window)
    additions = 0
    deletions = 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"c deletion chain n={n_vars} window={window}\n")
        for event in iter_deletion_chain_events(n_vars, window):
            body = " ".join(map(str, event.literals))
            prefix = "d " if event.kind == DELETE else ""
            handle.write(f"{prefix}{body} 0\n" if event.literals
                         else f"{prefix}0\n")
            if event.kind == ADD:
                additions += 1
            else:
                deletions += 1
    return {"additions": additions, "deletions": deletions,
            "peak_live_additions": min(window + 1, n_vars - 1)}
