"""The named benchmark instances of the paper's Tables 1-3, scaled.

Every instance is generated from a substrate in this repository (pipeline
correspondence, BMC model, or equivalence miter) — the same *kind* of
formula the paper used, at parameters a pure-Python solver completes in
seconds (the originals are 10^5-10^6-clause industrial CNFs; see
DESIGN.md for the substitution rationale).

``paper_analog`` records which original instance each one stands in for.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.benchgen.php import pigeonhole
from repro.benchgen.xor_chains import parity_contradiction
from repro.bmc.models import (
    arbiter_instance,
    barrel_instance,
    fifo_instance,
    longmult_instance,
    stack_instance,
)
from repro.circuits.library import (
    alu,
    barrel_rotator,
    carry_select_adder,
    decoded_rotator,
    ripple_carry_adder,
    shift_add_multiplier,
    wallace_multiplier,
)
from repro.circuits.miter import equivalence_formula
from repro.core.formula import CnfFormula
from repro.pipelines.correctness import pipe_instance, vliw_instance
from repro.pipelines.memory import dlx_instance as _dlx


@dataclass(frozen=True)
class InstanceSpec:
    """A named UNSAT benchmark instance."""

    name: str
    family: str
    paper_analog: str
    description: str
    builder: Callable[[], CnfFormula]

    def build(self) -> CnfFormula:
        return self.builder()


def _spec(name: str, family: str, paper_analog: str, description: str,
          builder: Callable[[], CnfFormula]) -> InstanceSpec:
    return InstanceSpec(name, family, paper_analog, description, builder)


INSTANCES: dict[str, InstanceSpec] = {
    spec.name: spec for spec in [
        # -- pipelined microprocessor verification (Velev family) --------
        _spec("pipe_2", "pipe", "5pipe",
              "2-stage pipeline vs ISA, 4 instrs, 2 regs x 2 bits",
              lambda: pipe_instance(2, 4, num_regs=2, width=2)),
        _spec("pipe_3", "pipe", "5pipe_1",
              "3-stage pipeline vs ISA, 4 instrs, 2 regs x 2 bits",
              lambda: pipe_instance(3, 4, num_regs=2, width=2)),
        _spec("pipe_4", "pipe", "6pipe_5",
              "4-stage pipeline vs ISA, 5 instrs, 2 regs x 2 bits",
              lambda: pipe_instance(4, 5, num_regs=2, width=2)),
        _spec("pipe_5", "pipe", "7pipe",
              "5-stage pipeline vs ISA, 6 instrs, 2 regs x 2 bits",
              lambda: pipe_instance(5, 6, num_regs=2, width=2)),
        _spec("vliw", "pipe", "vliw",
              "2-issue VLIW pipeline vs ISA, 4 instrs",
              lambda: vliw_instance(2, 4, num_regs=2, width=2)),
        _spec("dlx_2", "pipe", "8pipe_6",
              "2-stage load-store pipeline vs ISA, 3 instrs, memory "
              "aliasing",
              lambda: _dlx(2, 3, width=1)),
        _spec("dlx_3", "pipe", "9pipe",
              "3-stage load-store pipeline vs ISA, 4 instrs, memory "
              "aliasing",
              lambda: _dlx(3, 4, width=1)),
        # -- PicoJava-style control property checks ----------------------
        _spec("stack8_8", "stack", "exmp72",
              "stack pointer control, depth 8, bound 8",
              lambda: stack_instance(8, 8)),
        _spec("stack8_12", "stack", "exmp73",
              "stack pointer control, depth 8, bound 12",
              lambda: stack_instance(8, 12)),
        _spec("stack12_10", "stack", "exmp74",
              "stack pointer control, depth 12, bound 10",
              lambda: stack_instance(12, 10)),
        _spec("stack16_10", "stack", "exmp75",
              "stack pointer control, depth 16, bound 10",
              lambda: stack_instance(16, 10)),
        # -- bounded model checking (barrel / longmult) ------------------
        _spec("barrel5", "barrel", "barrel7",
              "input-controlled barrel rotator, 5 regs, bound 7",
              lambda: barrel_instance(5, 7)),
        _spec("barrel6", "barrel", "barrel8",
              "input-controlled barrel rotator, 6 regs, bound 8",
              lambda: barrel_instance(6, 8)),
        _spec("barrel7", "barrel", "barrel9",
              "input-controlled barrel rotator, 7 regs, bound 9",
              lambda: barrel_instance(7, 9)),
        _spec("longmult_4", "longmult", "longmult12",
              "sequential vs Wallace multiplier, width 6, bit 4",
              lambda: longmult_instance(6, 4)),
        _spec("longmult_6", "longmult", "longmult13",
              "sequential vs Wallace multiplier, width 6, bit 6",
              lambda: longmult_instance(6, 6)),
        _spec("longmult_8", "longmult", "longmult14",
              "sequential vs Wallace multiplier, width 6, bit 8",
              lambda: longmult_instance(6, 8)),
        _spec("longmult_10", "longmult", "longmult15",
              "sequential vs Wallace multiplier, width 6, bit 10",
              lambda: longmult_instance(6, 10)),
        # -- combinational equivalence checking ---------------------------
        _spec("eq_alu4", "equiv", "c2670",
              "4-bit ALU: ripple vs carry-select adder core",
              lambda: equivalence_formula(alu(4, "ripple"),
                                          alu(4, "select"))),
        _spec("eq_add8", "equiv", "c3540",
              "8-bit adder: ripple-carry vs carry-select",
              lambda: equivalence_formula(ripple_carry_adder(8),
                                          carry_select_adder(8))),
        _spec("eq_mult4", "equiv", "c5315",
              "4-bit multiplier: shift-add vs Wallace tree",
              lambda: equivalence_formula(shift_add_multiplier(4),
                                          wallace_multiplier(4))),
        # -- SAT-2002 BMC (w family) ---------------------------------------
        _spec("w6_10", "arbiter", "w10_45",
              "round-robin arbiter, 6 clients, bound 10",
              lambda: arbiter_instance(6, 10)),
        _spec("w6_14", "arbiter", "w10_60",
              "round-robin arbiter, 6 clients, bound 14",
              lambda: arbiter_instance(6, 14)),
        _spec("w8_14", "arbiter", "w10_70",
              "round-robin arbiter, 8 clients, bound 14",
              lambda: arbiter_instance(8, 14)),
        # -- SAT-2002 BMC (fifo family, Table 3 scaling study) -------------
        _spec("fifo8_6", "fifo", "fifo8_300",
              "shift vs ring FIFO, depth 8, bound 6",
              lambda: fifo_instance(8, 6)),
        _spec("fifo8_8", "fifo", "fifo8_350",
              "shift vs ring FIFO, depth 8, bound 8",
              lambda: fifo_instance(8, 8)),
        _spec("fifo8_10", "fifo", "fifo8_400",
              "shift vs ring FIFO, depth 8, bound 10",
              lambda: fifo_instance(8, 10)),
        # -- classic extras (not in the paper's tables) --------------------
        _spec("php6", "php", "-",
              "pigeonhole: 7 pigeons, 6 holes",
              lambda: pigeonhole(6)),
        _spec("parity24", "parity", "-",
              "two 24-bit parity chains forced to disagree",
              lambda: parity_contradiction(24)),
        _spec("eq_rot8", "equiv", "-",
              "8-bit rotator: log shifter vs decoded",
              lambda: equivalence_formula(barrel_rotator(8),
                                          decoded_rotator(8))),
    ]
}

# The instance groups of the paper's tables, in table order.
TABLE1_INSTANCES: tuple[str, ...] = (
    "pipe_2", "pipe_3", "pipe_4", "pipe_5", "vliw", "dlx_2", "dlx_3",
    "stack8_8", "stack8_12", "stack12_10", "stack16_10",
    "barrel5", "barrel6", "barrel7",
    "longmult_4", "longmult_6", "longmult_8", "longmult_10",
    "eq_alu4", "eq_add8", "eq_mult4",
    "w6_10", "w6_14", "w8_14",
)
TABLE2_INSTANCES: tuple[str, ...] = TABLE1_INSTANCES
TABLE3_INSTANCES: tuple[str, ...] = ("fifo8_6", "fifo8_8", "fifo8_10")


def instance_names(family: str | None = None) -> list[str]:
    """All registered instance names, optionally filtered by family."""
    return [name for name, spec in INSTANCES.items()
            if family is None or spec.family == family]


def build_instance(name: str) -> CnfFormula:
    """Build a registered instance by name."""
    try:
        spec = INSTANCES[name]
    except KeyError:
        raise KeyError(
            f"unknown instance {name!r}; known: "
            f"{', '.join(sorted(INSTANCES))}") from None
    return spec.build()
