"""Pigeonhole formulas — the classic resolution-hard UNSAT family.

``PHP(n)``: n+1 pigeons into n holes.  Not part of the paper's benchmark
tables, but the canonical stress test for everything in this library:
resolution proofs of PHP are exponential, so proof sizes blow up in a
predictable, well-studied way.
"""

from __future__ import annotations

from repro.core.exceptions import ModelError
from repro.core.formula import CnfFormula


def pigeonhole(holes: int) -> CnfFormula:
    """``holes + 1`` pigeons into ``holes`` holes (UNSAT for holes >= 1).

    Variable ``p * holes + h + 1`` means pigeon ``p`` sits in hole ``h``.
    """
    if holes < 1:
        raise ModelError("need at least one hole")

    def var(pigeon: int, hole: int) -> int:
        return pigeon * holes + hole + 1

    formula = CnfFormula(num_vars=(holes + 1) * holes)
    for pigeon in range(holes + 1):
        formula.add_clause([var(pigeon, hole) for hole in range(holes)])
    for hole in range(holes):
        for first in range(holes + 1):
            for second in range(first + 1, holes + 1):
                formula.add_clause([-var(first, hole), -var(second, hole)])
    return formula
