"""Parity-contradiction formulas (XOR chains).

Two Tseitin-encoded parity chains over the same variables are constrained
to opposite values — UNSAT, and hard for resolution in proportion to the
chain length.  A CNF-level cousin of the classic Dubois family.
"""

from __future__ import annotations

from repro.core.exceptions import ModelError
from repro.core.formula import CnfFormula


def _xor_clauses(formula: CnfFormula, a: int, b: int, out: int) -> None:
    """Clauses for ``out = a XOR b``."""
    formula.add_clause([-out, a, b])
    formula.add_clause([-out, -a, -b])
    formula.add_clause([out, -a, b])
    formula.add_clause([out, a, -b])


def parity_contradiction(width: int) -> CnfFormula:
    """Two parity chains over ``width`` shared inputs forced to disagree.

    Chain one runs left-to-right, chain two right-to-left; both compute
    the same parity, and the formula asserts chain one's result is true
    while chain two's is false — UNSAT.
    """
    if width < 2:
        raise ModelError("width must be at least 2")
    formula = CnfFormula(num_vars=width)
    next_var = width

    def fresh() -> int:
        nonlocal next_var
        next_var += 1
        return next_var

    forward = 1
    for x in range(2, width + 1):
        out = fresh()
        _xor_clauses(formula, forward, x, out)
        forward = out
    backward = width
    for x in range(width - 1, 0, -1):
        out = fresh()
        _xor_clauses(formula, backward, x, out)
        backward = out
    formula.add_clause([forward])
    formula.add_clause([-backward])
    return formula
