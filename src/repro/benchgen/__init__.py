"""Benchmark instance generators and the named-instance registry."""

from repro.benchgen.php import pigeonhole
from repro.benchgen.random_unsat import random_ksat, random_unsat
from repro.benchgen.registry import (
    INSTANCES,
    TABLE1_INSTANCES,
    TABLE2_INSTANCES,
    TABLE3_INSTANCES,
    InstanceSpec,
    build_instance,
    instance_names,
)
from repro.benchgen.streaming import (
    deletion_chain,
    deletion_chain_formula,
    iter_deletion_chain_events,
    write_deletion_chain_drup,
)
from repro.benchgen.xor_chains import parity_contradiction

__all__ = [
    "pigeonhole",
    "deletion_chain",
    "deletion_chain_formula",
    "iter_deletion_chain_events",
    "write_deletion_chain_drup",
    "parity_contradiction",
    "random_ksat",
    "random_unsat",
    "INSTANCES",
    "InstanceSpec",
    "build_instance",
    "instance_names",
    "TABLE1_INSTANCES",
    "TABLE2_INSTANCES",
    "TABLE3_INSTANCES",
]
