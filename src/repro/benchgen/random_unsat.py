"""Random k-SAT generators (with UNSAT certification for test workloads)."""

from __future__ import annotations

import random

from repro.core.exceptions import ModelError, ReproError
from repro.core.formula import CnfFormula


def random_ksat(num_vars: int, num_clauses: int, k: int = 3,
                seed: int = 0) -> CnfFormula:
    """Uniform random k-SAT: ``num_clauses`` clauses of ``k`` distinct
    variables with random polarities."""
    if k > num_vars:
        raise ModelError(f"k={k} exceeds num_vars={num_vars}")
    rng = random.Random(seed)
    formula = CnfFormula(num_vars=num_vars)
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), k)
        formula.add_clause(
            [var if rng.random() < 0.5 else -var for var in variables])
    return formula


def random_unsat(num_vars: int = 30, ratio: float = 5.5, k: int = 3,
                 seed: int = 0, max_attempts: int = 50) -> CnfFormula:
    """A random k-SAT formula certified unsatisfiable.

    Draws formulas above the satisfiability threshold until the solver
    (with proof logging off) confirms UNSAT.  Deterministic for a given
    seed.  Intended for tests and noise workloads, not for the paper's
    tables.
    """
    from repro.solver.cdcl import solve  # local import: avoid cycle

    num_clauses = int(num_vars * ratio)
    for attempt in range(max_attempts):
        formula = random_ksat(num_vars, num_clauses, k,
                              seed=seed * max_attempts + attempt)
        result = solve(formula, log_proof=False, max_conflicts=200_000)
        if result.is_unsat:
            return formula
    raise ReproError(
        f"no UNSAT formula found in {max_attempts} attempts "
        f"(n={num_vars}, ratio={ratio}); raise the ratio")
