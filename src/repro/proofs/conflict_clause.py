"""Conflict clause proofs — the paper's proof representation.

A proof of unsatisfiability of ``F`` is the chronologically ordered
sequence ``F*`` of conflict clauses the solver deduced, terminated either
by the **final conflicting pair** of unit clauses ``(l), (¬l)``
(Section 2: "the pair of unit clauses ~x and x is called the final
conflicting pair") or — for degenerate refutations such as an empty input
clause — by the empty clause itself.

The proof carries *no* derivation information: each clause is certified
afresh by the verifier's BCP check, which is exactly what makes the
representation compact (Section 5: size ``O(n · |F*|)``).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.core.clause import Clause
from repro.core.exceptions import ProofFormatError
from repro.proofs.log import ProofLog

ENDING_FINAL_PAIR = "final_pair"
ENDING_EMPTY = "empty"


class ConflictClauseProof:
    """An ordered set of deduced clauses, the paper's ``F*``."""

    def __init__(self, clauses: Sequence[Sequence[int]],
                 ending: str = ENDING_FINAL_PAIR):
        if ending not in (ENDING_FINAL_PAIR, ENDING_EMPTY):
            raise ProofFormatError(f"unknown proof ending {ending!r}")
        self._clauses: list[tuple[int, ...]] = [
            tuple(clause) for clause in clauses]
        self.ending = ending
        self.validate_structure()

    @classmethod
    def from_log(cls, log: ProofLog) -> "ConflictClauseProof":
        """Extract the conflict clause proof from a solver's proof log.

        The log ends with an empty-clause step.  When the preceding step
        is a unit clause ``(l)`` — which the solver's final level-0
        analysis guarantees whenever the refutation is non-degenerate —
        the empty step is exported as the unit ``(¬l)`` so the proof ends
        with the paper's final conflicting pair.
        """
        if not log.is_complete():
            raise ProofFormatError(
                "cannot export a proof from an incomplete log")
        clauses = [step.literals for step in log.steps]
        if (len(clauses) >= 2 and len(clauses[-2]) == 1
                and not clauses[-1]):
            clauses[-1] = (-clauses[-2][0],)
            return cls(clauses, ENDING_FINAL_PAIR)
        return cls(clauses, ENDING_EMPTY)

    def validate_structure(self) -> None:
        """Check the proof's shape (not its logical correctness)."""
        for clause in self._clauses:
            if any(lit == 0 for lit in clause):
                # 0 is the clause terminator in every trace format; as a
                # literal it would silently map to the reserved variable
                # 0 inside the BCP engines.
                raise ProofFormatError(
                    f"literal 0 inside proof clause {clause}")
        if self.ending == ENDING_FINAL_PAIR:
            if len(self._clauses) < 2:
                raise ProofFormatError(
                    "a final-pair proof needs at least two clauses")
            last = self._clauses[-1]
            second_last = self._clauses[-2]
            if not (len(last) == 1 and len(second_last) == 1
                    and last[0] == -second_last[0]):
                raise ProofFormatError(
                    "proof does not end with a conflicting pair of unit "
                    f"clauses (got {second_last} and {last})")
        else:
            if not self._clauses or self._clauses[-1]:
                raise ProofFormatError(
                    "an empty-ended proof must end with the empty clause")

    @property
    def clauses(self) -> list[tuple[int, ...]]:
        """Deduced clauses in chronological order (first deduced first)."""
        return self._clauses

    def final_pair(self) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
        """The final conflicting pair, or None for empty-ended proofs."""
        if self.ending != ENDING_FINAL_PAIR:
            return None
        return self._clauses[-2], self._clauses[-1]

    def as_clause_objects(self) -> list[Clause]:
        return [Clause(lits) for lits in self._clauses]

    def literal_count(self) -> int:
        """Total number of literals — the proof size unit of Table 2."""
        return sum(len(clause) for clause in self._clauses)

    def max_var(self) -> int:
        return max((abs(lit) for clause in self._clauses for lit in clause),
                   default=0)

    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._clauses)

    def __getitem__(self, index: int) -> tuple[int, ...]:
        return self._clauses[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConflictClauseProof):
            return NotImplemented
        return (self.ending == other.ending
                and self._clauses == other._clauses)

    def __repr__(self) -> str:
        return (f"ConflictClauseProof(num_clauses={len(self._clauses)}, "
                f"literals={self.literal_count()}, ending={self.ending!r})")
