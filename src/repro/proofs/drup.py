"""DRUP traces: the deletion-aware successor of conflict clause proofs.

The paper's format records only additions, so the verifier's clause set
grows monotonically.  A decade later DRUP (Heule/Hunt/Wetzler) added
**deletion lines**: when the solver drops a learned clause, the trace
says so, and a *forward* checker can drop it too — keeping the checker's
working set the same size as the solver's.  Since our solver already
deletes clauses (as BerkMin did), emitting DRUP is a natural extension:

    <lits> 0       — addition (checked by RUP, as in the paper)
    d <lits> 0     — deletion

This module defines the event-stream proof object and its text format;
the forward checker lives in :mod:`repro.verify.forward`.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from os import PathLike

from repro.core.exceptions import ProofFormatError
from repro.proofs.log import ProofLog

ADD = "add"
DELETE = "delete"


@dataclass(frozen=True)
class DrupEvent:
    """One trace line: an addition or a deletion of a clause."""

    kind: str
    literals: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in (ADD, DELETE):
            raise ProofFormatError(f"unknown event kind {self.kind!r}")
        if any(lit == 0 for lit in self.literals):
            # 0 terminates trace lines; as a literal it would alias the
            # engines' reserved variable 0.
            raise ProofFormatError(
                f"literal 0 inside {self.kind} event {self.literals}")


@dataclass
class DrupProof:
    """An ordered stream of addition/deletion events."""

    events: list[DrupEvent] = field(default_factory=list)

    @classmethod
    def from_log(cls, log: ProofLog) -> "DrupProof":
        """Interleave the log's additions with its deletion events.

        ``log.deletion_events`` holds ``(after_step, literals)`` pairs:
        the clause was deleted once ``after_step`` additions had been
        logged.
        """
        if not log.is_complete():
            raise ProofFormatError(
                "cannot export a DRUP trace from an incomplete log")
        deletions_at: dict[int, list[tuple[int, ...]]] = {}
        for after_step, literals in log.deletion_events:
            deletions_at.setdefault(after_step, []).append(literals)
        events: list[DrupEvent] = []
        for index, step in enumerate(log.steps):
            for literals in deletions_at.get(index, ()):
                events.append(DrupEvent(DELETE, literals))
            events.append(DrupEvent(ADD, step.literals))
        return cls(events)

    @property
    def num_additions(self) -> int:
        return sum(1 for e in self.events if e.kind == ADD)

    @property
    def num_deletions(self) -> int:
        return sum(1 for e in self.events if e.kind == DELETE)

    def validate_structure(self) -> None:
        adds = [e for e in self.events if e.kind == ADD]
        if not adds or adds[-1].literals != ():
            raise ProofFormatError(
                "a DRUP trace must end with the empty-clause addition")


def format_drup(proof: DrupProof, comment: str | None = None) -> str:
    """Render the event stream as DRUP text."""
    out = io.StringIO()
    if comment:
        for line in comment.splitlines():
            out.write(f"c {line}\n")
    for event in proof.events:
        prefix = "d " if event.kind == DELETE else ""
        body = " ".join(map(str, event.literals))
        out.write(f"{prefix}{body} 0\n" if event.literals
                  else f"{prefix}0\n")
    return out.getvalue()


def parse_drup_line(raw_line: str,
                    line_number: int) -> DrupEvent | None:
    """Parse one DRUP text line into an event (None: comment/blank).

    Shared by the whole-text :func:`parse_drup` and the chunked
    :class:`repro.proofs.stream.DrupStreamReader`, so both surfaces
    raise byte-identical :class:`ProofFormatError` diagnostics.
    """
    line = raw_line.strip()
    if not line or line.startswith("c"):
        return None
    kind = ADD
    if line.startswith("d ") or line == "d":
        kind = DELETE
        line = line[1:].strip()
    tokens = line.split()
    if not tokens or tokens[-1] != "0":
        raise ProofFormatError(
            f"line {line_number}: missing terminating 0")
    try:
        literals = tuple(int(token) for token in tokens[:-1])
    except ValueError as exc:
        raise ProofFormatError(
            f"line {line_number}: bad literal in {raw_line!r}"
        ) from exc
    if any(lit == 0 for lit in literals):
        raise ProofFormatError(
            f"line {line_number}: 0 inside a clause body")
    return DrupEvent(kind, literals)


def parse_drup(text: str) -> DrupProof:
    """Parse DRUP text into an event stream."""
    events: list[DrupEvent] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        event = parse_drup_line(raw_line, line_number)
        if event is not None:
            events.append(event)
    return DrupProof(events)


def write_drup(proof: DrupProof, path: str | PathLike,
               comment: str | None = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_drup(proof, comment=comment))


def read_drup(path: str | PathLike) -> DrupProof:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_drup(handle.read())
