"""Resolution graph proofs and their verification (the paper's baseline).

A resolution graph proof (Section 1) is a DAG whose sources are clauses of
the initial formula and whose every internal node has exactly two parents;
verification assigns clauses to internal nodes by resolving the parents'
clauses and checks that (1) every pair of parents clashes in exactly one
variable and (2) a sink is assigned the empty clause.

The paper's central size observation is reproduced here literally: the
*stored* proof only labels nodes (three references each, or one with the
special representation of [12]), but the *verifier* has to materialize a
clause per node, so the memory of the checker grows with the total number
of literals over all internal nodes — which :meth:`ResolutionGraphProof.check`
measures as ``peak_stored_literals``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.clause import Clause
from repro.core.exceptions import ProofFormatError
from repro.proofs.log import ProofLog


@dataclass(frozen=True)
class ResolutionNode:
    """An internal node: resolve ``left`` with ``right`` on ``pivot``.

    ``left``/``right`` are node ids: ``0..num_sources-1`` are source
    nodes (input clauses), larger ids are internal nodes in topological
    order.
    """

    left: int
    right: int
    pivot: int


@dataclass
class CheckResult:
    """Outcome of resolution graph verification."""

    ok: bool
    error: str | None = None
    failed_node: int | None = None
    nodes_checked: int = 0
    peak_stored_literals: int = 0


class ResolutionGraphProof:
    """A resolution DAG with a designated sink node."""

    def __init__(self, sources: list[tuple[int, ...]],
                 nodes: list[ResolutionNode], sink: int):
        self.sources = sources
        self.nodes = nodes
        self.sink = sink
        total = len(sources) + len(nodes)
        for index, node in enumerate(nodes):
            node_id = len(sources) + index
            if not (0 <= node.left < node_id and 0 <= node.right < node_id):
                raise ProofFormatError(
                    f"node {node_id} references a non-earlier parent")
        if not 0 <= sink < total:
            raise ProofFormatError(f"sink {sink} out of range")

    @classmethod
    def from_log(cls, log: ProofLog) -> "ResolutionGraphProof":
        """Expand a solver proof log into an explicit resolution DAG.

        Each proof step's input-resolution chain becomes a run of binary
        internal nodes.  Steps that are plain copies (single antecedent)
        create no node; their reference aliases the antecedent's node.
        """
        if not log.is_complete():
            raise ProofFormatError(
                "cannot build a resolution graph from an incomplete log")
        num_input = log.num_input
        nodes: list[ResolutionNode] = []
        # node id of each clause reference
        ref_node: dict[int, int] = {}

        def node_of(ref: int) -> int:
            if ref < num_input:
                return ref
            return ref_node[ref]

        for index, step in enumerate(log.steps):
            current = node_of(step.antecedents[0])
            for ant, pivot in zip(step.antecedents[1:], step.pivots):
                nodes.append(ResolutionNode(current, node_of(ant), pivot))
                current = num_input + len(nodes) - 1
            ref_node[num_input + index] = current
        sink = ref_node[num_input + len(log.steps) - 1]
        return cls(list(log.input_clauses), nodes, sink)

    @property
    def num_sources(self) -> int:
        return len(self.sources)

    @property
    def node_count(self) -> int:
        """Number of internal nodes — the paper's resolution proof size."""
        return len(self.nodes)

    def stored_size(self) -> int:
        """Stored representation size: three labels per internal node."""
        return 3 * len(self.nodes)

    def clause_of(self, node_id: int,
                  cache: dict[int, Clause] | None = None) -> Clause:
        """Compute the clause assigned to a node (resolving as needed)."""
        if cache is None:
            cache = {}
        return self._resolve_iteratively(node_id, cache)

    def _resolve_iteratively(self, target: int,
                             cache: dict[int, Clause]) -> Clause:
        stack = [target]
        while stack:
            node_id = stack[-1]
            if node_id in cache:
                stack.pop()
                continue
            if node_id < self.num_sources:
                cache[node_id] = Clause(self.sources[node_id])
                stack.pop()
                continue
            node = self.nodes[node_id - self.num_sources]
            missing = [p for p in (node.left, node.right) if p not in cache]
            if missing:
                stack.extend(missing)
                continue
            cache[node_id] = cache[node.left].resolve(
                cache[node.right], pivot=node.pivot)
            stack.pop()
        return cache[target]

    def check(self) -> CheckResult:
        """Verify the proof per Section 1 of the paper.

        Gradually assigns clauses to internal nodes, checking every
        resolution step, and finally checks the sink carries the empty
        clause.  Clauses are released after their last use, and the peak
        number of *live* stored literals is reported — the memory growth
        the paper warns about, measured for a checker that frees
        aggressively.

        (Internally clauses live as literal frozensets rather than
        :class:`Clause` objects — this loop runs once per resolution and
        graphs reach millions of nodes.)
        """
        # Last position (node index) at which each node's clause is
        # still needed; the sink must survive to the end.
        last_use: dict[int, int] = {self.sink: len(self.nodes)}
        for index, node in enumerate(self.nodes):
            for parent in (node.left, node.right):
                if last_use.get(parent, -1) < index:
                    last_use[parent] = index

        cache: dict[int, frozenset[int]] = {}
        peak = 0
        stored = 0

        def fail(index: int, node_id: int, message: str) -> CheckResult:
            return CheckResult(ok=False, error=message,
                               failed_node=node_id, nodes_checked=index,
                               peak_stored_literals=peak)

        for index, node in enumerate(self.nodes):
            node_id = self.num_sources + index
            left = cache.get(node.left)
            if left is None:  # sources materialize lazily
                left = frozenset(self.sources[node.left])
                cache[node.left] = left
                stored += len(left)
            right = cache.get(node.right)
            if right is None:
                right = frozenset(self.sources[node.right])
                cache[node.right] = right
                stored += len(right)
            pivot = node.pivot
            # Exactly one clashing variable, and it must be the pivot
            # (same rule as Clause.resolve).
            clash_vars = {abs(literal) for literal in left
                          if -literal in right}
            if clash_vars != {pivot}:
                return fail(
                    index, node_id,
                    f"node {node_id}: clashing variables "
                    f"{sorted(clash_vars)} (expected exactly the pivot "
                    f"{pivot})")
            lit = pivot if (pivot in left and -pivot in right) else -pivot
            resolvent = (left - {lit}) | (right - {-lit})
            cache[node_id] = resolvent
            stored += len(resolvent)
            if stored > peak:
                peak = stored
            for parent in (node.left, node.right):
                if last_use.get(parent) == index:
                    freed = cache.pop(parent, None)
                    if freed is not None:
                        stored -= len(freed)
            if last_use.get(node_id, -1) <= index:
                # Dead on arrival (nothing consumes it later).
                stored -= len(cache.pop(node_id))
        if self.sink >= self.num_sources:
            sink_clause = cache[self.sink]  # never freed (see last_use)
        else:
            sink_clause = frozenset(self.sources[self.sink])
        if sink_clause:
            return CheckResult(
                ok=False,
                error=f"sink clause is {sorted(sink_clause)}, not empty",
                failed_node=self.sink, nodes_checked=len(self.nodes),
                peak_stored_literals=peak)
        return CheckResult(ok=True, nodes_checked=len(self.nodes),
                           peak_stored_literals=peak)
