"""On-disk format for conflict clause proofs.

The paper's workflow (Section 1) writes each conflict clause to disk as
soon as it is recorded, so the format is line-oriented and appendable: a
header naming the ending convention, then one zero-terminated clause per
line, in chronological order — essentially the RUP trace format that
descended from this paper.

Example::

    p ccproof final_pair
    c deduced by solver X on formula Y
    -1 3 4 0
    -1 0
    1 0
"""

from __future__ import annotations

import io
from os import PathLike

from repro.core.exceptions import ProofFormatError
from repro.proofs.conflict_clause import (
    ENDING_EMPTY,
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)

_HEADER_PREFIX = "p ccproof"


def format_proof(proof: ConflictClauseProof,
                 comment: str | None = None) -> str:
    """Render a conflict clause proof as trace text."""
    out = io.StringIO()
    out.write(f"{_HEADER_PREFIX} {proof.ending}\n")
    if comment:
        for line in comment.splitlines():
            out.write(f"c {line}\n")
    for clause in proof:
        if clause:
            out.write(" ".join(map(str, clause)))
            out.write(" 0\n")
        else:
            out.write("0\n")
    return out.getvalue()


def parse_proof(text: str) -> ConflictClauseProof:
    """Parse trace text back into a :class:`ConflictClauseProof`."""
    ending: str | None = None
    clauses: list[tuple[int, ...]] = []
    pending: list[int] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            if ending is not None:
                raise ProofFormatError(
                    f"line {line_number}: duplicate proof header")
            fields = line.split()
            if (len(fields) != 3 or " ".join(fields[:2]) != _HEADER_PREFIX
                    or fields[2] not in (ENDING_FINAL_PAIR, ENDING_EMPTY)):
                raise ProofFormatError(
                    f"line {line_number}: malformed header {line!r}")
            ending = fields[2]
            continue
        for token in line.split():
            try:
                lit = int(token)
            except ValueError as exc:
                raise ProofFormatError(
                    f"line {line_number}: unexpected token {token!r}"
                ) from exc
            if lit == 0:
                clauses.append(tuple(pending))
                pending = []
            else:
                pending.append(lit)
    if pending:
        raise ProofFormatError("last clause is missing its terminating 0")
    if ending is None:
        raise ProofFormatError("missing 'p ccproof' header")
    return ConflictClauseProof(clauses, ending)


def write_proof(proof: ConflictClauseProof, path: str | PathLike,
                comment: str | None = None) -> None:
    """Write a conflict clause proof to a trace file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_proof(proof, comment=comment))


def read_proof(path: str | PathLike) -> ConflictClauseProof:
    """Read a conflict clause proof from a trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_proof(handle.read())
