"""Proof size accounting — the quantities of the paper's Tables 2 and 3.

The paper compares proofs with deliberately asymmetric units, and we keep
its convention: a resolution graph proof is measured in *nodes* (each node
stores a constant number of labels) while a conflict clause proof is
measured in *literals*.  The ratio column of Tables 2 and 3 is

    100 * (conflict clause proof literals) / (resolution graph nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.proofs.conflict_clause import ConflictClauseProof
from repro.proofs.log import ProofLog


@dataclass(frozen=True)
class ProofSizeComparison:
    """Size comparison of the two proof representations of one refutation."""

    num_conflict_clauses: int
    conflict_proof_literals: int
    resolution_graph_nodes: int
    max_clause_length: int

    @property
    def ratio_percent(self) -> float:
        """Paper Table 2 last column: conflict / resolution size, in %."""
        if not self.resolution_graph_nodes:
            return float("inf") if self.conflict_proof_literals else 0.0
        return 100.0 * self.conflict_proof_literals \
            / self.resolution_graph_nodes


def compare_proof_sizes(log: ProofLog) -> ProofSizeComparison:
    """Compute both proof sizes from a single solver log.

    The resolution node count is exact here (we record every resolution),
    whereas the paper could only compute a lower bound for some BerkMin
    clauses; the comparison is therefore conservative in the same
    direction as the paper's.
    """
    proof = ConflictClauseProof.from_log(log)
    return ProofSizeComparison(
        num_conflict_clauses=len(proof),
        conflict_proof_literals=proof.literal_count(),
        resolution_graph_nodes=log.resolution_node_count(),
        max_clause_length=max((len(c) for c in proof), default=0),
    )
