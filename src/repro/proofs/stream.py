"""Chunked, resumable DRUP trace reading.

:func:`repro.proofs.drup.parse_drup` materializes the whole trace —
fine for the paper-scale instances, fatal for solver traces that dwarf
RAM.  This module reads a DRUP file **incrementally**: fixed-size byte
chunks, one event yielded at a time, nothing retained but the current
partial line.  Every yielded event carries the byte offset just past
its line, so a consumer (the streaming verifier) can record a resume
point and a later reader can :class:`DrupStreamReader` straight back
to it with ``start_offset``/``start_line``/``start_index`` — the
foundation of checkpoint/resume.

Error semantics match :func:`parse_drup` line for line (both go
through :func:`repro.proofs.drup.parse_drup_line`), with two additions
only a chunked reader can meet:

* a final line without a terminating newline is parsed as-is, and a
  parse error there is annotated ``(file ends mid-line — truncated
  trace?)`` — the signature of a solver killed mid-write;
* bytes that do not decode as UTF-8 raise a typed
  :class:`~repro.core.exceptions.ProofFormatError` naming the line,
  never a ``UnicodeDecodeError``.

Both surface as exit code 65 (``EX_DATAERR``) at the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from os import PathLike

from repro.core.exceptions import ProofFormatError
from repro.proofs.drup import DrupEvent, DrupProof, parse_drup_line

#: Default read granularity.  Small enough to keep resident memory in
#: the tens of kilobytes, large enough that syscall overhead is noise.
DEFAULT_CHUNK_BYTES = 1 << 16


@dataclass(frozen=True)
class StreamedEvent:
    """One DRUP event plus its position in the file.

    ``offset`` is the byte offset just *past* this event's line (past
    its newline when one exists): seeking there and continuing with
    ``start_line = line_number + 1`` and ``start_index = index + 1``
    resumes the stream exactly where this event left it.
    """

    index: int
    line_number: int
    offset: int
    event: DrupEvent


class DrupStreamReader:
    """Iterate DRUP events from a file in bounded-memory chunks.

    ``start_offset`` must point at the beginning of a line (offset 0,
    or a previously yielded :attr:`StreamedEvent.offset`); the paired
    ``start_line``/``start_index`` seed the diagnostics' line numbers
    and the event indices so a resumed stream reports positions as the
    uninterrupted one would.
    """

    def __init__(self, path: str | PathLike, *,
                 start_offset: int = 0, start_line: int = 1,
                 start_index: int = 0,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES):
        if chunk_bytes < 1:
            raise ValueError(
                f"chunk_bytes must be positive, got {chunk_bytes!r}")
        self.path = path
        self.start_offset = start_offset
        self.start_line = start_line
        self.start_index = start_index
        self.chunk_bytes = chunk_bytes

    @staticmethod
    def _parse(raw: bytes, line_number: int) -> DrupEvent | None:
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProofFormatError(
                f"line {line_number}: undecodable bytes in trace "
                f"({exc.reason})") from exc
        return parse_drup_line(text, line_number)

    def __iter__(self):
        buffer = b""
        index = self.start_index
        line_number = self.start_line
        offset = self.start_offset
        with open(self.path, "rb") as handle:
            if offset:
                handle.seek(offset)
            while True:
                chunk = handle.read(self.chunk_bytes)
                if not chunk:
                    break
                lines = (buffer + chunk).split(b"\n")
                buffer = lines.pop()
                for raw in lines:
                    offset += len(raw) + 1
                    event = self._parse(raw, line_number)
                    if event is not None:
                        yield StreamedEvent(index, line_number, offset,
                                            event)
                        index += 1
                    line_number += 1
        if buffer:
            offset += len(buffer)
            try:
                event = self._parse(buffer, line_number)
            except ProofFormatError as exc:
                raise ProofFormatError(
                    f"{exc} (file ends mid-line — truncated trace?)"
                ) from exc
            if event is not None:
                yield StreamedEvent(index, line_number, offset, event)


def iter_drup_file(path: str | PathLike, *, start_offset: int = 0,
                   start_line: int = 1, start_index: int = 0,
                   chunk_bytes: int = DEFAULT_CHUNK_BYTES):
    """Convenience generator over :class:`DrupStreamReader`."""
    return iter(DrupStreamReader(
        path, start_offset=start_offset, start_line=start_line,
        start_index=start_index, chunk_bytes=chunk_bytes))


def read_drup_chunked(path: str | PathLike,
                      chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                      ) -> DrupProof:
    """Materialize a whole trace through the chunked reader.

    Differential twin of :func:`repro.proofs.drup.read_drup`: the
    equivalence tests drive both over the same files (at adversarial
    chunk sizes) to pin the readers to one grammar.
    """
    return DrupProof([streamed.event
                      for streamed in iter_drup_file(
                          path, chunk_bytes=chunk_bytes)])
