"""The solver-side proof log: every deduced clause with its derivation.

A :class:`ProofLog` is what a proof-logging CDCL solver produces while
refuting a formula.  It is a superset of both proof representations the
paper compares:

* dropping the derivations and keeping the clauses (chronologically)
  yields the **conflict clause proof** ``F*`` (Section 3);
* expanding each derivation chain into binary resolution nodes yields the
  **resolution graph proof** (Sections 1 and 5).

Clause references are dense integers: ``0 .. num_input-1`` refer to the
input formula's clauses (the sources of the resolution DAG), and
``num_input + j`` refers to the ``j``-th deduced clause.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ProofStep:
    """One deduced clause together with its trail-resolution derivation.

    ``antecedents`` is the input-resolution chain: the derivation starts
    from clause ``antecedents[0]`` and resolves, in order, with
    ``antecedents[1:]``; ``pivots[k]`` is the variable eliminated by the
    resolution with ``antecedents[k + 1]``.  A chain with a single
    antecedent and no pivots is a copy (0 resolutions).
    """

    literals: tuple[int, ...]
    antecedents: tuple[int, ...]
    pivots: tuple[int, ...]

    @property
    def resolution_count(self) -> int:
        """Number of binary resolutions in this step's derivation."""
        return len(self.pivots)


@dataclass
class ProofLog:
    """Chronological record of every clause a solver deduced.

    ``ending`` describes how the refutation terminates:

    * ``"empty"`` — the last step derives the empty clause;
    * ``"incomplete"`` — no refutation (the solver found the formula
      satisfiable or was interrupted).

    A complete log always ends with the empty-clause step; the paper's
    *final conflicting pair* of unit clauses is recovered from the last
    two steps when exporting a conflict clause proof (the step before the
    empty clause is, by construction of the solver's final analysis, a
    unit clause ``(l)``, and the empty step then certifies ``(¬l)``).
    """

    input_clauses: list[tuple[int, ...]] = field(default_factory=list)
    steps: list[ProofStep] = field(default_factory=list)
    ending: str = "incomplete"
    deletion_events: list[tuple[int, tuple[int, ...]]] = \
        field(default_factory=list)
    """Learned-clause deletions as ``(after_step, literals)`` pairs: the
    clause was dropped once ``after_step`` steps had been logged.  Not
    part of the paper's proof object (F* keeps every deduced clause);
    used by the DRUP export (:mod:`repro.proofs.drup`)."""

    @property
    def num_input(self) -> int:
        return len(self.input_clauses)

    def add_step(self, literals: tuple[int, ...],
                 antecedents: tuple[int, ...],
                 pivots: tuple[int, ...]) -> int:
        """Record a deduced clause; returns its global clause reference."""
        if len(antecedents) != len(pivots) + 1:
            raise ValueError(
                f"chain of {len(antecedents)} antecedents needs exactly "
                f"{len(antecedents) - 1} pivots, got {len(pivots)}")
        self.steps.append(ProofStep(tuple(literals), tuple(antecedents),
                                    tuple(pivots)))
        return self.num_input + len(self.steps) - 1

    def literals_of(self, ref: int) -> tuple[int, ...]:
        """Literals of a clause reference (input or deduced)."""
        if ref < self.num_input:
            return self.input_clauses[ref]
        return self.steps[ref - self.num_input].literals

    def is_complete(self) -> bool:
        return self.ending == "empty"

    @property
    def num_deduced(self) -> int:
        return len(self.steps)

    def deduced_literal_count(self) -> int:
        """Total literals over all deduced clauses (conflict-proof size)."""
        return sum(len(step.literals) for step in self.steps)

    def resolution_node_count(self) -> int:
        """Total binary resolutions = internal nodes of the resolution
        graph (the paper's Table 2 'Resolution graph size')."""
        return sum(step.resolution_count for step in self.steps)
