"""Proof statistics: the paper's local/global clause analysis (§5).

A conflict clause is **local** when it was obtained by few resolutions
(1UIP-style) and **global** when it required many (decision-variable
style).  Storing a clause in a conflict clause proof costs its
*literals*; storing its derivation in a resolution graph costs its
*resolutions* (nodes).  Per clause, whichever is smaller wins — the
paper's observation that the two proof formats are complementary, made
quantitative here.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.proofs.log import ProofLog


@dataclass
class ClauseShape:
    """Per-clause size/derivation measurements."""

    index: int
    literals: int
    resolutions: int

    @property
    def prefers_conflict_format(self) -> bool:
        """True when storing the clause beats storing its derivation."""
        return self.literals < self.resolutions


@dataclass
class ProofStatistics:
    """Aggregate shape of a proof log."""

    num_clauses: int
    total_literals: int
    total_resolutions: int
    mean_clause_length: float
    max_clause_length: int
    mean_resolutions: float
    max_resolutions: int
    local_clauses: int
    global_clauses: int
    conflict_format_wins: int
    length_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def global_fraction(self) -> float:
        if not self.num_clauses:
            return 0.0
        return self.global_clauses / self.num_clauses


def clause_shapes(log: ProofLog) -> list[ClauseShape]:
    """Length and resolution count of every deduced clause."""
    return [
        ClauseShape(index=index, literals=len(step.literals),
                    resolutions=step.resolution_count)
        for index, step in enumerate(log.steps)
    ]


def analyze_log(log: ProofLog,
                local_threshold: int | None = None) -> ProofStatistics:
    """Aggregate statistics of a proof log.

    A clause is classified *global* when its derivation used more than
    ``local_threshold`` resolutions; the default threshold is twice the
    clause's own length (a scale-free reading of the paper's informal
    definition: local clauses are "obtained by resolving a small number
    of clauses" relative to what storing them costs).
    """
    shapes = clause_shapes(log)
    if not shapes:
        return ProofStatistics(
            num_clauses=0, total_literals=0, total_resolutions=0,
            mean_clause_length=0.0, max_clause_length=0,
            mean_resolutions=0.0, max_resolutions=0,
            local_clauses=0, global_clauses=0, conflict_format_wins=0)

    total_literals = sum(s.literals for s in shapes)
    total_resolutions = sum(s.resolutions for s in shapes)
    global_count = 0
    for shape in shapes:
        threshold = (local_threshold if local_threshold is not None
                     else 2 * max(shape.literals, 1))
        if shape.resolutions > threshold:
            global_count += 1
    histogram = Counter(s.literals for s in shapes)
    return ProofStatistics(
        num_clauses=len(shapes),
        total_literals=total_literals,
        total_resolutions=total_resolutions,
        mean_clause_length=total_literals / len(shapes),
        max_clause_length=max(s.literals for s in shapes),
        mean_resolutions=total_resolutions / len(shapes),
        max_resolutions=max(s.resolutions for s in shapes),
        local_clauses=len(shapes) - global_count,
        global_clauses=global_count,
        conflict_format_wins=sum(
            1 for s in shapes if s.prefers_conflict_format),
        length_histogram=dict(sorted(histogram.items())))
