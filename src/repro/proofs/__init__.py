"""Proof objects: solver logs, conflict clause proofs, resolution graphs."""

from repro.proofs.conflict_clause import (
    ENDING_EMPTY,
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.proofs.drup import (
    DrupEvent,
    DrupProof,
    format_drup,
    parse_drup,
    parse_drup_line,
    read_drup,
    write_drup,
)
from repro.proofs.stream import (
    DEFAULT_CHUNK_BYTES,
    DrupStreamReader,
    StreamedEvent,
    iter_drup_file,
    read_drup_chunked,
)
from repro.proofs.log import ProofLog, ProofStep
from repro.proofs.resolution import (
    CheckResult,
    ResolutionGraphProof,
    ResolutionNode,
)
from repro.proofs.sizes import ProofSizeComparison, compare_proof_sizes
from repro.proofs.stats import (
    ClauseShape,
    ProofStatistics,
    analyze_log,
    clause_shapes,
)
from repro.proofs.trace_format import (
    format_proof,
    parse_proof,
    read_proof,
    write_proof,
)

__all__ = [
    "ProofLog",
    "ProofStep",
    "ConflictClauseProof",
    "ENDING_FINAL_PAIR",
    "ENDING_EMPTY",
    "ResolutionGraphProof",
    "ResolutionNode",
    "CheckResult",
    "ProofSizeComparison",
    "compare_proof_sizes",
    "ProofStatistics",
    "ClauseShape",
    "analyze_log",
    "clause_shapes",
    "format_proof",
    "DrupProof",
    "DrupEvent",
    "format_drup",
    "parse_drup",
    "parse_drup_line",
    "read_drup",
    "write_drup",
    "DrupStreamReader",
    "StreamedEvent",
    "iter_drup_file",
    "read_drup_chunked",
    "DEFAULT_CHUNK_BYTES",
    "parse_proof",
    "read_proof",
    "write_proof",
]
