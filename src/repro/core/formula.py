"""CNF formulas: ordered clause containers with variable bookkeeping."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.core.clause import Clause


class CnfFormula:
    """An ordered multiset of clauses over variables ``1..num_vars``.

    Clause order is preserved (proofs refer to clauses positionally) and
    duplicate clauses are allowed, as in DIMACS files.  ``num_vars`` tracks
    the largest variable mentioned, and may be declared larger (DIMACS
    headers may over-declare).
    """

    def __init__(self, clauses: Iterable[Clause | Iterable[int]] = (),
                 num_vars: int = 0):
        self._clauses: list[Clause] = []
        self._num_vars = num_vars
        for clause in clauses:
            self.add_clause(clause)

    @property
    def clauses(self) -> list[Clause]:
        """The clause list (treat as read-only; use :meth:`add_clause`)."""
        return self._clauses

    @property
    def num_vars(self) -> int:
        """Number of variables (the largest index mentioned or declared)."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def add_clause(self, clause: Clause | Iterable[int]) -> Clause:
        """Append a clause (normalizing plain literal iterables)."""
        if not isinstance(clause, Clause):
            clause = Clause(clause)
        self._clauses.append(clause)
        for lit in clause:
            var = abs(lit)
            if var > self._num_vars:
                self._num_vars = var
        return clause

    def extend(self, clauses: Iterable[Clause | Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def declare_vars(self, num_vars: int) -> None:
        """Raise the declared variable count (never lowers it)."""
        if num_vars > self._num_vars:
            self._num_vars = num_vars

    def literal_count(self) -> int:
        """Total number of literal occurrences (proof-size unit of Table 2)."""
        return sum(len(clause) for clause in self._clauses)

    def evaluate(self, assignment: Mapping[int, bool]) -> bool | None:
        """Three-valued evaluation: AND over clause evaluations."""
        undetermined = False
        for clause in self._clauses:
            value = clause.evaluate(assignment)
            if value is False:
                return False
            if value is None:
                undetermined = True
        return None if undetermined else True

    def is_satisfied_by(self, assignment: Mapping[int, bool]) -> bool:
        """True iff the assignment satisfies every clause."""
        return self.evaluate(assignment) is True

    def copy(self) -> "CnfFormula":
        clone = CnfFormula(num_vars=self._num_vars)
        clone._clauses = list(self._clauses)
        return clone

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __getitem__(self, index: int) -> Clause:
        return self._clauses[index]

    def __repr__(self) -> str:
        return (f"CnfFormula(num_vars={self._num_vars}, "
                f"num_clauses={len(self._clauses)})")
