"""DIMACS CNF reading and writing.

The standard interchange format of the SAT community (and of every
benchmark family the paper evaluates on).  The parser is tolerant of the
usual real-world deviations: comments anywhere, clauses spanning lines,
several clauses per line, and headers that over- or under-declare counts
(under-declared variable counts are corrected, mismatched clause counts are
reported via ``strict=True`` only).
"""

from __future__ import annotations

import io
from os import PathLike

from repro.core.clause import Clause
from repro.core.exceptions import DimacsParseError
from repro.core.formula import CnfFormula


def parse_dimacs(text: str, strict: bool = False) -> CnfFormula:
    """Parse DIMACS CNF text into a :class:`CnfFormula`.

    With ``strict=True`` the header is required and its clause count must
    match the body exactly.
    """
    declared_vars: int | None = None
    declared_clauses: int | None = None
    formula = CnfFormula()
    pending: list[int] = []
    saw_header = False

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("c") or line.startswith("%"):
            continue
        if line.startswith("p"):
            if saw_header:
                raise DimacsParseError("duplicate header", line_number)
            fields = line.split()
            if len(fields) != 4 or fields[1] != "cnf":
                raise DimacsParseError(
                    f"malformed header {line!r}", line_number)
            try:
                declared_vars = int(fields[2])
                declared_clauses = int(fields[3])
            except ValueError as exc:
                raise DimacsParseError(
                    f"non-integer header field in {line!r}", line_number
                ) from exc
            if declared_vars < 0 or declared_clauses < 0:
                raise DimacsParseError(
                    "negative counts in header", line_number)
            saw_header = True
            continue
        if line == "0" and not pending:
            # Some generators terminate files with a lone 0; ignore it.
            formula.add_clause(Clause())
            continue
        for token in line.split():
            try:
                lit = int(token)
            except ValueError as exc:
                raise DimacsParseError(
                    f"unexpected token {token!r}", line_number) from exc
            if lit == 0:
                formula.add_clause(Clause(pending))
                pending = []
            else:
                pending.append(lit)

    if pending:
        raise DimacsParseError("last clause is missing its terminating 0")
    if strict:
        if not saw_header:
            raise DimacsParseError("missing 'p cnf' header")
        if declared_clauses != formula.num_clauses:
            raise DimacsParseError(
                f"header declares {declared_clauses} clauses but body "
                f"contains {formula.num_clauses}")
        if declared_vars is not None and formula.num_vars > declared_vars:
            raise DimacsParseError(
                f"header declares {declared_vars} variables but literal "
                f"mentions variable {formula.num_vars}")
    if declared_vars is not None:
        formula.declare_vars(declared_vars)
    return formula


def read_dimacs(path: str | PathLike, strict: bool = False) -> CnfFormula:
    """Read a DIMACS CNF file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_dimacs(handle.read(), strict=strict)


def format_dimacs(formula: CnfFormula, comment: str | None = None) -> str:
    """Render a formula as DIMACS CNF text."""
    out = io.StringIO()
    if comment:
        for line in comment.splitlines():
            out.write(f"c {line}\n")
    out.write(f"p cnf {formula.num_vars} {formula.num_clauses}\n")
    for clause in formula:
        out.write(" ".join(map(str, clause.literals)))
        out.write(" 0\n" if clause.literals else "0\n")
    return out.getvalue()


def write_dimacs(formula: CnfFormula, path: str | PathLike,
                 comment: str | None = None) -> None:
    """Write a formula to a DIMACS CNF file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_dimacs(formula, comment=comment))
