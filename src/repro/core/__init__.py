"""Core CNF substrate: literals, clauses, formulas, DIMACS I/O."""

from repro.core.clause import Clause, EMPTY_CLAUSE
from repro.core.dimacs import (
    format_dimacs,
    parse_dimacs,
    read_dimacs,
    write_dimacs,
)
from repro.core.exceptions import (
    CircuitError,
    DimacsParseError,
    ModelError,
    ProofFormatError,
    ReproError,
    ResolutionError,
)
from repro.core.formula import CnfFormula
from repro.core.literals import (
    decode,
    decode_clause,
    encode,
    encode_clause,
    is_negative,
    negate,
    variable,
)

__all__ = [
    "Clause",
    "EMPTY_CLAUSE",
    "CnfFormula",
    "parse_dimacs",
    "read_dimacs",
    "format_dimacs",
    "write_dimacs",
    "encode",
    "decode",
    "negate",
    "variable",
    "is_negative",
    "encode_clause",
    "decode_clause",
    "ReproError",
    "DimacsParseError",
    "ResolutionError",
    "ProofFormatError",
    "CircuitError",
    "ModelError",
]
