"""Exception hierarchy for the :mod:`repro` library.

Only *malformed input* conditions raise exceptions.  A proof that fails
verification is not exceptional — it is a legitimate result the paper's
procedures report (``proof_is_not_correct``) — so verification outcomes are
returned as report objects, never raised.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DimacsParseError(ReproError):
    """Raised when a DIMACS CNF file or string cannot be parsed."""

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class ResolutionError(ReproError):
    """Raised when two clauses cannot be resolved as requested.

    Per the paper (Section 1), a resolution step is valid only when the two
    parent clauses contain opposite literals of *exactly one* variable.
    """


class ProofFormatError(ReproError):
    """Raised when a proof file or proof object is structurally malformed."""


class CheckpointError(ReproError):
    """Raised when a streaming-verification resume token is unusable:
    missing, structurally invalid, or recorded against a different
    formula/proof than the one being resumed."""


class CircuitError(ReproError):
    """Raised on inconsistent circuit construction (unknown nets, arity)."""


class ModelError(ReproError):
    """Raised on inconsistent transition-system or pipeline construction."""
