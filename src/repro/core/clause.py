"""Immutable clauses over DIMACS literals.

A :class:`Clause` is the external representation of a disjunction of
literals, used by formulas, proofs and verifiers.  The CDCL solver keeps its
own flat integer arrays internally and converts at the boundary.

Clauses are *normalized*: duplicate literals are removed and literals are
sorted by variable index (positive before negative within a variable).  Two
clauses with the same literal set therefore compare equal and hash equally,
which the verifier's marking machinery and the tests rely on.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.core.exceptions import ResolutionError
from repro.core.literals import check_dimacs_literal


def _sort_key(lit: int) -> tuple[int, int]:
    return (abs(lit), 0 if lit > 0 else 1)


class Clause:
    """An immutable, normalized disjunction of DIMACS literals.

    >>> Clause([3, -1, 3])
    Clause(-1, 3)
    >>> Clause([1, -1]).is_tautology()
    True
    """

    __slots__ = ("_lits",)

    def __init__(self, literals: Iterable[int] = ()):
        seen = set()
        for lit in literals:
            check_dimacs_literal(lit)
            seen.add(lit)
        self._lits: tuple[int, ...] = tuple(sorted(seen, key=_sort_key))

    @classmethod
    def _from_sorted(cls, lits: tuple[int, ...]) -> "Clause":
        """Internal fast path: build from an already-normalized tuple."""
        clause = cls.__new__(cls)
        clause._lits = lits
        return clause

    @property
    def literals(self) -> tuple[int, ...]:
        """The normalized literal tuple."""
        return self._lits

    def variables(self) -> frozenset[int]:
        """The set of variable indices occurring in this clause."""
        return frozenset(abs(lit) for lit in self._lits)

    def is_empty(self) -> bool:
        """True for the empty clause (the refutation target)."""
        return not self._lits

    def is_unit(self) -> bool:
        """True if the clause has exactly one literal."""
        return len(self._lits) == 1

    def is_tautology(self) -> bool:
        """True if the clause contains both polarities of some variable."""
        variables = set()
        for lit in self._lits:
            if -lit in variables:
                return True
            variables.add(lit)
        return False

    def contains(self, lit: int) -> bool:
        """True if the literal occurs in the clause."""
        return lit in set(self._lits)

    def falsifying_assignment(self) -> dict[int, bool]:
        """The assignment ``R`` that sets every literal of the clause to 0.

        Per the paper (Section 2), the clause *encodes* this assignment:
        clause ``C(R)`` is falsified by ``R``.  Returned as a mapping from
        variable to boolean value.
        """
        return {abs(lit): lit < 0 for lit in self._lits}

    def evaluate(self, assignment: Mapping[int, bool]) -> bool | None:
        """Three-valued evaluation under a (possibly partial) assignment.

        Returns True if some literal is satisfied, False if every literal is
        assigned and falsified, and None otherwise (undetermined).
        """
        undetermined = False
        for lit in self._lits:
            var = abs(lit)
            if var not in assignment:
                undetermined = True
                continue
            if assignment[var] == (lit > 0):
                return True
        return None if undetermined else False

    def resolve(self, other: "Clause", pivot: int | None = None) -> "Clause":
        """Resolve with another clause, returning the resolvent.

        Per the paper (Section 1), the parents must have opposite literals of
        *exactly one* variable; otherwise :class:`ResolutionError` is raised.
        ``pivot`` (a variable index) may be given to assert which variable is
        expected to clash.
        """
        mine = set(self._lits)
        theirs = set(other._lits)
        clashing = {abs(lit) for lit in mine if -lit in theirs}
        if len(clashing) != 1:
            raise ResolutionError(
                f"clauses {self} and {other} clash in {len(clashing)} "
                "variables; resolution requires exactly one"
            )
        (clash_var,) = clashing
        if pivot is not None and pivot != clash_var:
            raise ResolutionError(
                f"expected pivot {pivot} but clauses clash in {clash_var}"
            )
        # Resolve on a literal, not a variable: remove l from the side
        # containing it and ¬l from the other side only.  (For a
        # tautological parent containing both polarities, the leftover
        # literal stays — anything stronger would be unsound.)
        lit = clash_var if (clash_var in mine
                            and -clash_var in theirs) else -clash_var
        resolvent = (mine - {lit}) | (theirs - {-lit})
        return Clause(resolvent)

    def __iter__(self) -> Iterator[int]:
        return iter(self._lits)

    def __len__(self) -> int:
        return len(self._lits)

    def __contains__(self, lit: int) -> bool:
        return lit in self._lits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clause):
            return NotImplemented
        return self._lits == other._lits

    def __hash__(self) -> int:
        return hash(self._lits)

    def __repr__(self) -> str:
        return f"Clause({', '.join(map(str, self._lits))})"


EMPTY_CLAUSE = Clause()
