"""Literal representations and conversions.

Two representations are used throughout the library:

* **DIMACS literals** — nonzero signed integers, the external/API form.
  Variable ``v`` appears positively as ``v`` and negatively as ``-v``.
  This is the representation of :class:`repro.core.clause.Clause` and of
  everything written to or read from disk.

* **Encoded literals** — nonnegative integers used internally by the BCP
  engines and the CDCL solver so literals can index flat arrays (watch
  lists, saved phases).  Variable ``v`` appears positively as ``2*v`` and
  negatively as ``2*v + 1``; negation is a single XOR.

The helpers here are deliberately tiny, branch-light functions: they sit on
the hot path of every propagation step.
"""

from __future__ import annotations

from collections.abc import Iterable


def encode(lit: int) -> int:
    """Convert a DIMACS literal to its encoded form.

    >>> encode(3), encode(-3)
    (6, 7)
    """
    if lit > 0:
        return lit << 1
    return (-lit << 1) | 1


def decode(enc: int) -> int:
    """Convert an encoded literal back to DIMACS form.

    >>> decode(6), decode(7)
    (3, -3)
    """
    var = enc >> 1
    return -var if enc & 1 else var


def negate(enc: int) -> int:
    """Negate an encoded literal (flip the sign bit)."""
    return enc ^ 1


def variable(enc: int) -> int:
    """Variable index of an encoded literal."""
    return enc >> 1


def is_negative(enc: int) -> bool:
    """True if the encoded literal is a negative DIMACS literal."""
    return bool(enc & 1)


def encode_clause(lits: Iterable[int]) -> list[int]:
    """Encode every DIMACS literal of a clause."""
    return [encode(lit) for lit in lits]


def decode_clause(encs: Iterable[int]) -> tuple[int, ...]:
    """Decode every encoded literal of a clause back to DIMACS form."""
    return tuple(decode(enc) for enc in encs)


def check_dimacs_literal(lit: int) -> int:
    """Validate a DIMACS literal (must be a nonzero int); return it.

    Raises :class:`ValueError` for 0 or non-integers — 0 is the DIMACS
    clause terminator and can never be a literal.
    """
    if not isinstance(lit, int) or isinstance(lit, bool):
        raise ValueError(f"literal must be an int, got {lit!r}")
    if lit == 0:
        raise ValueError("0 is not a valid DIMACS literal")
    return lit
