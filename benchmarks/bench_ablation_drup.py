"""Ablation: backward marking (the paper) vs forward DRUP checking.

The trade the formats embody: the paper's backward Proof_verification2
skips redundant clauses but keeps every clause loaded; forward DRUP
checking verifies every addition but honors deletions, bounding the
active clause set to what the solver itself held.
"""

import pytest

from repro.benchgen.registry import INSTANCES
from repro.experiments.runner import berkmin_options
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.proofs.drup import DrupProof
from repro.solver.cdcl import solve
from repro.verify.forward import check_drup
from repro.verify.verification import verify_proof_v2

from benchmarks.conftest import TableCollector, register_collector

ABLATION_INSTANCES = ("eq_add8", "barrel5", "stack8_8")

_table = register_collector(TableCollector(
    "Ablation: backward (paper) vs forward DRUP checking",
    f"{'Name':<10} {'direction':<10} {'checked':>8} {'time(s)':>8} "
    f"{'peak clauses':>13}"))


@pytest.fixture(scope="module")
def aggressive_solutions():
    """Solve with aggressive deletion so DRUP traces contain d-lines."""
    solutions = {}
    for name in ABLATION_INSTANCES:
        formula = INSTANCES[name].build()
        result = solve(formula, berkmin_options(
            restart_base=20, reduce_base=100, reduce_growth=50))
        assert result.is_unsat
        solutions[name] = (formula, result)
    return solutions


@pytest.mark.parametrize("name", ABLATION_INSTANCES)
def test_backward(benchmark, name, aggressive_solutions):
    formula, result = aggressive_solutions[name]
    proof = ConflictClauseProof.from_log(result.log)

    report = benchmark.pedantic(verify_proof_v2, args=(formula, proof),
                                rounds=1, iterations=1)

    assert report.ok
    loaded = formula.num_clauses + len(proof)
    _table.add(f"{name:<10} {'backward':<10} {report.num_checked:>8,} "
               f"{report.verification_time:>8.3f} {loaded:>13,}")


@pytest.mark.parametrize("name", ABLATION_INSTANCES)
def test_forward_drup(benchmark, name, aggressive_solutions):
    formula, result = aggressive_solutions[name]
    proof = DrupProof.from_log(result.log)

    report = benchmark.pedantic(check_drup, args=(formula, proof),
                                rounds=1, iterations=1)

    assert report.ok
    _table.add(f"{name:<10} {'forward':<10} {report.num_additions:>8,} "
               f"{report.verification_time:>8.3f} "
               f"{report.peak_active_clauses:>13,}")
