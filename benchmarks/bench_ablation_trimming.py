"""Ablation: proof trimming (the Section 4 corollary).

Measures verify-and-trim and reports how much of each proof was
redundant — the same numbers drat-trim reports today, produced by the
paper's own marking machinery.
"""

import pytest

from repro.verify.trimming import trim_proof

from benchmarks.conftest import (
    TableCollector,
    register_collector,
    solved_instance,
)

ABLATION_INSTANCES = ("eq_add8", "barrel5", "stack8_8", "w6_10")

_table = register_collector(TableCollector(
    "Ablation: proof trimming",
    f"{'Name':<10} {'|F*|':>8} {'kept':>8} {'removed':>8} "
    f"{'lits removed':>13}"))


@pytest.mark.parametrize("name", ABLATION_INSTANCES)
def test_trimming(benchmark, name):
    data = solved_instance(name)

    result = benchmark.pedantic(
        trim_proof, args=(data.formula, data.proof),
        rounds=1, iterations=1)

    assert result.report.ok
    _table.add(
        f"{name:<10} {len(data.proof):>8,} {len(result.trimmed):>8,} "
        f"{result.clauses_removed:>8,} {result.literals_removed:>13,}")
