"""Ablation: learned-clause minimization (a post-2003 'future work').

Minimization (Sörensson/Biere 2009) shortens learned clauses at the
price of extra resolutions — i.e. it pushes every clause in the
direction the paper calls "global".  This bench quantifies the effect on
both proof representations.
"""

import pytest

from repro.benchgen.registry import INSTANCES
from repro.proofs.sizes import compare_proof_sizes
from repro.solver.cdcl import SolverOptions, solve

from benchmarks.conftest import TableCollector, register_collector

ABLATION_INSTANCES = ("php6", "eq_add8", "stack8_8")

_table = register_collector(TableCollector(
    "Ablation: learned clause minimization",
    f"{'Name':<10} {'minimize':<9} {'conflicts':>10} {'ConflLits':>10} "
    f"{'ResNodes':>10} {'Ratio%':>7}"))


@pytest.mark.parametrize("name", ABLATION_INSTANCES)
@pytest.mark.parametrize("minimize", [False, True])
def test_minimization(benchmark, name, minimize):
    formula = INSTANCES[name].build()
    options = SolverOptions(heuristic="berkmin",
                            minimize_clauses=minimize)

    result = benchmark.pedantic(
        solve, args=(formula, options), rounds=1, iterations=1)

    assert result.is_unsat
    sizes = compare_proof_sizes(result.log)
    _table.add(
        f"{name:<10} {str(minimize):<9} {result.stats.conflicts:>10,} "
        f"{sizes.conflict_proof_literals:>10,} "
        f"{sizes.resolution_graph_nodes:>10,} "
        f"{sizes.ratio_percent:>7.1f}")
