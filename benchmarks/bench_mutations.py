"""Benchmark: adversarial mutation-harness throughput.

Measures how fast the differential driver (`repro.testing`) can sweep a
corrupted-proof batch through the checkers — the practical cost of
answering "who checks the checker?" on the paper's instances.  Reported
as checker runs per second over the full mutation roster of one
known-good proof (with its DRUP trace), using the light verification1
configuration so the number measures harness throughput rather than the
parallel backend's pool startup.

Runs in two forms:

* under pytest (``pytest benchmarks/ --benchmark-only``) as table rows
  alongside the other paper-table benchmarks;
* standalone (``python benchmarks/bench_mutations.py``), appending one
  JSON record per instance to ``BENCH_verification.json`` for trend
  tracking in CI.
"""

import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # standalone: make src/ + repo root importable
    for path in (REPO_ROOT / "src", REPO_ROOT):
        if str(path) not in sys.path:
            sys.path.insert(0, str(path))

import pytest

from repro.proofs.drup import DrupProof
from repro.testing import LIGHT_V1_CONFIGS, run_differential

from benchmarks.conftest import (
    TableCollector,
    register_collector,
    solved_instance,
)

MUTATION_INSTANCES = ("php6", "pipe_2")

_table = register_collector(TableCollector(
    "Mutation harness: differential sweep throughput",
    f"{'Name':<10} {'mutants':>8} {'runs':>6} {'time(s)':>8} "
    f"{'runs/s':>8} {'rejected':>9} {'accepted':>9}"))


def run_sweep(data, seed: int = 0):
    trace = DrupProof.from_log(data.log)
    return run_differential(data.formula, data.proof, drup=trace,
                            seed=seed, v1_configs=LIGHT_V1_CONFIGS)


def _sweep_stats(summary) -> dict[str, int]:
    counts = summary.by_expectation()
    rejected = (counts.get("reject_all", 0)
                + counts.get("reject_v1", 0))
    return {"rejected_classes": rejected,
            "accepted_classes": counts.get("accept", 0)}


@pytest.mark.parametrize("name", MUTATION_INSTANCES)
def test_mutation_throughput(benchmark, name):
    data = solved_instance(name)

    summary = benchmark.pedantic(run_sweep, args=(data,),
                                 rounds=1, iterations=1)

    assert summary.ok, summary.problems
    elapsed = benchmark.stats.stats.mean
    stats = _sweep_stats(summary)
    _table.add(
        f"{name:<10} {summary.num_mutations:>8} "
        f"{summary.checker_runs:>6} {elapsed:>8.3f} "
        f"{summary.checker_runs / elapsed:>8.1f} "
        f"{stats['rejected_classes']:>9} {stats['accepted_classes']:>9}")


# -- standalone entry point ---------------------------------------------------

def bench_records(instances, seed: int) -> list[dict]:
    """One record per instance, ready for JSON appending."""
    records = []
    for name in instances:
        data = solved_instance(name)
        start = time.perf_counter()
        summary = run_sweep(data, seed=seed)
        elapsed = time.perf_counter() - start
        assert summary.ok, f"{name}: {summary.problems}"
        records.append({
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                       time.gmtime()),
            "instance": name,
            "variant": "mutation_sweep",
            "seed": seed,
            "num_mutations": summary.num_mutations,
            "checker_runs": summary.checker_runs,
            "by_expectation": summary.by_expectation(),
            "ok": summary.ok,
            "elapsed": round(elapsed, 6),
            "checker_runs_per_sec": round(
                summary.checker_runs / elapsed, 2),
        })
        print(f"{name:<10} mutants={summary.num_mutations} "
              f"runs={summary.checker_runs} time={elapsed:.3f}s "
              f"({summary.checker_runs / elapsed:.1f} runs/s)")
    return records


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Benchmark the mutation harness's differential "
                    "sweep and append records to a JSON log.")
    parser.add_argument("--instances", nargs="+",
                        default=list(MUTATION_INSTANCES),
                        help="registry instance names "
                             f"(default: {' '.join(MUTATION_INSTANCES)})")
    parser.add_argument("--seed", type=int, default=0,
                        help="mutation seed (default 0)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_verification.json",
                        help="JSON file to append records to")
    args = parser.parse_args(argv)

    records = bench_records(args.instances, args.seed)
    existing = []
    if args.output.exists():
        existing = json.loads(args.output.read_text())
    existing.extend(records)
    args.output.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"appended {len(records)} records to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
