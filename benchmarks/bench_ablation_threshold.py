"""Ablation: the adaptive learning threshold (DESIGN.md design choice).

Sweeps the length threshold at which the solver switches from the local
(1UIP) clause to the global (decision) clause.  Lower thresholds push
the proof-shape toward the paper's BerkMin behaviour: fewer conflict
proof literals, many more resolution nodes — i.e. a smaller ratio.
"""

import pytest

from repro.benchgen.registry import INSTANCES
from repro.proofs.sizes import compare_proof_sizes
from repro.solver.cdcl import SolverOptions, solve

from benchmarks.conftest import TableCollector, register_collector

THRESHOLDS = (8, 20, 50, 10_000)  # 10k ~= pure 1UIP
INSTANCE = "stack8_8"

_table = register_collector(TableCollector(
    "Ablation: adaptive threshold sweep (stack8_8)",
    f"{'threshold':>9} {'conflicts':>10} {'ConflLits':>10} "
    f"{'ResNodes':>10} {'Ratio%':>7}"))


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_threshold(benchmark, threshold):
    formula = INSTANCES[INSTANCE].build()
    options = SolverOptions(learning="adaptive",
                            adaptive_threshold=threshold,
                            heuristic="berkmin")

    result = benchmark.pedantic(
        solve, args=(formula, options), rounds=1, iterations=1)

    assert result.is_unsat
    sizes = compare_proof_sizes(result.log)
    _table.add(
        f"{threshold:>9} {result.stats.conflicts:>10,} "
        f"{sizes.conflict_proof_literals:>10,} "
        f"{sizes.resolution_graph_nodes:>10,} "
        f"{sizes.ratio_percent:>7.1f}")
