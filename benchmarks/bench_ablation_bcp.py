"""Ablation: watched-literal vs counting BCP in the verifier (§6).

The paper: "A conflict clause proof F* contains a large number of long
clauses, which is exactly the case when using watched literals is
especially effective."  Verifying the same proof with both engines makes
the claim measurable.
"""

import pytest

from repro.bcp.counting import CountingPropagator
from repro.bcp.watched import WatchedPropagator
from repro.verify.verification import verify_proof_v2

from benchmarks.conftest import (
    TableCollector,
    register_collector,
    solved_instance,
)

ABLATION_INSTANCES = ("eq_add8", "barrel5", "w6_10", "pipe_2")
ENGINES = {"watched": WatchedPropagator, "counting": CountingPropagator}

_table = register_collector(TableCollector(
    "Ablation: BCP engine in the verifier",
    f"{'Name':<10} {'engine':<9} {'time(s)':>9} {'checked':>8}"))


@pytest.mark.parametrize("name", ABLATION_INSTANCES)
@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_verifier_engine(benchmark, name, engine):
    data = solved_instance(name)

    report = benchmark.pedantic(
        verify_proof_v2, args=(data.formula, data.proof),
        kwargs={"engine_cls": ENGINES[engine]}, rounds=1, iterations=1)

    assert report.ok
    _table.add(f"{name:<10} {engine:<9} "
               f"{report.verification_time:>9.3f} "
               f"{report.num_checked:>8,}")
