"""Ablation: learning schemes — local vs global conflict clauses (§5).

The paper's size dichotomy: 1UIP produces *local* clauses (few
resolutions, more literals), the decision scheme produces *global*
clauses (many resolutions, fewer literals), and BerkMin's mix sits in
between.  The printed rows show how the scheme moves the
conflict-literals vs resolution-nodes balance on the same instance.
"""

import pytest

from repro.benchgen.registry import INSTANCES
from repro.proofs.sizes import compare_proof_sizes
from repro.solver.cdcl import SolverOptions, solve

from benchmarks.conftest import TableCollector, register_collector

# Instances where even pure decision learning converges quickly (the
# scheme is dramatically weaker as a *search* strategy on some miters,
# which is itself a finding — see EXPERIMENTS.md).
ABLATION_INSTANCES = ("php6", "stack8_8")
SCHEMES = ("1uip", "decision", "hybrid", "adaptive")
MAX_CONFLICTS = 50_000

_table = register_collector(TableCollector(
    "Ablation: learning scheme vs proof shape",
    f"{'Name':<10} {'scheme':<9} {'conflicts':>10} {'ConflLits':>10} "
    f"{'ResNodes':>10} {'Ratio%':>7}"))


@pytest.mark.parametrize("name", ABLATION_INSTANCES)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_learning_scheme(benchmark, name, scheme):
    formula = INSTANCES[name].build()
    options = SolverOptions(learning=scheme, heuristic="berkmin",
                            max_conflicts=MAX_CONFLICTS)

    result = benchmark.pedantic(
        solve, args=(formula, options), rounds=1, iterations=1)

    assert result.is_unsat
    sizes = compare_proof_sizes(result.log)
    _table.add(
        f"{name:<10} {scheme:<9} {result.stats.conflicts:>10,} "
        f"{sizes.conflict_proof_literals:>10,} "
        f"{sizes.resolution_graph_nodes:>10,} "
        f"{sizes.ratio_percent:>7.1f}")
