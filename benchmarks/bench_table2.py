"""Benchmark: Table 2 — proof verification and proof size comparison.

Measures verification time per instance (the paper's column) and prints
the resolution-graph node count vs the conflict-clause literal count
with their ratio — the paper's central size comparison.
"""

import pytest

from repro.benchgen.registry import INSTANCES, TABLE2_INSTANCES
from repro.proofs.sizes import compare_proof_sizes
from repro.verify.verification import verify_proof_v2

from benchmarks.conftest import (
    TableCollector,
    register_collector,
    solved_instance,
)

_table = register_collector(TableCollector(
    "Table 2. Proof verification",
    f"{'Name':<12} {'Verif(s)':>9} {'ResNodes':>11} {'ConflLits':>11} "
    f"{'Ratio%':>7}  paper-analog"))


@pytest.mark.parametrize("name", TABLE2_INSTANCES)
def test_proof_verification(benchmark, name):
    data = solved_instance(name)

    report = benchmark.pedantic(
        verify_proof_v2, args=(data.formula, data.proof),
        rounds=1, iterations=1)

    assert report.ok
    sizes = compare_proof_sizes(data.log)
    _table.add(
        f"{name:<12} {report.verification_time:>9.2f} "
        f"{sizes.resolution_graph_nodes:>11,} "
        f"{sizes.conflict_proof_literals:>11,} "
        f"{sizes.ratio_percent:>7.1f}  {INSTANCES[name].paper_analog}")
