"""Benchmark: rebuild vs incremental vs parallel Proof_verification1.

Measures what the incremental backward engine buys on the paper's
Table 1 instances: wall-clock verification time plus the engine's
propagation counters (assignments, watch visits, clause visits, purged
watch entries).  The ``rebuild`` rows re-pay the full unit pass per
check; ``incremental`` keeps the persistent root trail and retires
clauses behind the moving ceiling; ``arena`` runs the incremental
checker on the flat clause-arena engine (blocker literals skip clause
bodies — visible in the ``clause_visits`` column); ``parallel`` shards
the incremental checker across a process pool, and ``arena-parallel``
does the same with the clause database in one zero-copy shared-memory
arena.

The ``vector`` variant runs the numpy kernel (skipped when numpy is
not installed); the ``arena-forward``/``vector-forward`` pair is the
rebuild-mode forward pass where the vectorized frontier batching pays
off most — the speedup row the vector engine's acceptance rests on.

The ``streaming`` family is different in kind: deletion-chain traces
(``repro.benchgen.deletion_chain``) checked by the one-pass
bounded-memory driver (``repro verify-stream``) under a
``max_live_clauses`` cap set ~10x below the trace's addition volume —
the record proves the over-cap proof verifies inside the budget and
logs the live-window peak and window-shift count alongside the usual
medians.

Runs in two forms:

* under pytest (``pytest benchmarks/ --benchmark-only``) as table rows
  alongside the other paper-table benchmarks;
* standalone (``python benchmarks/bench_backward_incremental.py``),
  appending one JSON record per (instance, variant) to
  ``BENCH_verification.json`` for trend tracking in CI.  Standalone
  wall times are the **median of ``--repeats`` runs** (default 3;
  single-shot times on a noisy runner swing by ±25%), all raw times
  are kept in the record, and each invocation stamps an
  ``environment`` record (python/numpy/platform) so speedup rows can
  be traced to the stack that produced them.  Every row family also
  carries memory columns — measured ``peak_rss_bytes`` (kernel
  watermark reset per repeat where supported) and, for arena-backed
  engines, the ``arena_peak_bytes`` pool high-water mark — and the
  ``--overhead-instance`` record bounds both the metrics-only and the
  background-memory-sampler instrumentation cost.
"""

import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # standalone: make src/ + repo root importable
    for path in (REPO_ROOT / "src", REPO_ROOT):
        if str(path) not in sys.path:
            sys.path.insert(0, str(path))

import pytest

from repro.obs import (
    MemSampler,
    MetricsRegistry,
    Obs,
    metrics_document,
    read_rss,
    reset_peak_rss,
)
from repro.verify.parallel import default_jobs
from repro.verify.verification import verify_proof_v1

from benchmarks.conftest import (
    TableCollector,
    register_collector,
    solved_instance,
)

INCREMENTAL_INSTANCES = ("eq_add8", "barrel5", "stack8_8", "w6_10",
                         "pipe_2")

# variant -> (engine, mode, order, parallel).  The ``*-forward``
# variants check in chronological order with per-check rebuilds: early
# checks then see tiny clause prefixes, which is where the vector
# kernel's per-literal ceiling cut and frontier batching win biggest.
VARIANT_SPECS = {
    "rebuild": (None, "rebuild", "backward", False),
    "incremental": (None, "incremental", "backward", False),
    "arena": ("arena", "incremental", "backward", False),
    "vector": ("vector", "incremental", "backward", False),
    "vector-inc": ("vector-inc", "incremental", "backward", False),
    "parallel": (None, "incremental", "backward", True),
    "arena-parallel": ("arena", "incremental", "backward", True),
    "arena-parallel-contiguous": ("arena", "incremental", "backward",
                                  True),
    "arena-forward": ("arena", "rebuild", "forward", False),
    "vector-forward": ("vector", "rebuild", "forward", False),
}
VARIANTS = tuple(VARIANT_SPECS)

#: variants that need the numpy install
_NUMPY_ENGINES = ("vector", "vector-inc")

#: variant -> forced ``REPRO_SHARD_PLANNER`` value.  The parallel
#: variants pin the planner explicitly so the pair of rows
#: (``arena-parallel`` = cost planner, ``arena-parallel-contiguous`` =
#: legacy equal-count split) is a controlled comparison regardless of
#: the caller's environment.
VARIANT_PLANNER = {
    "parallel": "cost",
    "arena-parallel": "cost",
    "arena-parallel-contiguous": "contiguous",
}

# The vector-vs-arena speedup demonstration (standalone runs): a
# pipe-family instance big enough that per-round numpy overhead
# amortizes.  Smaller instances (vliw, dlx_2) stay at parity — that is
# expected, not a regression; see docs/verification.md.
SPEEDUP_INSTANCES = ("pipe_5",)
SPEEDUP_VARIANTS = ("arena-forward", "vector-forward")

# The backward-incremental pair (standalone runs): the same pipe-family
# instance checked backward in incremental mode across the engine
# ladder, plus the planner-vs-contiguous parallel pair whose
# attribution rows (predicted/measured skew, utilization) demonstrate
# what the cost-model scheduler buys.  ``vector-inc`` is the batched
# retraction kernel this family exists to measure; its record is
# stamped with ``speedup_vs_arena`` (median ratio against the arena
# row) and the planner rows with ``skew_vs_contiguous``.
BACKWARD_PAIR_INSTANCES = ("pipe_5",)
BACKWARD_PAIR_VARIANTS = ("arena", "vector-inc",
                          "arena-parallel", "arena-parallel-contiguous")

# The streaming family: deletion-chain traces whose addition volume is
# ~10x the live-clause cap they are verified under.  ``chain400`` is
# the acceptance configuration (10 * cap additions through a cap-40
# window), ``chain2000`` matches the CI streaming job, ``chain20000``
# is the throughput row.  (name -> n_vars, window, max_live_clauses)
STREAMING_SPECS = {
    "chain400": (400, 8, 40),
    "chain2000": (2000, 8, 200),
    "chain20000": (20000, 16, 2000),
}
STREAMING_ENGINES = ("watched", "arena", "vector")


def _numpy_version():
    try:
        import numpy
    except ImportError:
        return None
    return numpy.__version__


class _PeakRssMeter:
    """Per-repeat peak-RSS bookkeeping for the standalone records.

    On Linux, :func:`repro.obs.reset_peak_rss` clears the kernel's
    ``VmHWM`` watermark before each timed repeat so :func:`read_rss`
    afterwards reports the peak attributable to *that* repeat.  Where
    the reset is unsupported the peaks are cumulative across the whole
    invocation; the record says so via ``peak_rss_reset`` so trend
    tooling knows which comparisons are honest.  The two procfs
    touches per repeat are far below timer resolution.
    """

    def __init__(self):
        self.peaks: list[int] = []
        self.reset_ok = True

    def before_repeat(self) -> None:
        self.reset_ok = reset_peak_rss() and self.reset_ok

    def after_repeat(self) -> None:
        reading = read_rss()
        if reading is not None:
            self.peaks.append(reading[1])

    def fields(self) -> dict:
        if not self.peaks:
            return {"peak_rss_bytes": None, "peak_rss_reset": False}
        return {"peak_rss_bytes": max(self.peaks),
                "peak_rss_reset": self.reset_ok}


def _arena_peak_bytes(metrics: MetricsRegistry) -> int | None:
    """The high-water arena pool size a metrics-attached run recorded
    (gauge ``repro_mem_arena_pool_bytes``); None for engines without an
    arena or runs that never published the gauge."""
    entry = metrics.snapshot().get("repro_mem_arena_pool_bytes")
    if entry is None:
        return None
    return entry["value"]["max"]

_table = register_collector(TableCollector(
    "Backward verification1: rebuild vs incremental vs arena "
    "vs parallel",
    f"{'Name':<10} {'variant':<15} {'jobs':>4} {'time(s)':>8} "
    f"{'assigns':>10} {'watch_vis':>10} {'clause_vis':>10} "
    f"{'purged':>8}"))

# rebuild-variant counters per instance, for the reduction assertion.
_rebuild_counters: dict[str, dict[str, int]] = {}


def run_variant(formula, proof, variant: str, jobs: int, obs=None):
    import os

    engine, mode, order, parallel = VARIANT_SPECS[variant]
    planner = VARIANT_PLANNER.get(variant)
    if planner is None:
        return verify_proof_v1(formula, proof, engine, order=order,
                               mode=mode, jobs=jobs if parallel else 1,
                               obs=obs)
    previous = os.environ.get("REPRO_SHARD_PLANNER")
    os.environ["REPRO_SHARD_PLANNER"] = planner
    try:
        return verify_proof_v1(formula, proof, engine, order=order,
                               mode=mode, jobs=jobs if parallel else 1,
                               obs=obs)
    finally:
        if previous is None:
            os.environ.pop("REPRO_SHARD_PLANNER", None)
        else:
            os.environ["REPRO_SHARD_PLANNER"] = previous


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("name", INCREMENTAL_INSTANCES)
def test_backward_incremental(benchmark, name, variant):
    if VARIANT_SPECS[variant][0] in _NUMPY_ENGINES \
            and _numpy_version() is None:
        pytest.skip("vector engine needs numpy (repro[fast])")
    data = solved_instance(name)
    jobs = default_jobs() if VARIANT_SPECS[variant][3] else 1

    report = benchmark.pedantic(
        run_variant, args=(data.formula, data.proof, variant, jobs),
        rounds=1, iterations=1)

    assert report.ok
    assert report.num_checked == len(data.proof)
    counters = report.bcp_counters
    if variant == "rebuild":
        _rebuild_counters[name] = counters
    elif variant == "incremental" and name in _rebuild_counters:
        base = _rebuild_counters[name]
        assert counters["assignments"] + counters["watch_visits"] \
            < base["assignments"] + base["watch_visits"], (
            "incremental mode must reduce propagation work vs rebuild")
    _table.add(
        f"{name:<10} {variant:<15} {jobs:>4} "
        f"{report.verification_time:>8.3f} "
        f"{counters['assignments']:>10,} "
        f"{counters['watch_visits']:>10,} "
        f"{counters['clause_visits']:>10,} {counters['purged']:>8,}")


# -- standalone entry point ---------------------------------------------------

def bench_records(instances, jobs: int, repeats: int = 3,
                  variants=VARIANTS) -> list[dict]:
    """One record per (instance, variant), ready for JSON appending.

    Each variant is run ``repeats`` times and the recorded
    ``verification_time`` is the **median** (all raw times are kept in
    ``times``) — single-shot wall times on shared runners are noise.
    Each record also carries the report's per-phase ``stats``
    breakdown — the same numbers the CLI's ``--stats`` footer prints —
    so the trend log separates setup from check time, plus the memory
    columns: ``peak_rss_bytes`` (max measured peak across the timed
    repeats, watermark-reset per repeat where the kernel allows) and,
    for arena-backed engines, ``arena_peak_bytes`` from an untimed
    metrics-attached run.
    """
    repeats = max(1, repeats)
    records = []
    for name in instances:
        data = solved_instance(name)
        for variant in variants:
            if VARIANT_SPECS[variant][0] in _NUMPY_ENGINES \
                    and _numpy_version() is None:
                print(f"{name:<10} {variant:<15} skipped: vector "
                      "engine needs numpy (repro[fast])")
                continue
            used_jobs = jobs if VARIANT_SPECS[variant][3] else 1
            times = []
            report = None
            rss = _PeakRssMeter()
            for _ in range(repeats):
                rss.before_repeat()
                report = run_variant(data.formula, data.proof, variant,
                                     used_jobs)
                assert report.ok, f"{name}/{variant} failed verification"
                times.append(report.verification_time)
                rss.after_repeat()
            stats = (report.stats.as_dict()
                     if report.stats is not None else None)
            # Parallel variants get one extra *untimed* instrumented
            # run so the record carries pool attribution (utilization,
            # skew, stragglers) without instrumenting the timed
            # repeats; arena-backed engines piggyback their peak pool
            # gauge on the same run (or get their own untimed metrics
            # run when sequential).
            attribution = None
            arena_peak = None
            plan_fields = {}
            arena_engine = VARIANT_SPECS[variant][0] in (
                "arena", "vector", "vector-inc")
            if used_jobs > 1:
                from repro.verify.parallel import planned_shards

                plan = planned_shards(
                    data.formula, data.proof, used_jobs,
                    mode=VARIANT_SPECS[variant][1],
                    planner=VARIANT_PLANNER.get(variant))
                plan_fields = {
                    "predicted_skew": round(plan.predicted_skew(), 4),
                    "num_shards": len(plan.shards)}
                from repro.obs import Tracer
                from repro.obs.timeline import attribution_summary

                traced = Obs(tracer=Tracer(),
                             metrics=MetricsRegistry())
                attributed = run_variant(data.formula, data.proof,
                                         variant, used_jobs,
                                         obs=traced)
                assert attributed.ok
                arena_peak = _arena_peak_bytes(traced.metrics)
                attribution = attribution_summary(traced.tracer.events)
                if attribution is not None:
                    # The per-shard rows are bulky; the trend log only
                    # needs the pool-efficiency summary.
                    attribution = {
                        k: attribution[k]
                        for k in ("utilization", "skew_ratio",
                                  "workers")}
            elif arena_engine:
                metered = Obs(metrics=MetricsRegistry())
                gauged = run_variant(data.formula, data.proof, variant,
                                     1, obs=metered)
                assert gauged.ok
                arena_peak = _arena_peak_bytes(metered.metrics)
            median = statistics.median(times)
            records.append({
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                           time.gmtime()),
                "instance": name,
                "variant": variant,
                "mode": report.mode,
                "engine": report.engine,
                "jobs": report.jobs,
                "ok": report.ok,
                "num_checked": report.num_checked,
                "verification_time": round(median, 6),
                "repeats": repeats,
                "times": [round(t, 6) for t in times],
                "counters": report.bcp_counters,
                "stats": stats,
                "planner": VARIANT_PLANNER.get(variant),
                **plan_fields,
                "attribution": attribution,
                "arena_peak_bytes": arena_peak,
                **rss.fields(),
            })
            print(f"{name:<10} {variant:<15} jobs={report.jobs} "
                  f"engine={report.engine} "
                  f"median={median:.3f}s of {len(times)} "
                  f"assignments={report.bcp_counters['assignments']:,} "
                  f"watch_visits={report.bcp_counters['watch_visits']:,} "
                  f"clause_visits="
                  f"{report.bcp_counters['clause_visits']:,}")
    return records


def streaming_records(names, repeats: int = 3,
                      engines=STREAMING_ENGINES) -> list[dict]:
    """One record per (chain instance, engine) for the streaming family.

    Each trace is written to a temp directory with
    :func:`repro.benchgen.write_deletion_chain_drup` (streamed, never
    materialized) and checked with :func:`repro.verify.verify_stream`
    under a ``max_live_clauses`` budget ~10x below the addition count.
    The recorded ``over_cap_factor`` is that ratio; every record
    asserts the proof verified *correct* inside the cap.
    """
    import tempfile

    from repro.benchgen.streaming import (
        deletion_chain_formula,
        write_deletion_chain_drup,
    )
    from repro.verify.budget import CheckBudget
    from repro.verify.streaming import verify_stream

    repeats = max(1, repeats)
    records = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-stream-") \
            as workdir:
        for name in names:
            n_vars, window, cap = STREAMING_SPECS[name]
            formula = deletion_chain_formula(n_vars)
            trace = Path(workdir) / f"{name}.drup"
            info = write_deletion_chain_drup(trace, n_vars,
                                             window=window)
            for engine in engines:
                if engine == "vector" and _numpy_version() is None:
                    print(f"{name:<10} streaming/{engine:<8} skipped: "
                          "vector engine needs numpy (repro[fast])")
                    continue
                times = []
                report = None
                rss = _PeakRssMeter()
                for _ in range(repeats):
                    rss.before_repeat()
                    report = verify_stream(
                        formula, trace, engine_cls=engine,
                        budget=CheckBudget(max_live_clauses=cap))
                    assert report.ok, \
                        f"{name}/{engine} failed streaming verification"
                    times.append(report.verification_time)
                    rss.after_repeat()
                assert report.num_additions == info["additions"]
                # One untimed metrics-attached run for the arena
                # gauges the streaming driver records at every window
                # shift and at the verdict.
                arena_peak = None
                if engine in ("arena", "vector"):
                    metered = Obs(metrics=MetricsRegistry())
                    gauged = verify_stream(
                        formula, trace, engine_cls=engine,
                        budget=CheckBudget(max_live_clauses=cap),
                        obs=metered)
                    assert gauged.ok
                    arena_peak = _arena_peak_bytes(metered.metrics)
                median = statistics.median(times)
                records.append({
                    "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                               time.gmtime()),
                    "kind": "streaming",
                    "instance": name,
                    "variant": f"streaming-{engine}",
                    "engine": report.engine,
                    "n_vars": n_vars,
                    "window": window,
                    "max_live_clauses": cap,
                    "over_cap_factor": round(
                        info["additions"] / cap, 2),
                    "ok": report.ok,
                    "additions": report.num_additions,
                    "deletions": report.num_deletions,
                    "peak_live_clauses": report.peak_live_clauses,
                    "window_shifts": report.window_shifts,
                    "verification_time": round(median, 6),
                    "repeats": repeats,
                    "times": [round(t, 6) for t in times],
                    "counters": report.bcp_counters,
                    "stats": (report.stats.as_dict()
                              if report.stats is not None else None),
                    "arena_peak_bytes": arena_peak,
                    **rss.fields(),
                })
                print(f"{name:<10} streaming/{engine:<8} "
                      f"median={median:.3f}s of {len(times)} "
                      f"additions={report.num_additions:,} "
                      f"(cap {cap}, "
                      f"{info['additions'] / cap:.0f}x over) "
                      f"peak_live={report.peak_live_clauses:,} "
                      f"shifts={report.window_shifts}")
    return records


def speedup_lines(records: list[dict]) -> list[str]:
    """Per-instance vector-vs-arena median ratios for the forward pair.

    The ratio is also stamped into the ``vector-forward`` record as
    ``speedup_vs_arena`` so the trend log keeps the claim queryable.
    """
    medians: dict[tuple[str, str], dict] = {
        (r["instance"], r["variant"]): r for r in records
        if "variant" in r}
    lines = []
    for (name, variant), rec in medians.items():
        if variant != "vector-forward":
            continue
        base = medians.get((name, "arena-forward"))
        if base is None or not rec["verification_time"]:
            continue
        ratio = (base["verification_time"]
                 / rec["verification_time"])
        rec["speedup_vs_arena"] = round(ratio, 3)
        lines.append(
            f"{name}: arena-forward {base['verification_time']:.3f}s "
            f"/ vector-forward {rec['verification_time']:.3f}s "
            f"= {ratio:.2f}x")
    return lines


def backward_pair_lines(records: list[dict]) -> list[str]:
    """Stamp + summarize the backward-incremental pair records.

    Two claims, both stamped into the records so the trend log keeps
    them queryable:

    * ``speedup_vs_arena`` on the ``vector-inc`` row — median wall
      ratio of the batched retraction kernel against the arena
      baseline on the same instance (sequential incremental backward).
    * ``skew_vs_contiguous`` on the ``arena-parallel`` (cost planner)
      row — measured shard-skew ratio of the cost-planned run against
      the contiguous split's, from the untimed attribution runs
      (values < 1.0 mean the planner flattened the pool).
    """
    by_key: dict[tuple[str, str], dict] = {
        (r["instance"], r["variant"]): r for r in records
        if "variant" in r}
    lines = []
    for (name, variant), rec in by_key.items():
        if variant == "vector-inc":
            base = by_key.get((name, "arena"))
            if base is None or not rec["verification_time"]:
                continue
            ratio = (base["verification_time"]
                     / rec["verification_time"])
            rec["speedup_vs_arena"] = round(ratio, 3)
            lines.append(
                f"{name}: arena {base['verification_time']:.3f}s / "
                f"vector-inc {rec['verification_time']:.3f}s "
                f"= {ratio:.2f}x (incremental backward)")
        elif variant == "arena-parallel":
            contiguous = by_key.get((name,
                                     "arena-parallel-contiguous"))
            planned_attr = rec.get("attribution") or {}
            contig_attr = ((contiguous or {}).get("attribution")
                           or {})
            planned_skew = planned_attr.get("skew_ratio")
            contig_skew = contig_attr.get("skew_ratio")
            if not planned_skew or not contig_skew:
                continue
            rec["skew_vs_contiguous"] = round(
                planned_skew / contig_skew, 3)
            predicted = rec.get("predicted_skew")
            contig_predicted = (contiguous or {}).get("predicted_skew")
            predicted_note = ""
            if predicted and contig_predicted:
                rec["predicted_skew_vs_contiguous"] = round(
                    predicted / contig_predicted, 3)
                predicted_note = (
                    f"; predicted skew {predicted:.2f} vs "
                    f"{contig_predicted:.2f}")
            lines.append(
                f"{name}: measured shard skew cost-planned "
                f"{planned_skew:.2f} vs contiguous {contig_skew:.2f} "
                f"({rec['skew_vs_contiguous']:.2f}x), utilization "
                f"{planned_attr.get('utilization'):.2f} vs "
                f"{contig_attr.get('utilization'):.2f}"
                + predicted_note)
    return lines


def environment_record() -> dict:
    """The stack a bench invocation ran on — numpy version above all,
    since the vector rows are meaningless without it."""
    import os
    import platform

    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "kind": "environment",
        "python": platform.python_version(),
        "numpy": _numpy_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def overhead_record(name: str, repeats: int = 3,
                    mem_period: float = 0.05) -> dict:
    """Measure what attaching instrumentation costs on one instance.

    Runs the incremental variant ``repeats`` times plain (``obs=None``,
    the disabled fast path), ``repeats`` times with a metrics registry
    attached, and ``repeats`` times with the metrics registry *plus* a
    background :class:`~repro.obs.MemSampler` ticking every
    ``mem_period`` seconds; takes the best of each (noise floor) and
    reports the enabled-vs-disabled overheads.  The
    ``enabled_overhead_pct`` number is the "disabled means free" CI
    gate (memory sampling never attaches unless asked for, so the
    metrics-only row is the cost every instrumented run pays);
    ``mem_sampler_overhead_pct`` bounds the sampling thread on top of
    that.  The instrumented run's metrics document (schema
    ``repro.obs.metrics/v1`` — the same artifact ``repro verify
    --metrics-out`` writes) is embedded so the trend log carries the
    full metric set.
    """
    data = solved_instance(name)
    disabled = min(
        run_variant(data.formula, data.proof,
                    "incremental", 1).verification_time
        for _ in range(repeats))
    enabled_times = []
    doc = None
    for _ in range(repeats):
        obs = Obs(metrics=MetricsRegistry())
        report = run_variant(data.formula, data.proof, "incremental",
                             1, obs=obs)
        assert report.ok
        enabled_times.append(report.verification_time)
        doc = metrics_document(
            obs.metrics,
            run={"id": obs.run_id, "command": "bench", "instance": name},
            stats=report.stats.as_dict())
    enabled = min(enabled_times)
    mem_times = []
    mem_samples = 0
    for _ in range(repeats):
        sampler = MemSampler()
        obs = Obs(metrics=MetricsRegistry(), mem=sampler)
        sampler.start(mem_period)
        try:
            report = run_variant(data.formula, data.proof,
                                 "incremental", 1, obs=obs)
        finally:
            sampler.stop()
            # Runs shorter than one period still record a reading.
            sampler.sample()
        assert report.ok
        mem_times.append(report.verification_time)
        mem_samples = max(mem_samples, len(sampler.samples))
    mem_enabled = min(mem_times)

    def _pct(value):
        return (round(100.0 * (value - disabled) / disabled, 2)
                if disabled > 0 else None)

    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "kind": "instrumentation_overhead",
        "instance": name,
        "disabled_time": round(disabled, 6),
        "enabled_time": round(enabled, 6),
        "enabled_overhead_pct": _pct(enabled),
        "mem_sampler_time": round(mem_enabled, 6),
        "mem_sampler_period": mem_period,
        "mem_sampler_samples": mem_samples,
        "mem_sampler_overhead_pct": _pct(mem_enabled),
        # The sampler's *marginal* cost over metrics-only — the number
        # the "<3% when not profiling" acceptance gate reads.
        "mem_sampler_marginal_pct": (
            round(100.0 * (mem_enabled - enabled) / enabled, 2)
            if enabled > 0 else None),
        "metrics": doc,
    }


def compare_to_baseline(records: list[dict],
                        baseline: list[dict]) -> list[str]:
    """Per-(instance, variant) time delta vs a prior record list.

    Matches each new record to the latest baseline record of the same
    instance/variant and reports the percent change — the acceptance
    guard for "the disabled path costs nothing".
    """
    latest: dict[tuple[str, str], float] = {}
    for rec in baseline:
        if "instance" in rec and "variant" in rec \
                and "verification_time" in rec:
            latest[(rec["instance"], rec["variant"])] = \
                rec["verification_time"]
    lines = []
    for rec in records:
        key = (rec.get("instance"), rec.get("variant"))
        before = latest.get(key)
        if before is None or not before:
            continue
        delta = 100.0 * (rec["verification_time"] - before) / before
        rec["baseline_delta_pct"] = round(delta, 2)
        lines.append(f"{key[0]}/{key[1]}: {before:.3f}s -> "
                     f"{rec['verification_time']:.3f}s "
                     f"({delta:+.1f}%)")
    return lines


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Benchmark rebuild/incremental/parallel backward "
                    "verification and append records to a JSON log.")
    parser.add_argument("--instances", nargs="*",
                        default=list(INCREMENTAL_INSTANCES),
                        help="registry instance names for the full "
                             "variant sweep (pass no names to skip; "
                             f"default: {' '.join(INCREMENTAL_INSTANCES)})")
    parser.add_argument("--jobs", type=int,
                        default=max(2, default_jobs()),
                        help="worker processes for the parallel variant "
                             "(min 2, so the pool path always runs)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per (instance, variant); the "
                             "recorded time is the median (default 3)")
    parser.add_argument("--speedup-instances", nargs="*",
                        default=list(SPEEDUP_INSTANCES),
                        metavar="NAME",
                        help="instances for the arena-forward vs "
                             "vector-forward speedup pair (pass no "
                             "names to skip; default: "
                             f"{' '.join(SPEEDUP_INSTANCES)})")
    parser.add_argument("--backward-pair-instances", nargs="*",
                        default=list(BACKWARD_PAIR_INSTANCES),
                        metavar="NAME",
                        help="instances for the backward-incremental "
                             "engine-ladder + planner pair (pass no "
                             "names to skip; default: "
                             f"{' '.join(BACKWARD_PAIR_INSTANCES)})")
    parser.add_argument("--streaming-instances", nargs="*",
                        default=list(STREAMING_SPECS),
                        metavar="NAME",
                        help="deletion-chain instances for the "
                             "bounded-memory streaming family (pass "
                             "no names to skip; default: "
                             f"{' '.join(STREAMING_SPECS)})")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_verification.json",
                        help="JSON file to append records to")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="prior record list to diff the disabled-"
                             "path times against (percent deltas are "
                             "stamped into the new records)")
    parser.add_argument("--overhead-instance", default=None,
                        metavar="NAME",
                        help="also measure instrumentation overhead "
                             "(enabled vs disabled obs) on this "
                             "instance and append the record")
    args = parser.parse_args(argv)

    base_variants = tuple(v for v in VARIANTS
                          if v not in SPEEDUP_VARIANTS)
    records = [environment_record()]
    records += bench_records(args.instances, args.jobs,
                             repeats=args.repeats,
                             variants=base_variants)
    if args.speedup_instances:
        records += bench_records(args.speedup_instances, args.jobs,
                                 repeats=args.repeats,
                                 variants=SPEEDUP_VARIANTS)
        for line in speedup_lines(records):
            print(f"speedup: {line}")
    if args.backward_pair_instances:
        records += bench_records(args.backward_pair_instances,
                                 max(4, args.jobs),
                                 repeats=args.repeats,
                                 variants=BACKWARD_PAIR_VARIANTS)
        for line in backward_pair_lines(records):
            print(f"backward-pair: {line}")
    if args.streaming_instances:
        records += streaming_records(args.streaming_instances,
                                     repeats=args.repeats)
    if args.baseline is not None and args.baseline.exists():
        for line in compare_to_baseline(
                records, json.loads(args.baseline.read_text())):
            print(f"baseline: {line}")
    if args.overhead_instance:
        record = overhead_record(args.overhead_instance)
        print(f"instrumentation overhead on {record['instance']}: "
              f"disabled={record['disabled_time']:.3f}s "
              f"enabled={record['enabled_time']:.3f}s "
              f"({record['enabled_overhead_pct']:+.1f}%) "
              f"mem-sampled={record['mem_sampler_time']:.3f}s "
              f"({record['mem_sampler_overhead_pct']:+.1f}%, "
              f"{record['mem_sampler_samples']} samples)")
        records.append(record)
    existing = []
    if args.output.exists():
        existing = json.loads(args.output.read_text())
    existing.extend(records)
    args.output.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"appended {len(records)} records to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
