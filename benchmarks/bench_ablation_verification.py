"""Ablation: Proof_verification1 vs Proof_verification2 (paper §3 vs §4).

The paper's claim: skipping unmarked (redundant) conflict clauses makes
verification cheaper while returning the same verdict — plus a core.
"""

import pytest

from repro.verify.verification import verify_proof_v1, verify_proof_v2

from benchmarks.conftest import (
    TableCollector,
    register_collector,
    solved_instance,
)

ABLATION_INSTANCES = ("eq_add8", "barrel5", "stack8_8", "w6_10",
                      "pipe_2")

_table = register_collector(TableCollector(
    "Ablation: verification1 vs verification2",
    f"{'Name':<10} {'procedure':<14} {'checked':>8} {'skipped':>8} "
    f"{'time(s)':>8}"))


@pytest.mark.parametrize("name", ABLATION_INSTANCES)
@pytest.mark.parametrize("procedure", ["verification1", "verification2"])
def test_verification_procedures(benchmark, name, procedure):
    data = solved_instance(name)
    verify = (verify_proof_v1 if procedure == "verification1"
              else verify_proof_v2)

    report = benchmark.pedantic(
        verify, args=(data.formula, data.proof), rounds=1, iterations=1)

    assert report.ok
    if procedure == "verification2":
        assert report.num_checked <= len(data.proof)
    _table.add(
        f"{name:<10} {procedure:<14} {report.num_checked:>8,} "
        f"{report.num_skipped:>8,} {report.verification_time:>8.3f}")
