"""Benchmark: per-instance proof shape analysis (paper §5).

Classifies the conflict clauses of each instance's proof as local vs
global and reports, per clause, which proof representation would store
it more compactly — the quantitative form of the paper's "the two kinds
of proofs are complementary".
"""

import pytest

from repro.proofs.stats import analyze_log

from benchmarks.conftest import (
    TableCollector,
    register_collector,
    solved_instance,
)

SHAPE_INSTANCES = ("eq_add8", "barrel5", "stack8_8", "longmult_4",
                   "w6_10", "pipe_2")

_table = register_collector(TableCollector(
    "Proof shape analysis (local vs global clauses)",
    f"{'Name':<10} {'|F*|':>7} {'meanLen':>8} {'meanRes':>8} "
    f"{'global%':>8} {'conflWins%':>11}"))


@pytest.mark.parametrize("name", SHAPE_INSTANCES)
def test_proof_shape(benchmark, name):
    data = solved_instance(name)

    stats = benchmark.pedantic(analyze_log, args=(data.log,),
                               rounds=1, iterations=1)

    assert stats.num_clauses == data.log.num_deduced
    _table.add(
        f"{name:<10} {stats.num_clauses:>7,} "
        f"{stats.mean_clause_length:>8.1f} "
        f"{stats.mean_resolutions:>8.1f} "
        f"{100 * stats.global_fraction:>8.1f} "
        f"{100 * stats.conflict_format_wins / stats.num_clauses:>11.1f}")
