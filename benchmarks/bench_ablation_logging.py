"""Ablation: proof logging overhead (§1).

The paper reports that streaming conflict clauses to disk cost about 10%
of BerkMin's runtime.  Our logger keeps full derivation chains in
memory, so the overhead is larger but of the same flavor: this benchmark
quantifies it by solving the same instance with and without logging.
"""

import pytest

from repro.benchgen.registry import INSTANCES
from repro.experiments.runner import berkmin_options
from repro.solver.cdcl import solve

from benchmarks.conftest import TableCollector, register_collector

ABLATION_INSTANCES = ("eq_add8", "barrel5", "stack8_8", "w6_10")

_table = register_collector(TableCollector(
    "Ablation: proof logging overhead",
    f"{'Name':<10} {'logging':<8} {'time(s)':>9} {'conflicts':>10}"))


@pytest.mark.parametrize("name", ABLATION_INSTANCES)
@pytest.mark.parametrize("logging", ["on", "off"])
def test_logging_overhead(benchmark, name, logging):
    formula = INSTANCES[name].build()
    options = berkmin_options(log_proof=(logging == "on"))

    result = benchmark.pedantic(
        solve, args=(formula, options), rounds=1, iterations=1)

    assert result.is_unsat
    assert (result.log is not None) == (logging == "on")
    _table.add(f"{name:<10} {logging:<8} "
               f"{result.stats.solve_time:>9.3f} "
               f"{result.stats.conflicts:>10,}")
