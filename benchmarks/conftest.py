"""Shared infrastructure for the benchmark suite.

Each named instance is generated and solved exactly once per session
(module-level cache); the benchmarks then measure the phases the paper's
tables report — proof verification above all — with
``benchmark.pedantic(rounds=1)`` because a full verification run is
already seconds long and deterministic.

Table rows are accumulated as benchmarks run and printed at the end of
the session, so ``pytest benchmarks/ --benchmark-only`` reproduces the
paper's tables inline.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.benchgen.registry import INSTANCES
from repro.core.formula import CnfFormula
from repro.experiments.runner import berkmin_options
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.proofs.log import ProofLog
from repro.solver.cdcl import solve
from repro.solver.result import SolveResult


@dataclass
class SolvedInstance:
    """A solved-and-logged instance shared by the benchmarks."""

    name: str
    formula: CnfFormula
    result: SolveResult
    proof: ConflictClauseProof

    @property
    def log(self) -> ProofLog:
        return self.result.log


_solved: dict[str, SolvedInstance] = {}


def solved_instance(name: str) -> SolvedInstance:
    """Build + solve an instance once; reuse across benchmarks."""
    if name not in _solved:
        formula = INSTANCES[name].build()
        result = solve(formula, berkmin_options())
        assert result.is_unsat, f"{name} must be UNSAT"
        proof = ConflictClauseProof.from_log(result.log)
        _solved[name] = SolvedInstance(name, formula, result, proof)
    return _solved[name]


class TableCollector:
    """Accumulates printed rows and emits them after the session."""

    def __init__(self, title: str, header: str):
        self.title = title
        self.header = header
        self.rows: list[str] = []

    def add(self, row: str) -> None:
        self.rows.append(row)

    def render(self) -> str:
        width = max([len(self.header)] + [len(r) for r in self.rows]) \
            if self.rows else len(self.header)
        return "\n".join([self.title, self.header, "-" * width]
                         + self.rows)


_collectors: list[TableCollector] = []


def register_collector(collector: TableCollector) -> TableCollector:
    _collectors.append(collector)
    return collector


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter):
    for collector in _collectors:
        if collector.rows:
            terminalreporter.write_line("")
            terminalreporter.write_line(collector.render())
