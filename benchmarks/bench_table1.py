"""Benchmark: Table 1 — unsatisfiable core extraction.

One benchmark per instance of the paper's Table 1.  The measured phase
is ``Proof_verification2`` (marking + core extraction); the printed rows
mirror the paper's columns: |F*|, tested %, initial clauses, core %.
"""

import pytest

from repro.benchgen.registry import INSTANCES, TABLE1_INSTANCES
from repro.verify.verification import verify_proof_v2

from benchmarks.conftest import (
    TableCollector,
    register_collector,
    solved_instance,
)

_table = register_collector(TableCollector(
    "Table 1. Unsatisfiable core extraction",
    f"{'Name':<12} {'|F*|':>9} {'Tested%':>8} {'Clauses':>9} "
    f"{'Core%':>7}  paper-analog"))


@pytest.mark.parametrize("name", TABLE1_INSTANCES)
def test_core_extraction(benchmark, name):
    data = solved_instance(name)

    report = benchmark.pedantic(
        verify_proof_v2, args=(data.formula, data.proof),
        rounds=1, iterations=1)

    assert report.ok
    _table.add(
        f"{name:<12} {len(data.proof):>9,} "
        f"{100 * report.tested_fraction:>8.1f} "
        f"{data.formula.num_clauses:>9,} "
        f"{100 * report.core.fraction:>7.1f}  "
        f"{INSTANCES[name].paper_analog}")
