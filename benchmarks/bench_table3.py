"""Benchmark: Table 3 — growth of resolution proof size (fifo family).

The paper's scaling study: as the fifo8 BMC bound grows, the ratio of
conflict-clause proof size to resolution-graph proof size decreases —
conflict clause proofs win by more on bigger instances.  The measured
phase here is the *resolution graph check*, whose cost (and materialized
literal count) is exactly the growth the paper warns about.
"""

import pytest

from repro.benchgen.registry import INSTANCES, TABLE3_INSTANCES
from repro.proofs.resolution import ResolutionGraphProof
from repro.proofs.sizes import compare_proof_sizes

from benchmarks.conftest import (
    TableCollector,
    register_collector,
    solved_instance,
)

_table = register_collector(TableCollector(
    "Table 3. Growth of resolution proof size (fifo family)",
    f"{'Name':<10} {'ResNodes':>11} {'ConflLits':>11} {'Ratio%':>7} "
    f"{'GraphPeakLits':>14}  paper-analog"))


@pytest.mark.parametrize("name", TABLE3_INSTANCES)
def test_resolution_growth(benchmark, name):
    data = solved_instance(name)
    graph = ResolutionGraphProof.from_log(data.log)

    check = benchmark.pedantic(graph.check, rounds=1, iterations=1)

    assert check.ok
    sizes = compare_proof_sizes(data.log)
    _table.add(
        f"{name:<10} {sizes.resolution_graph_nodes:>11,} "
        f"{sizes.conflict_proof_literals:>11,} "
        f"{sizes.ratio_percent:>7.1f} "
        f"{check.peak_stored_literals:>14,}  "
        f"{INSTANCES[name].paper_analog}")
