#!/usr/bin/env python3
"""Catching a buggy SAT solver — the paper's motivating scenario.

"Due to the growing complexity of the state-of-the-art algorithms it is
unlikely that a SAT-solver will be free of bugs" (Section 1).  This
example simulates three classic solver bugs by corrupting the proof
stream a correct solver produced, and shows Proof_verification1
rejecting each corrupted proof while accepting the honest one.

Run:  python examples/buggy_solver_detection.py
"""

from repro import ConflictClauseProof, solve, verify_proof_v1
from repro.benchgen import pigeonhole


def report_line(tag: str, report) -> None:
    location = (f" (questionable clause at chronological index "
                f"{report.failed_clause_index})"
                if report.failed_clause_index is not None else "")
    print(f"  {tag:<28} -> {report.outcome}{location}")


def main() -> None:
    formula = pigeonhole(4)
    result = solve(formula)
    assert result.is_unsat
    honest = ConflictClauseProof.from_log(result.log)
    print(f"honest proof: {len(honest)} conflict clauses")

    report_line("honest proof", verify_proof_v1(formula, honest))

    # Bug 1: the solver "learned" a clause that does not follow.
    clauses = list(honest.clauses)
    clauses.insert(len(clauses) // 2, (1, 6))  # unjustified clause
    bug1 = ConflictClauseProof(clauses, honest.ending)
    report_line("injected bogus clause", verify_proof_v1(formula, bug1))

    # Bug 2: a learned clause was strengthened (literal dropped) — the
    # classic off-by-one in conflict analysis.
    clauses = [list(c) for c in honest.clauses]
    victim = max(range(len(clauses)), key=lambda i: len(clauses[i]))
    dropped = clauses[victim].pop(0)
    bug2 = ConflictClauseProof([tuple(c) for c in clauses], honest.ending)
    print(f"  (dropped literal {dropped} from clause {victim})")
    report_line("strengthened clause", verify_proof_v1(formula, bug2))

    # Bug 3: proof truncated — the solver claimed UNSAT way too early.
    pair = honest.final_pair()
    bug3 = ConflictClauseProof(list(pair), "final_pair")
    report_line("truncated to final pair", verify_proof_v1(formula, bug3))

    print("\nA correct proof passes; every corruption is either caught or"
          "\nwas logically redundant (in which case the claim still"
          "\nholds).  The user never has to trust the solver.")


if __name__ == "__main__":
    main()
