#!/usr/bin/env python3
"""Combinational equivalence checking with certified UNSAT results.

The scenario behind the paper's c2670/c3540/c5315 instances: prove two
implementations of the same arithmetic function equivalent by refuting
their miter, then *verify the refutation* so a buggy SAT solver cannot
silently sign off a wrong netlist.  Also demonstrates the SAT direction:
an injected bug yields a concrete counterexample vector.

Run:  python examples/equivalence_checking.py
"""

from repro import ConflictClauseProof, solve, verify_proof
from repro.circuits import (
    Circuit,
    carry_select_adder,
    check_equivalence,
    equivalence_formula,
    ripple_carry_adder,
    shift_add_multiplier,
    wallace_multiplier,
)

WIDTH = 6


def buggy_carry_select_adder(width: int) -> Circuit:
    """A carry-select adder with the block-1 carry mux polarity flipped."""
    from repro.circuits.library import _full_adder  # example-only import

    c = Circuit(f"buggy_csa{width}")
    a = c.add_input_bus("a", width)
    b = c.add_input_bus("b", width)
    carry = c.add_input("cin")
    zero = c.CONST0()
    one = c.CONST1()
    block = 3
    position = 0
    while position < width:
        size = min(block, width - position)
        sums = {}
        carries = {}
        for assumed, const in ((0, zero), (1, one)):
            chain = const
            block_sums = []
            for i in range(position, position + size):
                total, chain = _full_adder(c, a[i], b[i], chain)
                block_sums.append(total)
            sums[assumed] = block_sums
            carries[assumed] = chain
        for offset in range(size):
            selected = c.MUX(carry, sums[0][offset], sums[1][offset])
            c.set_output(c.BUF(selected, name=f"s[{position + offset}]"))
        if position == block:  # BUG: swapped select in block 1
            carry = c.MUX(carry, carries[1], carries[0])
        else:
            carry = c.MUX(carry, carries[0], carries[1])
        position += size
    c.set_output(c.BUF(carry, name="cout"))
    return c


def certified_equivalence(left, right) -> None:
    print(f"\n== {left.name} vs {right.name} ==")
    formula = equivalence_formula(left, right)
    print(f"miter CNF: {formula.num_vars} vars, "
          f"{formula.num_clauses} clauses")
    result = solve(formula)
    print(f"solver: {result.status} in {result.stats.conflicts} conflicts")
    assert result.is_unsat
    proof = ConflictClauseProof.from_log(result.log)
    report = verify_proof(formula, proof)
    print(f"proof of equivalence: {report.outcome} "
          f"({len(proof)} clauses, {proof.literal_count()} literals; "
          f"core = {report.core.fraction:.0%} of the miter)")
    assert report.ok


def main() -> None:
    certified_equivalence(ripple_carry_adder(WIDTH),
                          carry_select_adder(WIDTH))
    certified_equivalence(shift_add_multiplier(4), wallace_multiplier(4))

    print("\n== injected bug ==")
    equivalent, counterexample = check_equivalence(
        ripple_carry_adder(WIDTH), buggy_carry_select_adder(WIDTH))
    assert not equivalent
    a = sum(counterexample[f"a[{i}]"] << i for i in range(WIDTH))
    b = sum(counterexample[f"b[{i}]"] << i for i in range(WIDTH))
    cin = int(counterexample["cin"])
    print(f"NOT equivalent — distinguished by a={a}, b={b}, cin={cin}")


if __name__ == "__main__":
    main()
