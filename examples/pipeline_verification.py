#!/usr/bin/env python3
"""Pipelined-microprocessor correspondence with certified proofs.

The scenario behind the paper's hardest instances (5pipe..9pipe, vliw):
prove a pipelined implementation equivalent to its ISA specification
over *all* programs and starting states, then verify the proof and
compare the two proof representations the paper studies.

Run:  python examples/pipeline_verification.py
"""

from repro import (
    ConflictClauseProof,
    ResolutionGraphProof,
    compare_proof_sizes,
    solve,
    verify_proof,
)
from repro.pipelines import MachineSpec, pipeline_formula


def verify_pipeline(depth: int, num_instrs: int,
                    issue_width: int = 1) -> None:
    spec = MachineSpec(num_instrs=num_instrs, num_regs=2, width=2,
                       issue_width=issue_width)
    kind = "VLIW" if issue_width > 1 else "pipeline"
    print(f"\n== {depth}-stage {kind}, {num_instrs} symbolic "
          f"instructions ==")
    formula = pipeline_formula(spec, depth)
    print(f"correspondence CNF: {formula.num_vars} vars, "
          f"{formula.num_clauses} clauses")

    result = solve(formula)
    assert result.is_unsat, "pipeline differs from the ISA spec!"
    print(f"proved equivalent in {result.stats.conflicts} conflicts "
          f"({result.stats.solve_time:.2f}s)")

    proof = ConflictClauseProof.from_log(result.log)
    report = verify_proof(formula, proof)
    assert report.ok
    print(f"proof verified: {report.outcome} "
          f"({report.verification_time:.2f}s, tested "
          f"{report.tested_fraction:.0%} of F*)")

    # The paper's Table 2 comparison, on this instance:
    sizes = compare_proof_sizes(result.log)
    graph = ResolutionGraphProof.from_log(result.log)
    check = graph.check()
    assert check.ok
    print(f"conflict clause proof: {sizes.conflict_proof_literals:,} "
          f"literals | resolution graph: "
          f"{sizes.resolution_graph_nodes:,} nodes "
          f"(ratio {sizes.ratio_percent:.1f}%); checking the graph "
          f"materialized {check.peak_stored_literals:,} literals")


def main() -> None:
    verify_pipeline(depth=2, num_instrs=3)
    verify_pipeline(depth=3, num_instrs=4)
    verify_pipeline(depth=2, num_instrs=4, issue_width=2)


if __name__ == "__main__":
    main()
