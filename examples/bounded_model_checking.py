#!/usr/bin/env python3
"""Bounded model checking with certified UNSAT results.

The scenario behind the paper's barrel/longmult/fifo/w instances: unroll
a transition system to a bound, assert the safety property fails, and
refute the formula.  The UNSAT proof *is* the bounded-correctness
certificate, and the unsat core tells you which part of the design the
proof actually used.

Run:  python examples/bounded_model_checking.py
"""

from repro import ConflictClauseProof, solve, verify_proof
from repro.bmc import (
    arbiter_system,
    fifo_pair_system,
    longmult_instance,
    unroll,
)


def check_system(system, bound: int) -> None:
    print(f"\n== {system.name}, bound {bound} ==")
    instance = unroll(system, bound)
    formula = instance.formula
    print(f"unrolled CNF: {formula.num_vars} vars, "
          f"{formula.num_clauses} clauses "
          f"({system.num_state_bits} state bits x {bound} frames)")
    result = solve(formula)
    print(f"solver: {result.status} in {result.stats.conflicts} conflicts")
    assert result.is_unsat, "property violated within the bound!"
    proof = ConflictClauseProof.from_log(result.log)
    report = verify_proof(formula, proof)
    print(f"certificate: {report.outcome}; tested "
          f"{report.tested_fraction:.0%} of F*, core covers "
          f"{report.core.fraction:.0%} of the unrolling")
    assert report.ok


def check_sequential_equivalence() -> None:
    """Product-machine SEC: a Gray-code counter vs a binary counter
    observed through a Gray encoder — equivalent despite totally
    different state encodings."""
    from repro.bmc import (
        binary_counter_system,
        gray_counter_system,
        product_system,
    )
    from repro.bmc.counters import counters_joint_init

    # Over ALL consistent starting pairs (not just the zero state):
    # frame 0 is symbolic, constrained only by the correspondence
    # predicate "gray state == gray-encoding of binary state".
    product = product_system(
        gray_counter_system(4), binary_counter_system(4),
        joint_init=counters_joint_init(4), free_init=True)
    check_system(product, bound=12)

    print("\n== injected bug (carry dropped in the binary counter) ==")
    buggy = product_system(gray_counter_system(4),
                           binary_counter_system(4, buggy=True))
    from repro.bmc import unroll as _unroll
    result = solve(_unroll(buggy, 12).formula)
    assert result.is_sat
    print("counters diverge — counterexample trace exists "
          f"(found in {result.stats.conflicts} conflicts)")


def main() -> None:
    # A round-robin arbiter: grants stay mutually exclusive.
    check_system(arbiter_system(5), bound=8)

    # Sequential equivalence of two counter implementations.
    check_sequential_equivalence()

    # Two FIFO implementations stay in agreement on any input stream.
    check_system(fifo_pair_system(4), bound=6)

    # A sequential multiplier matches a combinational reference on one
    # output bit (the paper's longmult construction).
    print("\n== longmult (sequential vs Wallace multiplier, bit 5) ==")
    formula = longmult_instance(4, 5)
    result = solve(formula)
    print(f"solver: {result.status} in {result.stats.conflicts} conflicts")
    assert result.is_unsat
    report = verify_proof(formula,
                          ConflictClauseProof.from_log(result.log))
    print(f"certificate: {report.outcome}")
    assert report.ok


if __name__ == "__main__":
    main()
