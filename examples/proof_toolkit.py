#!/usr/bin/env python3
"""The proof toolkit: trimming, statistics, reconstruction, lifting.

Everything that falls out of the paper's machinery beyond plain
verification:

* **trimming** (§4 corollary) — drop the conflict clauses the marking
  pass never touched;
* **statistics** (§5) — classify clauses as local vs global and see
  which proof format each clause prefers;
* **proof insight** — capture the proof dependency graph from the
  verifier's own conflict analysis, export it as JSONL + Graphviz
  DOT, and recompute the §5 shape quantities from that evidence
  alone (docs/proof_insight.md);
* **reconstruction** (§5) — make the implicit resolution graph explicit
  from a conflict clause proof alone, and check it;
* **preprocessing with proof lifting** — simplify the formula first,
  then stitch the preprocessor's deductions onto the solver's proof so
  the combined proof verifies against the *original* formula;
* **k-induction** — two verified UNSAT proofs certify an unbounded
  safety property.

Run:  python examples/proof_toolkit.py
"""

import os
import tempfile

from repro import (
    ConflictClauseProof,
    analyze_log,
    reconstruct_resolution_graph,
    solve,
    solve_with_preprocessing,
    trim_proof,
    verify_proof,
)
from repro.benchgen import pigeonhole
from repro.bmc import arbiter_system, prove_by_induction
from repro.obs import Obs
from repro.obs.insight import (
    analyze_proof_shape,
    depgraph_records,
    estimated_resolutions,
    is_local,
    write_depgraph_dot,
    write_depgraph_jsonl,
)


def main() -> None:
    formula = pigeonhole(5)
    result = solve(formula)
    assert result.is_unsat
    proof = ConflictClauseProof.from_log(result.log)
    print(f"php5 proof: {len(proof)} clauses, "
          f"{proof.literal_count()} literals")

    # -- trimming ------------------------------------------------------
    trim = trim_proof(formula, proof)
    print(f"trimmed: kept {len(trim.trimmed)} clauses "
          f"(-{trim.clauses_removed} clauses, "
          f"-{trim.literals_removed} literals); "
          f"re-verifies: {verify_proof(formula, trim.trimmed).ok}")

    # -- statistics ------------------------------------------------------
    stats = analyze_log(result.log)
    print(f"clause shapes: mean length {stats.mean_clause_length:.1f}, "
          f"mean resolutions {stats.mean_resolutions:.1f}; "
          f"{stats.global_clauses}/{stats.num_clauses} global; "
          f"conflict format wins for {stats.conflict_format_wins} "
          "clauses")

    # -- proof insight: provenance + shape from the verifier ---------------
    obs = Obs.enabled(depgraph=True)
    report = verify_proof(formula, proof, obs=obs)
    assert report.ok
    with tempfile.TemporaryDirectory() as tmp:
        jsonl = os.path.join(tmp, "php5.depgraph.jsonl")
        lines = write_depgraph_jsonl(
            jsonl, obs.depgraph, {"id": obs.run_id},
            num_input=formula.num_clauses, num_proof=len(proof),
            procedure=report.procedure, mode=report.mode)
        write_depgraph_dot(os.path.join(tmp, "php5.depgraph.dot"), lines)
    print(f"dependency graph: {obs.depgraph.num_checks} checked clauses, "
          f"{obs.depgraph.num_edges} antecedent edges "
          "(exported as JSONL + DOT)")

    shape = analyze_proof_shape(proof, report, obs.depgraph)
    print(f"shape from verifier evidence: {shape.local_clauses} local / "
          f"{shape.global_clauses} global; "
          f"~{shape.estimated_resolution_nodes} resolution nodes vs "
          f"{shape.proof_literals} proof literals "
          f"({shape.ratio_percent:.1f}%)")

    # The local/global call, spelled out for one clause: support with k
    # antecedents means ~max(k-1, 1) trivial-resolution steps, and a
    # clause is local when that stays within twice its own length.
    record = depgraph_records(obs.depgraph)[0]
    clause = proof[record["index"]]
    k = len(record["antecedents"])
    print(f"first checked clause {clause}: {k} antecedents -> "
          f"~{estimated_resolutions(k)} resolutions over "
          f"{len(clause)} literals; local: {is_local(k, len(clause))}")

    # -- resolution graph reconstruction ----------------------------------
    rebuilt = reconstruct_resolution_graph(formula, proof)
    check = rebuilt.graph.check()
    print(f"reconstructed resolution graph: {rebuilt.graph.node_count} "
          f"nodes, checks ok: {check.ok}, "
          f"{rebuilt.strengthened} clauses came out strengthened")

    # -- preprocessing + proof lifting --------------------------------------
    padded = pigeonhole(4)
    base_vars = padded.num_vars
    padded.add_clause([base_vars + 1])
    padded.add_clause([-(base_vars + 1), base_vars + 2])
    solved, pre, lifted = solve_with_preprocessing(padded)
    print(f"preprocessing: derived {len(pre.derived_units)} units, "
          f"removed {len(pre.removed_clause_indices)} clauses; "
          f"lifted proof verifies against the original: "
          f"{verify_proof(padded, lifted).ok}")

    # -- k-induction -------------------------------------------------------
    induction = prove_by_induction(arbiter_system(4), k=1)
    print(f"arbiter mutual exclusion proved for ALL bounds by "
          f"1-induction: {induction.proved}; both certificates "
          f"verify: {induction.verify_certificates()}")


if __name__ == "__main__":
    main()
