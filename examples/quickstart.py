#!/usr/bin/env python3
"""Quickstart: solve, log a proof, verify it, extract an unsat core.

The complete workflow of the paper in ~40 lines:

1. a CDCL solver refutes a CNF formula while streaming its conflict
   clauses (the proof ``F*``);
2. an independent checker replays each conflict clause with BCP
   (``Proof_verification2``) and accepts or rejects the proof;
3. the clauses of the original formula marked during verification form
   an unsatisfiable core — for free.

Run:  python examples/quickstart.py
"""

from repro import (
    CnfFormula,
    ConflictClauseProof,
    solve,
    validate_core,
    verify_proof,
)


def main() -> None:
    # The formula: pigeonhole-style contradiction over 3 variables,
    # plus two irrelevant clauses that should stay out of the core.
    formula = CnfFormula([
        [1, 2], [1, -2], [-1, 2], [-1, -2],   # the real contradiction
        [3, 4], [-3, 4],                       # padding
    ])
    print(f"formula: {formula}")

    result = solve(formula)
    print(f"solver verdict: {result.status} "
          f"({result.stats.conflicts} conflicts, "
          f"{result.stats.decisions} decisions)")
    assert result.is_unsat

    # Export the conflict clause proof (chronological F*, ending with
    # the final conflicting pair).
    proof = ConflictClauseProof.from_log(result.log)
    print(f"proof: {len(proof)} conflict clauses, "
          f"{proof.literal_count()} literals, ends with "
          f"{proof.final_pair()}")

    # Verify it — this is the paper's Proof_verification2.
    report = verify_proof(formula, proof)
    print(f"verification: {report.outcome} "
          f"(checked {report.num_checked}/{report.num_proof_clauses} "
          f"clauses, skipped {report.num_skipped} redundant)")
    assert report.ok

    # The unsat core falls out of verification.
    core = report.core
    print(f"unsat core: clauses {list(core.clause_indices)} "
          f"({core.size}/{formula.num_clauses} = "
          f"{core.fraction:.0%} of the formula)")
    print(f"core clauses: {[c.literals for c in core.clauses()]}")
    assert validate_core(core)
    print("core re-solved and confirmed UNSAT")


if __name__ == "__main__":
    main()
